"""The ideal process for distributed signatures (§3.1).

In the ideal model there are no keys and no cryptography: an
incorruptible trusted party keeps a database of signed messages.  A
message ``(m, u)`` enters the database exactly when at least ``t + 1``
signers ask to sign ``m`` during time unit ``u``; verification is a
database lookup.  Security of a real PDS scheme (Definition 12) means its
executions are indistinguishable from executions of this process — our
executable version is used by the emulation-invariant checks
(:mod:`repro.analysis.emulation`) and directly by tests.

The verifier deliberately *outputs nothing on failed verification*
(Remark 2): real verifiers cannot distinguish "never signed" from
"signed, but shown an invalid signature".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["IdealSignatureProcess", "IdealRecord"]


@dataclass(frozen=True)
class IdealRecord:
    """One entry of the trusted party's database."""

    message: Hashable
    unit: int


@dataclass
class IdealSignatureProcess:
    """Executable trusted party ``T`` plus verifier ``V``.

    Drive it with :meth:`sign_request` and :meth:`verify`; read the
    outputs from :attr:`signer_outputs` / :attr:`verifier_output` (they
    follow the exact output format of §3.1).
    """

    n: int
    t: int
    signed: set[IdealRecord] = field(default_factory=set)
    requests: dict[IdealRecord, set[int]] = field(default_factory=dict)
    _notified: dict[IdealRecord, set[int]] = field(default_factory=dict)
    signer_outputs: dict[int, list[Any]] = field(default_factory=dict)
    verifier_output: list[Any] = field(default_factory=list)
    broken: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not (0 <= self.t < self.n):
            raise ValueError(f"need 0 <= t < n, got t={self.t}, n={self.n}")
        for i in range(self.n):
            self.signer_outputs.setdefault(i, [])

    # -- adversary-facing interface (steps 2-5 of §3.1) ---------------------

    def sign_request(self, signer: int, message: Hashable, unit: int) -> bool:
        """Step 2-3: signer ``signer`` is asked to sign ``message`` at time
        unit ``unit``.  Returns True if the message is (now) signed."""
        if not (0 <= signer < self.n):
            raise ValueError(f"unknown signer {signer}")
        record = IdealRecord(message=message, unit=unit)
        if signer not in self.broken:
            self.signer_outputs[signer].append(("asked-to-sign", message, unit))
        self.requests.setdefault(record, set()).add(signer)
        if len(self.requests[record]) >= self.t + 1 and record not in self.signed:
            self.signed.add(record)
        if record in self.signed:
            notified = self._notified.setdefault(record, set())
            for requester in self.requests[record]:
                if requester not in self.broken and requester not in notified:
                    notified.add(requester)
                    self.signer_outputs[requester].append(("signed", message, unit))
            return True
        return False

    def break_into(self, signer: int) -> None:
        """Step 4: the forger compromises a signer."""
        if signer not in self.broken:
            self.broken.add(signer)
            self.signer_outputs[signer].append(("compromised",))

    def recover(self, signer: int) -> None:
        if signer in self.broken:
            self.broken.discard(signer)
            self.signer_outputs[signer].append(("recovered",))

    def verify(self, message: Hashable, unit: int) -> bool:
        """Step 5: query the verifier.  Only successful verifications are
        recorded in the verifier's output (Remark 2)."""
        record = IdealRecord(message=message, unit=unit)
        if record in self.signed:
            self.verifier_output.append(("verified", message, unit))
            return True
        return False

    # -- introspection ----------------------------------------------------

    def is_signed(self, message: Hashable, unit: int) -> bool:
        return IdealRecord(message=message, unit=unit) in self.signed

    def request_count(self, message: Hashable, unit: int) -> int:
        return len(self.requests.get(IdealRecord(message=message, unit=unit), set()))
