"""E13 — chaos sweep: seeded fault plans vs. the emulation invariants.

The robustness claim behind Theorem 14: as long as the fault pattern
stays (s,t)-limited (Definition 7), the emulation invariants I1–I3 hold
no matter *which* faults occur or when.  We generate a large population
of seeded, limit-respecting ``FaultPlan`` schedules — crashes, memory
corruption, drops, duplication, bounded delay, reordering — and replay
them over both protocol layers:

* DISPERSE under a chattering workload (every node keeps dispersing
  probes with one retransmission), and
* the full ULS with certificate retransmission and the grace window.

Every run carries a ``RuntimeInvariantMonitor`` in fail-fast mode, so a
violation aborts the run at the exact offending round; the post-hoc
checker and the Definition 7 audit are replayed as a cross-check.  A
deliberately limit-breaking ``burst`` plan must trip the monitor at its
first round, and identical seed + plan must reproduce the transcript
bit-for-bit.
"""

import pytest

from repro.adversary.limits import audit_st_limited
from repro.analysis.emulation import check_emulation_invariants
from repro.analysis.monitor import InvariantViolationError, RuntimeInvariantMonitor
from repro.core.disperse import DisperseService
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.faults import FaultInjectionAdversary, FaultPlan, burst
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, emit, format_table, table_data

N, T = 5, 2
UNITS = 3
DISP_SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
ULS_SCHED = uls_schedule()
DISPERSE_SEEDS = range(0, 30)
ULS_SEEDS = range(100, 124)


class ChaosChatter(NodeProgram):
    """Every normal round each node disperses a probe to its ring
    successor — steady DISPERSE traffic for the faults to chew on."""

    def __init__(self) -> None:
        super().__init__()
        self.disperse = DisperseService(retransmit=1)
        self.delivered: list = []
        self.secret = "initial-secret"  # default corruption target

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        self.delivered.extend(self.disperse.receipts(""))
        if ctx.info.phase.value == "normal":
            target = (self.node_id + 1) % ctx.n
            self.disperse.send(ctx, target, ("probe", self.node_id, ctx.info.round))


def run_disperse_chaos(seed: int, monitor: RuntimeInvariantMonitor | None = None):
    plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=DISP_SCHED, units=UNITS)
    programs = [ChaosChatter() for _ in range(N)]
    monitor = monitor or RuntimeInvariantMonitor(T, fail_fast=True)
    runner = ULRunner(programs, FaultInjectionAdversary(plan), DISP_SCHED,
                      s=T, seed=seed, observers=[monitor])
    execution = runner.run(units=UNITS)
    return plan, execution, programs, monitor


def run_uls_chaos(seed: int):
    plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=ULS_SCHED, units=UNITS)
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i],
                   cert_retransmit=1, cert_grace_rounds=1)
        for i in range(N)
    ]
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    runner = ULRunner(programs, FaultInjectionAdversary(plan), ULS_SCHED,
                      s=T, seed=seed, observers=[monitor])
    execution = runner.run(units=UNITS)
    return plan, execution, programs, monitor


def transcript(execution, programs) -> tuple:
    return (
        execution.global_output(),
        tuple(tuple(record.unreliable_links) for record in execution.records),
        tuple(getattr(p, "delivered", ()) and tuple(p.delivered) for p in programs),
    )


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for seed in DISPERSE_SEEDS:
        plan, execution, programs, monitor = run_disperse_chaos(seed)
        post_hoc = check_emulation_invariants(execution, T)
        audit = audit_st_limited(execution, T)
        assert monitor.ok, (seed, monitor.violation_tuples())
        assert post_hoc.ok, (seed, post_hoc.violations)
        assert audit.within_limits, (seed, audit.violations)
        delivered = sum(len(p.delivered) for p in programs)
        rows.append(("disperse", seed, plan.fault_count(), delivered, "-",
                     len(monitor.violation_tuples())))
    for seed in ULS_SEEDS:
        plan, execution, programs, monitor = run_uls_chaos(seed)
        post_hoc = check_emulation_invariants(execution, T)
        audit = audit_st_limited(execution, T)
        assert monitor.ok, (seed, monitor.violation_tuples())
        assert post_hoc.ok, (seed, post_hoc.violations)
        assert audit.within_limits, (seed, audit.violations)
        ok_units = sum(
            1 for p in programs for _, status in p.keystore.history if status == "ok")
        degraded = sum(len(p.core.degraded_log) for p in programs)
        rows.append(("uls", seed, plan.fault_count(), ok_units, degraded, 0))
    return rows


def test_e13_chaos_sweep_holds_the_invariants(sweep, benchmark):
    assert len(sweep) >= 50  # the acceptance floor: >= 50 seeded plans
    assert all(row[5] == 0 for row in sweep)
    headers = ["protocol", "seed", "faults", "delivered/ok-units", "degraded", "violations"]
    emit("e13_chaos", format_table(
        "E13  chaos sweep: seeded (s,t)-limited fault plans vs. invariants I1-I3",
        headers,
        sweep,
    ), data=table_data(headers, sweep))
    benchmark(lambda: run_disperse_chaos(7))


def test_identical_seed_and_plan_reproduce_the_transcript():
    plan = FaultPlan.generate(seed=13, n=N, t=T, schedule=DISP_SCHED, units=UNITS)

    def replay():
        programs = [ChaosChatter() for _ in range(N)]
        runner = ULRunner(programs, FaultInjectionAdversary(plan), DISP_SCHED,
                          s=T, seed=13)
        execution = runner.run(units=UNITS)
        return transcript(execution, programs)

    assert replay() == replay()


def test_broken_plan_trips_the_monitor_at_the_exact_round():
    """Negative control: a limit-breaking burst must fail fast, naming
    the first round at which the impairment budget is exceeded."""
    first = DISP_SCHED.first_normal_round(0) + 2
    plan = burst(99, victims=[0, 1, 2], peers=range(N),
                 first_round=first, last_round=first + 3)
    programs = [ChaosChatter() for _ in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    runner = ULRunner(programs, FaultInjectionAdversary(plan), DISP_SCHED,
                      s=T, seed=0, observers=[monitor])
    with pytest.raises(InvariantViolationError) as excinfo:
        runner.run(units=UNITS)
    violation = excinfo.value.violation
    assert violation.invariant == "L1-limit"
    assert violation.event_round == first
    assert violation.detected_round == first
