"""Hashing utilities: domain-separated SHA-256, hash-to-integer, and a PRF.

Every hash in this package goes through :func:`tagged_hash` so distinct
protocol uses (Schnorr challenges, Merkle nodes, certificate bodies, ...)
live in disjoint domains — a message signed in one role can never collide
with a message signed in another.  This mirrors the paper's insistence on
binding signatures to ``(m, i, j, u, w)`` tuples (Fig. 3).
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache
from typing import Iterable

__all__ = [
    "sha256",
    "tagged_hash",
    "hash_to_int",
    "encode_for_hash",
    "prf",
    "DIGEST_BYTES",
]

DIGEST_BYTES = 32


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 digest."""
    return hashlib.sha256(data).digest()


@lru_cache(maxsize=256)
def _tag_digest(tag: str) -> bytes:
    # the protocol uses a small fixed set of domain tags; hashing each
    # once is pure and saves a SHA-256 per tagged_hash call
    return sha256(tag.encode("utf-8"))


def tagged_hash(tag: str, *chunks: bytes) -> bytes:
    """Domain-separated hash: ``H(H(tag) || H(tag) || chunk_0 || ...)``.

    The double-tag prefix follows the BIP-340 convention; it makes
    cross-domain collisions require breaking SHA-256 itself.  Each chunk is
    length-prefixed so concatenation is unambiguous.
    """
    tag_digest = _tag_digest(tag)
    h = hashlib.sha256()
    h.update(tag_digest)
    h.update(tag_digest)
    for chunk in chunks:
        h.update(len(chunk).to_bytes(8, "big"))
        h.update(chunk)
    return h.digest()


def encode_for_hash(value: object) -> bytes:
    """Deterministically encode common values for hashing.

    Supports ``bytes``, ``str``, ``int``, ``bool``, ``None`` and (nested)
    tuples/lists of those.  Every encoding is self-delimiting, so distinct
    structures never encode to the same byte string.
    """
    # exact-type dispatch first — ints and tuples dominate protocol
    # traffic, and ``type(x) is int`` safely excludes bool.  Subclasses
    # (IntEnum, CertifiedMessage, ...) fall through to the isinstance
    # chain below; both paths produce identical bytes.
    kind = type(value)
    if kind is int:
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(8, "big") + raw
    if kind is tuple or kind is list:
        parts = [encode_for_hash(item) for item in value]
        return b"L" + len(parts).to_bytes(8, "big") + b"".join(parts)
    if kind is str:
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if kind is bytes:
        return b"B" + len(value).to_bytes(8, "big") + value
    if kind is bool:
        return b"T" if value else b"F"
    if value is None:
        return b"N"
    if isinstance(value, bytes):
        return b"B" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, bool):  # must precede int (bool is a subclass)
        return b"T" if value else b"F"
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(8, "big") + raw
    if value is None:
        return b"N"
    if isinstance(value, (tuple, list)):
        parts = [encode_for_hash(item) for item in value]
        body = b"".join(parts)
        return b"L" + len(parts).to_bytes(8, "big") + body
    raise TypeError(f"cannot encode {type(value).__name__} for hashing")


def hash_to_int(tag: str, modulus: int, *values: object) -> int:
    """Hash arbitrary values into ``[0, modulus)``.

    Expands the digest with a counter until enough bits are available, so
    the output is statistically close to uniform for any modulus size.
    """
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    encoded = [encode_for_hash(v) for v in values]
    needed_bits = modulus.bit_length() + 128  # 128 extra bits kill modulo bias
    acc = 0
    counter = 0
    while acc.bit_length() < needed_bits:
        digest = tagged_hash(tag, counter.to_bytes(4, "big"), *encoded)
        acc = (acc << (8 * DIGEST_BYTES)) | int.from_bytes(digest, "big")
        counter += 1
    return acc % modulus


def prf(key: bytes, *values: object) -> bytes:
    """HMAC-SHA256 pseudorandom function over encoded values."""
    body = b"".join(encode_for_hash(v) for v in values)
    return hmac.new(key, body, hashlib.sha256).digest()


def hash_chain(seed: bytes, length: int) -> list[bytes]:
    """Iterated hash chain ``[seed, H(seed), H(H(seed)), ...]`` of ``length`` links."""
    if length < 1:
        raise ValueError("chain length must be positive")
    chain = [seed]
    for _ in range(length - 1):
        chain.append(sha256(chain[-1]))
    return chain


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def merge_digests(tag: str, digests: Iterable[bytes]) -> bytes:
    """Hash a sequence of digests into one (order-sensitive)."""
    return tagged_hash(tag, *digests)
