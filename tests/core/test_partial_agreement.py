"""Unit and integration tests for PARTIAL-AGREEMENT (Fig. 5)."""

import pytest

from repro.core.partial_agreement import NO_VALUE, PartialAgreementService, _Session
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def make_service(n=5):
    public, states, keys = build_uls_states(GROUP, SCHEME, n, (n - 1) // 2, seed=3)
    program = UlsProgram(states[0], SCHEME, keys[0])
    return program.core.pa


def session_with_records(records):
    """records: {author: [value, ...]}"""
    session = _Session(start_round=0, my_input=NO_VALUE)
    for author, values in records.items():
        for value in values:
            bucket = session.records.setdefault(author, {})
            bucket[repr(value)] = (value, None)
    return session


def test_cheater_detection():
    service = make_service()
    session = session_with_records({0: ["a", "b"], 1: ["a"], 2: ["a"]})
    assert service._cheaters(session) == {0}


def test_step5_majority_survives():
    service = make_service()  # majority = ceil((5+1)/2) = 3
    session = session_with_records({0: ["x"], 1: ["x"], 2: ["x"], 3: ["y"]})
    session.maj_value = "x"
    session.maj_authors = frozenset({0, 1, 2})
    assert service._step5(session) == "x"


def test_step5_cheater_discovery_in_step4_drops_below_majority():
    service = make_service()
    session = session_with_records({0: ["x"], 1: ["x"], 2: ["x"]})
    session.maj_value = "x"
    session.maj_authors = frozenset({0, 1, 2})
    # step 4 reveals author 2 equivocated
    session.records[2]["other"] = ("z", None)
    assert service._step5(session) is NO_VALUE


def test_step5_without_majority_is_phi():
    service = make_service()
    session = session_with_records({0: ["x"], 1: ["y"]})
    assert service._step5(session) is NO_VALUE


def test_majority_threshold_formula():
    # ceil((n+1)/2): 5 -> 3, 6 -> 4, 7 -> 4
    assert make_service(5).majority == 3
    assert make_service(7).majority == 4


def test_duplicate_start_is_idempotent():
    """Starting the same session twice must not double-send (the paper:
    PARTIAL-AGREEMENT is run only once per node per refreshment phase)."""
    from repro.sim.clock import Schedule
    from repro.sim.node import NodeContext

    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=3)
    program = UlsProgram(states[0], SCHEME, keys[0])
    service = program.core.pa
    sched = Schedule(1, 1, 5)
    ctx = NodeContext(0, N, sched.info(3), None, None, [])
    service.start(ctx, "dup", ("value",))
    sent_before = len(ctx.outbox)
    service.start(ctx, "dup", ("other",))
    assert len(ctx.outbox) == sent_before  # second start ignored


def test_all_nodes_agree_on_genuine_keys_end_to_end():
    """Integration: in a benign refresh, every node's PA outputs for every
    target coincide and match the target's announced key."""
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=6)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=6)
    runner.run(units=2)
    for target in range(N):
        expected = programs[target].keystore.key_reprs[1]
        for program in programs:
            session = program.core.pa.sessions.get(("pa", 1, target))
            assert session is not None
            value = program.core.pa._step5(session)
            assert tuple(value) == tuple(expected)
