"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_benign_scenario_exits_zero(capsys):
    assert main(["benign", "--units", "2"]) == 0
    out = capsys.readouterr().out
    assert "signed+verified=True" in out
    assert "within limits" in out


def test_breakins_scenario(capsys):
    assert main(["breakins", "--units", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "shares valid at end: 5/5" in out


def test_cutoff_scenario_reports_awareness(capsys):
    assert main(["cutoff", "--units", "3", "--victim", "2"]) == 0
    out = capsys.readouterr().out
    assert "alerted in every cut-off unit" in out


def test_flood_scenario_reports_global_awareness(capsys):
    assert main(["flood", "--flood", "1", "--units", "2"]) == 0
    out = capsys.readouterr().out
    assert "GLOBAL AWARENESS" in out
    assert "injected messages" in out


def test_partition_scenario(capsys):
    assert main(["partition", "--n", "25"]) == 0
    out = capsys.readouterr().out
    assert "5 neighborhoods" in out


def test_invalid_n_t_combination(capsys):
    assert main(["benign", "--n", "4", "--t", "2"]) == 2


def test_parser_requires_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
