"""Tests for DISPERSE (Fig. 2) including Lemma 15."""

from repro.adversary.strategies import LinkAttackAdversary, LinkFault
from repro.core.disperse import DisperseService
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=12)


class DisperseHost(NodeProgram):
    """Sends scheduled payloads via DISPERSE and records receipts."""

    def __init__(self, sends=None):
        super().__init__()
        self.disperse = DisperseService()
        self.sends = sends or {}  # round -> (receiver, body, tag)
        self.received = []  # (round, tag, claimed_src, body)

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        for tag in ("", "x", "y"):
            for src, body in self.disperse.receipts(tag):
                self.received.append((ctx.info.round, tag, src, body))
        job = self.sends.get(ctx.info.round)
        if job:
            receiver, body, tag = job
            self.disperse.send(ctx, receiver, body, tag=tag)


def run(n, sends_by_node, adversary=None, units=1, seed=0, s=2):
    programs = []
    for i in range(n):
        programs.append(DisperseHost(sends=dict(sends_by_node.get(i, {}))))
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=s, seed=seed)
    runner.run(units=units)
    return runner


def test_basic_delivery_two_rounds():
    runner = run(4, {0: {2: (1, "hello", "")}})
    received = runner.nodes[1].program.received
    assert received == [(4, "", 0, "hello")]


def test_receipt_deduplicated_across_paths():
    """n-2 relays + the direct path deliver the same string; the receiver
    marks it once."""
    runner = run(6, {0: {2: (1, "m", "")}})
    received = runner.nodes[1].program.received
    assert len(received) == 1


def test_tags_separate_consumers():
    runner = run(4, {0: {2: (1, "a", "x"), 3: (1, "b", "y")}})
    received = runner.nodes[1].program.received
    assert (4, "x", 0, "a") in received
    assert (5, "y", 0, "b") in received
    assert all(tag != "" for _, tag, _, _ in received)


def test_lemma15_delivery_despite_dead_direct_link():
    """Lemma 15: with both endpoints s-operational (s <= (n-1)/2), DISPERSE
    delivers even when the direct link is dead — a common reliable
    neighbour relays."""
    fault = LinkFault(link=frozenset({0, 1}), first_round=0, last_round=999)
    runner = run(5, {0: {2: (1, "via-relay", "")}},
                 adversary=LinkAttackAdversary([fault]), s=2)
    received = runner.nodes[1].program.received
    assert (4, "", 0, "via-relay") in received


def test_lemma15_boundary_many_dead_links():
    """Sender keeps only links to {2, 3}, receiver only to {3, 4}: node 3
    is the single common neighbour and suffices."""
    n = 5
    dead = [frozenset({0, 1}), frozenset({0, 4}), frozenset({1, 2})]
    faults = [LinkFault(link=link, first_round=0, last_round=999) for link in dead]
    runner = run(n, {0: {2: (1, "squeeze", "")}},
                 adversary=LinkAttackAdversary(faults), s=2)
    received = runner.nodes[1].program.received
    assert any(body == "squeeze" for _, _, _, body in received)


def test_no_delivery_when_fully_cut():
    """All of the receiver's links dead: nothing arrives (delivery needs
    at least one reliable path; the receiver here is 4-disconnected)."""
    n = 5
    faults = [LinkFault(link=frozenset({1, j}), first_round=0, last_round=999)
              for j in range(n) if j != 1]
    runner = run(n, {0: {2: (1, "void", "")}},
                 adversary=LinkAttackAdversary(faults), s=4)
    assert runner.nodes[1].program.received == []


def test_relay_count_statistics():
    runner = run(5, {0: {2: (1, "m", "")}})
    relays = sum(node.program.disperse.messages_relayed for node in runner.nodes)
    # every node except sender and receiver relays once; receiver's direct
    # copy is buffered, not relayed; and the receiver also relays? no: dst==me
    assert relays == 3


def test_injected_forwarding_is_received_but_unauthenticated():
    """DISPERSE offers no authenticity: an injected 'forwarding' with any
    claimed source is happily marked received (motivates CERTIFY)."""
    from repro.sim.adversary_api import Adversary, faithful_delivery

    class Injector(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round == 3:
                plan[1].append(api.forge_envelope(
                    2, 1, "disperse", ("fwding", "", 0, 1, "forged")))
            return plan

    runner = run(4, {}, adversary=Injector())
    received = runner.nodes[1].program.received
    assert (4, "", 0, "forged") in received
