"""Protocol PARTIAL-AGREEMENT (paper Fig. 5).

Weak agreement on each node's freshly announced public key: among a
majority clique of correctly-communicating nodes there is a single value
``y`` such that every member outputs either ``y`` or ``φ`` (Lemma 16), and
if all members hold the same input they all output it.

The five steps, over AUTH-SEND (delay 2) and raw DISPERSE:

1. every node AUTH-SENDs its input value to everyone;
2. after acceptance, each node marks *cheaters* (authors it accepted two
   different values from) and looks for a majority set ``MAJ`` of
   non-cheaters sharing one value ``y``;
3. each node re-DISPERSEs the raw *certified* messages it accepted from
   ``MAJ`` members — signatures make equivocation provable, which is what
   lets this protocol achieve at ``n = 2t+1`` what echo broadcast needs
   ``n = 3t+1`` for (see :mod:`repro.agreement.echo`);
4. the forwarded messages are verified (authenticity of author, content
   and time — the destination is whoever the author originally addressed)
   and cheater marks are updated;
5. output ``y`` if the surviving ``MAJ'`` is still a majority, else ``φ``.

Many sessions (one per announced key) run in parallel on shared
transports, distinguished by a hashable ``pa_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.auth_send import AuthSendTransport
from repro.core.certify import prime_parsed, verify_certified_body
from repro.core.disperse import DisperseService
from repro.perf.cache import canonical_body_key
from repro.perf.config import perf_config
from repro.sim.node import NodeContext

__all__ = ["PartialAgreementService", "NO_VALUE"]

#: the paper's ``φ``
NO_VALUE = None

_PA3_TAG = "pa3"


def _value_key(value: Any) -> Hashable:
    # same key DISPERSE uses for dedup: canonical encoding with a repr
    # fallback, memoized by object identity in the perf layer (values and
    # re-dispersed raw tuples are shared by reference across nodes)
    return canonical_body_key(value)


@dataclass
class _Session:
    start_round: int
    my_input: Any
    # author -> value_key -> (value, raw or None)
    records: dict[int, dict[Hashable, tuple[Any, Any]]] = field(default_factory=dict)
    forwarded: bool = False
    maj_value: Any = NO_VALUE
    maj_authors: frozenset[int] = frozenset()
    decided: bool = False
    verified_raws: set[Hashable] = field(default_factory=set)
    #: time unit the session was created in (retention bookkeeping)
    unit: int = 0


class PartialAgreementService:
    """Multiplexes PARTIAL-AGREEMENT sessions (see module docstring).

    Owner contract per round: ``disperse.on_round`` and
    ``transport.begin_round`` first, then :meth:`on_round`, then any
    :meth:`start` calls; read :meth:`outputs`.
    """

    def __init__(
        self, transport: AuthSendTransport, disperse: DisperseService, n: int
    ) -> None:
        self.transport = transport
        self.disperse = disperse
        self.n = n
        self.majority = (n + 1 + 1) // 2  # ceil((n+1)/2)
        self.sessions: dict[Hashable, _Session] = {}
        self._outputs: list[tuple[Hashable, Any]] = []
        # raw certified messages awaiting the round's batched step-3
        # re-dispersal (volume layer)
        self._pa3_pending: list[Any] = []
        self._pruned_through = -1

    # -- API ---------------------------------------------------------------

    def start(self, ctx: NodeContext, pa_id: Hashable, input_value: Any) -> None:
        """Begin a session with our input (``None`` = participate without
        an input of our own — we only collect, forward and decide)."""
        if pa_id in self.sessions:
            return
        session = _Session(
            start_round=ctx.info.round, my_input=input_value,
            unit=ctx.info.time_unit,
        )
        self.sessions[pa_id] = session
        if input_value is not NO_VALUE:
            session.records.setdefault(ctx.node_id, {})[_value_key(input_value)] = (
                input_value,
                None,
            )
            self.transport.send_to_all(ctx, ("pa1", pa_id, input_value))

    def outputs(self) -> list[tuple[Hashable, Any]]:
        """Sessions decided this round: ``(pa_id, y or NO_VALUE)``."""
        return list(self._outputs)

    # -- round processing -----------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        self._outputs = []
        self._prune(ctx.info.time_unit)
        self._ingest_step1(ctx)
        self._ingest_step3(ctx)
        for pa_id, session in self.sessions.items():
            if session.decided:
                continue
            offset = ctx.info.round - session.start_round
            if offset >= 2 and not session.forwarded:
                self._step2_and_3(ctx, session)
            if offset >= 4:
                session.decided = True
                self._outputs.append((pa_id, self._step5(session)))
        if self._pa3_pending:
            # volume layer: ONE broadcast flood carries every certified
            # message this node re-disperses this round, instead of a
            # per-message × per-receiver dispersal.  Every node still
            # receives every re-dispersed certified message — the
            # information flow of Fig. 5 step 3 (and with it Lemma 16's
            # equivocation-evidence propagation) is unchanged.
            pack = ("pa3b", tuple(self._pa3_pending))
            self._pa3_pending = []
            self.disperse.broadcast(ctx, pack, tag=_PA3_TAG)

    def _prune(self, unit: int) -> None:
        """Drop decided sessions older than the previous time unit.

        Sessions used to accumulate for the whole run (one per announced
        key per refresh, each holding the verified-raw dedup set — the
        largest per-unit state in the node).  Undecided sessions are never
        dropped, whatever their age."""
        if unit == self._pruned_through:
            return
        self._pruned_through = unit
        stale = [
            pa_id
            for pa_id, session in self.sessions.items()
            if session.decided and session.unit < unit - 1
        ]
        for pa_id in stale:
            del self.sessions[pa_id]

    # -- internals ---------------------------------------------------------------

    def _record(self, session: _Session, author: int, value: Any, raw: Any) -> None:
        bucket = session.records.setdefault(author, {})
        key = _value_key(value)
        if key not in bucket:
            bucket[key] = (value, raw)
        elif raw is not None and bucket[key][1] is None:
            bucket[key] = (value, raw)

    def _ingest_step1(self, ctx: NodeContext) -> None:
        for accepted in self.transport.accepted_certified_view():
            body = accepted.body
            if not (isinstance(body, tuple) and len(body) == 3 and body[0] == "pa1"):
                continue
            _, pa_id, value = body
            session = self.sessions.get(pa_id)
            if session is None:
                # a participant without an input learns of the session here
                session = _Session(
                    start_round=ctx.info.round - 2, my_input=NO_VALUE,
                    unit=ctx.info.time_unit,
                )
                self.sessions[pa_id] = session
            raw = tuple(accepted.raw)
            prime_parsed(raw, accepted.raw)  # step-3 receivers re-parse this
            self._record(session, accepted.sender, value, raw)

    def _ingest_step3(self, ctx: NodeContext) -> None:
        for _claimed_src, body in self.disperse.receipts(_PA3_TAG):
            if not isinstance(body, tuple):
                continue
            if len(body) == 2 and body[0] == "pa3b" and isinstance(body[1], tuple):
                # a batched re-dispersal: the pack wrapper is unauthenticated
                # (like any DISPERSE body), each member raw carries its own
                # certification and goes through exactly the solo path
                raws = body[1]
            else:
                raws = (body,)
            for raw in raws:
                if not isinstance(raw, tuple) or len(raw) != 8:
                    continue
                inner = raw[0]
                if not (
                    isinstance(inner, tuple) and len(inner) == 3 and inner[0] == "pa1"
                ):
                    continue
                _, pa_id, value = inner
                session = self.sessions.get(pa_id)
                if session is None:
                    continue
                raw_key = _value_key(raw)
                if raw_key in session.verified_raws:
                    continue
                session.verified_raws.add(raw_key)
                msg = verify_certified_body(
                    self.transport.keystore.scheme,
                    self.transport.public,
                    expected_unit=self.transport.keystore.unit,
                    expected_round=session.start_round,
                    raw=raw,
                )
                if msg is None:
                    continue
                self._record(session, msg.source, value, raw)

    def _cheaters(self, session: _Session) -> set[int]:
        return {author for author, values in session.records.items() if len(values) > 1}

    def _step2_and_3(self, ctx: NodeContext, session: _Session) -> None:
        session.forwarded = True
        cheaters = self._cheaters(session)
        tally: dict[Hashable, list[int]] = {}
        for author, values in session.records.items():
            if author in cheaters:
                continue
            (key, (_value, _raw)), = values.items()
            tally.setdefault(key, []).append(author)
        for key, authors in tally.items():
            if len(authors) >= self.majority:
                (value, _raw) = session.records[authors[0]][key]
                session.maj_value = value
                session.maj_authors = frozenset(authors)
                break
        # step 3: re-disperse the certified messages of MAJ members
        batched = perf_config().flag("msg_volume")
        for author in session.maj_authors:
            for value, raw in session.records[author].values():
                if raw is None:
                    continue  # own input has no certified form
                if batched:
                    # collected across every session deciding this round;
                    # on_round flushes them as one broadcast flood
                    self._pa3_pending.append(raw)
                    continue
                for receiver in range(self.n):
                    if receiver != ctx.node_id:
                        self.disperse.send(ctx, receiver, raw, tag=_PA3_TAG)

    def _step5(self, session: _Session) -> Any:
        if session.maj_value is NO_VALUE and not session.maj_authors:
            return NO_VALUE
        cheaters = self._cheaters(session)
        surviving = session.maj_authors - frozenset(cheaters)
        if len(surviving) >= self.majority:
            return session.maj_value
        return NO_VALUE
