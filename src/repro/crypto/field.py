"""Prime-field arithmetic and polynomials over ``Z_q``.

The scalar field of the Schnorr group (:mod:`repro.crypto.group`) and the
coefficient field of Shamir sharing (:mod:`repro.crypto.shamir`) are both
instances of :class:`PrimeField`.  Polynomials are represented by their
coefficient list, lowest degree first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numbers import is_probable_prime, mod_inverse

__all__ = ["PrimeField", "Polynomial"]


@dataclass(frozen=True)
class PrimeField:
    """The field of integers modulo a prime ``order``.

    Elements are plain ints in ``[0, order)``; the class provides the
    arithmetic, sampling and Lagrange helpers that operate on them.
    """

    order: int

    def __post_init__(self) -> None:
        if self.order < 2 or not is_probable_prime(self.order):
            raise ValueError(f"field order must be prime, got {self.order}")

    def element(self, value: int) -> int:
        """Reduce an int into the field."""
        return value % self.order

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.order

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.order

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.order

    def neg(self, a: int) -> int:
        return (-a) % self.order

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on 0."""
        return mod_inverse(a, self.order)

    def div(self, a: int, b: int) -> int:
        return (a * self.inv(b)) % self.order

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.order)

    def random_element(self, rng: random.Random) -> int:
        """Uniform element of the field."""
        return rng.randrange(self.order)

    def random_nonzero(self, rng: random.Random) -> int:
        """Uniform element of the multiplicative group (never 0)."""
        return rng.randrange(1, self.order)

    def random_polynomial(
        self, degree: int, rng: random.Random, constant: int | None = None
    ) -> "Polynomial":
        """Random polynomial of exactly the given degree bound.

        Args:
            degree: degree bound (the polynomial has ``degree + 1``
                coefficients; the top one may be zero, matching the sharing
                semantics of Shamir's scheme).
            constant: if given, fixes the constant term (the shared secret).
        """
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coeffs = [self.random_element(rng) for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = self.element(constant)
        return Polynomial(self, coeffs)

    def lagrange_coefficients_at_zero(self, xs: list[int]) -> list[int]:
        """Lagrange interpolation coefficients ``λ_i`` evaluated at ``x = 0``.

        For distinct points ``xs``, ``f(0) = Σ λ_i · f(xs[i])`` for any
        polynomial ``f`` of degree < len(xs).  This is the combining step of
        threshold signing (partial signatures are shares of the full one).
        """
        if len(set(x % self.order for x in xs)) != len(xs):
            raise ValueError(f"interpolation points must be distinct: {xs}")
        coeffs = []
        for i, xi in enumerate(xs):
            numerator = 1
            denominator = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                numerator = (numerator * (-xj)) % self.order
                denominator = (denominator * (xi - xj)) % self.order
            coeffs.append(self.div(numerator, denominator))
        return coeffs

    def interpolate_at_zero(self, points: list[tuple[int, int]]) -> int:
        """Evaluate the interpolating polynomial through ``points`` at 0."""
        xs = [x for x, _ in points]
        lam = self.lagrange_coefficients_at_zero(xs)
        total = 0
        for coeff, (_, y) in zip(lam, points):
            total = (total + coeff * y) % self.order
        return total

    def interpolate_at(self, target: int, points: list[tuple[int, int]]) -> int:
        """Evaluate the interpolating polynomial through ``points`` at an
        arbitrary ``target`` (share recovery evaluates at the lost share's
        own index)."""
        if len(set(x % self.order for x, _ in points)) != len(points):
            raise ValueError("interpolation points must be distinct")
        total = 0
        for i, (xi, yi) in enumerate(points):
            numerator = 1
            denominator = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                numerator = (numerator * (target - xj)) % self.order
                denominator = (denominator * (xi - xj)) % self.order
            total = (total + yi * self.div(numerator, denominator)) % self.order
        return total


@dataclass(frozen=True)
class Polynomial:
    """A polynomial over a :class:`PrimeField`, coefficients lowest-first."""

    field: PrimeField
    coefficients: list[int]

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ValueError("a polynomial needs at least one coefficient")
        reduced = [c % self.field.order for c in self.coefficients]
        object.__setattr__(self, "coefficients", reduced)

    @property
    def degree_bound(self) -> int:
        """Number of coefficients minus one (top coefficient may be zero)."""
        return len(self.coefficients) - 1

    @property
    def constant_term(self) -> int:
        return self.coefficients[0]

    def evaluate(self, x: int) -> int:
        """Horner evaluation of the polynomial at ``x``."""
        acc = 0
        for coeff in reversed(self.coefficients):
            acc = (acc * x + coeff) % self.field.order
        return acc

    def add(self, other: "Polynomial") -> "Polynomial":
        """Coefficient-wise sum (pads the shorter polynomial with zeros)."""
        if other.field.order != self.field.order:
            raise ValueError("cannot add polynomials over different fields")
        length = max(len(self.coefficients), len(other.coefficients))
        mine = self.coefficients + [0] * (length - len(self.coefficients))
        theirs = other.coefficients + [0] * (length - len(other.coefficients))
        return Polynomial(self.field, [(a + b) % self.field.order for a, b in zip(mine, theirs)])
