"""Perf-layer test isolation.

The performance layer is process-global state (one config, one
verification cache, one canonical cache per process), so every test here
runs against a freshly cleared layer and restores whatever configuration
was in force before it."""

import dataclasses

import pytest

from repro.perf import configure, perf_config


@pytest.fixture
def perf():
    """Clean, fully enabled perf layer; restores prior flags afterwards."""
    saved = dataclasses.asdict(perf_config())
    configure(enabled=True)  # also clears every cache
    yield perf_config()
    configure(**saved)
