"""Tests for Pedersen commitments and VSS."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.group import named_group
from repro.crypto.pedersen import (
    PedersenParams,
    PedersenVssDealer,
    derive_second_generator,
)
from repro.crypto.shamir import Share, reconstruct_secret

GROUP = named_group("toy64")
PARAMS = PedersenParams.for_group(GROUP)
scalars = st.integers(min_value=0, max_value=GROUP.q - 1)


def test_second_generator_in_subgroup():
    h = derive_second_generator(GROUP)
    assert GROUP.is_member(h)
    assert h not in (GROUP.identity, GROUP.g)


def test_second_generator_depends_on_label():
    assert derive_second_generator(GROUP, "a") != derive_second_generator(GROUP, "b")


@given(scalars, scalars)
@settings(max_examples=50)
def test_commit_open_round_trip(message, randomness):
    commitment = PARAMS.commit(message, randomness)
    assert PARAMS.verify_opening(commitment, message, randomness)
    assert not PARAMS.verify_opening(commitment, (message + 1) % GROUP.q, randomness)


@given(scalars, scalars, scalars, scalars)
@settings(max_examples=50)
def test_commitments_are_homomorphic(m1, r1, m2, r2):
    c1 = PARAMS.commit(m1, r1)
    c2 = PARAMS.commit(m2, r2)
    combined = GROUP.multiply(c1, c2)
    assert combined == PARAMS.commit((m1 + m2) % GROUP.q, (r1 + r2) % GROUP.q)


def test_perfect_hiding_witness():
    """Information-theoretic hiding, demonstrated constructively: for any
    commitment and ANY candidate message there exists blinding that opens
    it — here via the homomorphism (we can't solve for it without
    log_g h, but we can exhibit the degrees of freedom: commitments to
    different messages are identically distributed over random r)."""
    rng = random.Random(1)
    samples_a = {PARAMS.commit(111, rng.randrange(GROUP.q)) for _ in range(50)}
    samples_b = {PARAMS.commit(222, rng.randrange(GROUP.q)) for _ in range(50)}
    # both sample sets are sets of random subgroup elements; in particular
    # nothing about them pins the message (contrast Feldman, where the
    # constant element IS g^secret)
    assert all(GROUP.is_member(c) for c in samples_a | samples_b)
    assert samples_a != samples_b  # distinct random draws, no structure


def test_vss_shares_verify_and_reconstruct():
    dealer = PedersenVssDealer(PARAMS, n=5, threshold=2)
    dealing = dealer.deal(4242, random.Random(3))
    for share, blinding in zip(dealing.shares, dealing.blindings):
        assert dealing.commitment.verify_share(PARAMS, share, blinding)
    secret = reconstruct_secret(GROUP.scalar_field, dealing.shares[:3])
    assert secret == 4242


def test_vss_detects_corrupted_share():
    dealer = PedersenVssDealer(PARAMS, n=5, threshold=2)
    dealing = dealer.deal(7, random.Random(4))
    bad = Share(x=1, value=(dealing.shares[0].value + 1) % GROUP.q)
    assert not dealing.commitment.verify_share(PARAMS, bad, dealing.blindings[0])
    # and a corrupted blinding is equally caught
    assert not dealing.commitment.verify_share(
        PARAMS, dealing.shares[0], (dealing.blindings[0] + 1) % GROUP.q
    )


def test_vss_commitments_combine():
    dealer = PedersenVssDealer(PARAMS, n=5, threshold=2)
    rng = random.Random(5)
    d1 = dealer.deal(100, rng)
    d2 = dealer.deal(200, rng)
    combined = d1.commitment.combine(PARAMS, d2.commitment)
    for i in range(5):
        summed_share = Share(
            x=i + 1, value=(d1.shares[i].value + d2.shares[i].value) % GROUP.q
        )
        summed_blinding = (d1.blindings[i] + d2.blindings[i]) % GROUP.q
        assert combined.verify_share(PARAMS, summed_share, summed_blinding)


def test_dealer_validation():
    with pytest.raises(ValueError):
        PedersenVssDealer(PARAMS, n=5, threshold=5)
