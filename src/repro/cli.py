"""Command-line interface: run the paper's scenarios from a shell.

::

    python -m repro.cli benign    --n 5 --t 2 --units 3
    python -m repro.cli breakins  --n 5 --t 2 --units 3 --seed 7
    python -m repro.cli cutoff    --victim 4 --units 4
    python -m repro.cli flood     --flood 2
    python -m repro.cli partition --n 64

Each scenario builds a ULS network, runs it under the corresponding
adversary and prints a short report (alerts, refresh outcomes, signature
checks, limit audits).  Exit status is non-zero if a security property
that should hold did not — usable as a smoke test in CI.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.limits import audit_st_limited
from repro.adversary.strategies import (
    BreakinPlan,
    CutOffAdversary,
    InjectionFloodAdversary,
    MobileBreakInAdversary,
)
from repro.analysis.awareness import global_awareness
from repro.core.uls import (
    NEWKEY_CHANNEL,
    UlsProgram,
    build_uls_states,
    uls_schedule,
    verify_user_signature,
)
from repro.crypto.group import NAMED_GROUP_NAMES, named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.scale.partition import PartitionPlan, flat_tolerance
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

__all__ = ["main"]


def _build(args, adversary):
    group = named_group(args.group)
    scheme = SchnorrScheme(group)
    public, states, keys = build_uls_states(group, scheme, args.n, args.t, seed=args.seed)
    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(args.n)]
    schedule = uls_schedule()
    runner = ULRunner(programs, adversary, schedule, s=args.t, seed=args.seed)
    for unit in range(args.units):
        round_number = schedule.first_normal_round(unit)
        for node in range(args.n):
            runner.add_external_input(node, round_number, ("sign", f"doc-{unit}"))
    return public, programs, runner, schedule


def _report(public, programs, execution, args) -> int:
    failures = 0
    print(f"n={args.n} t={args.t} units={args.units} seed={args.seed} "
          f"group={args.group}")
    for unit in range(args.units):
        message = f"doc-{unit}"
        signature = next(
            (p.signatures.get((message, unit)) for p in programs
             if p.signatures.get((message, unit)) is not None),
            None,
        )
        verified = signature is not None and verify_user_signature(
            public, message, unit, signature
        )
        broken = sorted(execution.broken_in_unit(unit))
        alerts = sorted(
            i for i in range(args.n) if execution.alerts_in_unit(i, unit)
        )
        print(f"  unit {unit}: broken={broken or '-'} alerts={alerts or '-'} "
              f"'{message}' signed+verified={verified}")
    shares = [p.state.share_is_valid() for p in programs]
    print(f"  shares valid at end: {sum(shares)}/{args.n}")
    awareness = global_awareness(execution, args.t)
    if awareness.adversary_exceeded_model:
        print(f"  GLOBAL AWARENESS: > t nodes alerted in units "
              f"{list(awareness.model_exceeded_units)} — adversary exceeded "
              f"the (t,t) model")
    limit = audit_st_limited(execution, args.t)
    print(f"  (t,t)-limit audit: {'within limits' if limit.within_limits else 'EXCEEDED'}")
    return failures


def cmd_benign(args) -> int:
    public, programs, runner, _ = _build(args, PassiveAdversary())
    execution = runner.run(units=args.units)
    failures = _report(public, programs, execution, args)
    if any(p.core.alert_units for p in programs):
        print("FAIL: false alerts in a benign run")
        return 1
    return failures


def cmd_breakins(args) -> int:
    plan = BreakinPlan.rotating(args.n, args.t, args.units, random.Random(args.seed))
    public, programs, runner, _ = _build(args, MobileBreakInAdversary(plan))
    execution = runner.run(units=args.units)
    failures = _report(public, programs, execution, args)
    if not all(p.state.share_is_valid() for p in programs):
        print("FAIL: a node did not recover its share")
        return 1
    return failures


def cmd_cutoff(args) -> int:
    victim = args.victim % args.n
    adversary = CutOffAdversary(victim=victim, break_unit=1,
                                impersonator=UlsImpersonator(victim=victim))
    public, programs, runner, _ = _build(args, adversary)
    execution = runner.run(units=args.units)
    failures = _report(public, programs, execution, args)
    cut_units = range(2, args.units)
    if not all(execution.alerts_in_unit(victim, u) for u in cut_units):
        print("FAIL: the cut-off victim did not alert in every unit")
        return 1
    print(f"  victim {victim} alerted in every cut-off unit (awareness holds)")
    return failures


def cmd_flood(args) -> int:
    scheme = SchnorrScheme(named_group(args.group))
    adversary = InjectionFloodAdversary(
        payload_factory=lambda c, r, rng: (
            "newkey", 1, scheme.key_repr(scheme.generate(rng).verify_key)
        ),
        channel=NEWKEY_CHANNEL,
        flood_factor=args.flood,
    )
    public, programs, runner, _ = _build(args, adversary)
    execution = runner.run(units=args.units)
    failures = _report(public, programs, execution, args)
    print(f"  injected messages: {adversary.injected_count}")
    return failures


def cmd_partition(args) -> int:
    plan = PartitionPlan.sqrt_partition(args.n)
    info = plan.describe()
    print(f"n={info['n']}: {info['clusters']} neighborhoods of sizes "
          f"{info['cluster_sizes']}")
    print(f"  flat tolerance (~n/2):        {flat_tolerance(args.n)}")
    print(f"  partitioned tolerance (~n/4): {plan.tolerance()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--n", type=int, default=5, help="number of nodes")
    common.add_argument("--t", type=int, default=2, help="adversary bound (n >= 2t+1)")
    common.add_argument("--units", type=int, default=3, help="time units to simulate")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--group", choices=list(NAMED_GROUP_NAMES), default="toy64")
    parser = argparse.ArgumentParser(
        prog="proactive-auth",
        description="Run scenarios from 'Maintaining Authenticated "
                    "Communication in the Presence of Break-Ins'.",
    )
    sub = parser.add_subparsers(dest="scenario", required=True)
    sub.add_parser("benign", parents=[common],
                   help="no adversary; baseline sanity run")
    sub.add_parser("breakins", parents=[common],
                   help="rotating mobile break-ins (t per unit)")
    cut = sub.add_parser("cutoff", parents=[common],
                         help="the §1.1 cut-off + impersonation attack")
    cut.add_argument("--victim", type=int, default=4)
    flood = sub.add_parser("flood", parents=[common],
                           help="§5.1 injection flood on key announcements")
    flood.add_argument("--flood", type=int, default=1)
    sub.add_parser("partition", parents=[common],
                   help="§6 two-level partition trade-off (no simulation)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scenario != "partition" and args.n < 2 * args.t + 1:
        print(f"error: need n >= 2t+1 (got n={args.n}, t={args.t})", file=sys.stderr)
        return 2
    handlers = {
        "benign": cmd_benign,
        "breakins": cmd_breakins,
        "cutoff": cmd_cutoff,
        "flood": cmd_flood,
        "partition": cmd_partition,
    }
    return handlers[args.scenario](args)


if __name__ == "__main__":
    raise SystemExit(main())
