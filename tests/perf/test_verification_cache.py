"""The signature-verification cache: soundness and lifecycle.

The security-critical properties (docs/PROTOCOLS.md §12): an outcome is
only cached under the exact ``(key, message, signature)`` triple, so a
forged signature can never be answered from the cache; negative results
are cached just as safely; and a key-rotation drops the superseded key's
bucket.
"""

import random

import pytest

from repro.core.keystore import KeyStore
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme, SchnorrSignature
from repro.perf import cached_verify, verification_cache
from repro.perf.cache import VerificationCache

SCHEME = SchnorrScheme(named_group("toy64"))


@pytest.fixture
def pair():
    return SCHEME.generate(random.Random(11))


def test_positive_result_is_cached(perf, pair):
    cache = verification_cache()
    sig = SCHEME.sign(pair.signing_key, b"msg")
    assert cached_verify(SCHEME, pair.verify_key, b"msg", sig)
    before = cache.hits
    assert cached_verify(SCHEME, pair.verify_key, b"msg", sig)
    assert cache.hits == before + 1


def test_negative_result_is_cached(perf, pair):
    """A rejected signature is remembered as rejected — re-querying the
    identical triple must not re-run the verifier, and must stay False."""
    cache = verification_cache()
    sig = SCHEME.sign(pair.signing_key, b"msg")
    wrong = SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % SCHEME.group.q)
    assert not cached_verify(SCHEME, pair.verify_key, b"msg", wrong)
    before = cache.hits
    assert not cached_verify(SCHEME, pair.verify_key, b"msg", wrong)
    assert cache.hits == before + 1


def test_forged_signature_never_served_from_cache(perf, pair):
    """An adversary's forgery differs from every previously verified
    triple in at least one component, so it always misses the cache and
    goes through the full verifier (which rejects it)."""
    cache = verification_cache()
    sig = SCHEME.sign(pair.signing_key, b"msg")
    assert cached_verify(SCHEME, pair.verify_key, b"msg", sig)

    q = SCHEME.group.q
    forgeries = [
        # same signature, different message
        (b"other msg", sig),
        # tweaked response, original message
        (b"msg", SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % q)),
        # tweaked commitment, original message
        (b"msg", SchnorrSignature(commitment=SCHEME.group.power(sig.commitment, 2), response=sig.response)),
    ]
    for message, forged in forgeries:
        hits_before = cache.hits
        assert not cached_verify(SCHEME, pair.verify_key, message, forged)
        assert cache.hits == hits_before, "forgery must not hit the cache"


def test_unhashable_signature_skips_cache(perf, pair):
    cache = verification_cache()
    skips_before = cache.skips
    assert not cached_verify(SCHEME, pair.verify_key, b"msg", ["garbage", "off", "wire"])
    assert cache.skips == skips_before + 1


def test_rollover_invalidates_superseded_key(perf):
    """KeyStore.install_pending drops the old verification key's bucket."""
    cache = verification_cache()
    store = KeyStore(SCHEME)
    rng = random.Random(5)

    store.generate_pending(unit=1, rng=rng)
    assert store.install_pending(certificate="cert-1")
    old_key = store.current.keypair.verify_key
    sig = SCHEME.sign(store.current.keypair.signing_key, b"unit-1 msg")
    assert cached_verify(SCHEME, old_key, b"unit-1 msg", sig)
    old_bucket = SCHEME.key_repr(old_key)
    assert cache._buckets.get(old_bucket)

    store.generate_pending(unit=2, rng=rng)
    invalidations_before = cache.invalidations
    assert store.install_pending(certificate="cert-2")
    assert cache.invalidations == invalidations_before + 1
    assert old_bucket not in cache._buckets


def test_failed_rollover_still_invalidates(perf):
    """Even a refresh that ends with φ keys drops the old bucket."""
    cache = verification_cache()
    store = KeyStore(SCHEME)
    rng = random.Random(6)
    store.generate_pending(unit=1, rng=rng)
    assert store.install_pending(certificate="cert-1")
    key = store.current.keypair.verify_key
    sig = SCHEME.sign(store.current.keypair.signing_key, b"m")
    cached_verify(SCHEME, key, b"m", sig)
    bucket = SCHEME.key_repr(key)
    assert bucket in cache._buckets
    store.generate_pending(unit=2, rng=rng)
    assert not store.install_pending(certificate=None)
    assert bucket not in cache._buckets


def test_cache_disabled_bypasses_everything(perf, pair):
    from repro.perf import configure

    configure(verify_cache=False)
    cache = verification_cache()
    sig = SCHEME.sign(pair.signing_key, b"msg")
    assert cached_verify(SCHEME, pair.verify_key, b"msg", sig)
    assert len(cache) == 0


def test_lru_bounds():
    cache = VerificationCache(max_keys=2, max_entries_per_key=3)
    for key in ("k1", "k2", "k3"):
        cache.store(key, b"m", "sig", True)
    assert len(cache._buckets) == 2
    assert "k1" not in cache._buckets  # oldest key evicted
    for i in range(5):
        cache.store("k3", b"m%d" % i, "sig", True)
    assert len(cache._buckets["k3"]) == 3
