"""FaultPlan construction, generation and composition semantics."""

import dataclasses

import pytest

from tests.helpers import EchoProgram
from repro.adversary.limits import audit_st_limited
from repro.faults import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultInjectionAdversary,
    FaultPlan,
    MemoryCorruptionFault,
    ReorderFault,
    burst,
    mix_seed,
)
from repro.sim.clock import Schedule
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N, T = 5, 2


def run_plan(plan, seed=42, units=3, n=N, s=T):
    programs = [EchoProgram() for _ in range(n)]
    adversary = FaultInjectionAdversary(plan)
    runner = ULRunner(programs, adversary, SCHED, s=s, seed=seed)
    execution = runner.run(units=units)
    return execution, programs, adversary


# ------------------------------------------------------------------ generation

def test_generation_is_deterministic():
    a = FaultPlan.generate(seed=11, n=N, t=T, schedule=SCHED, units=3)
    b = FaultPlan.generate(seed=11, n=N, t=T, schedule=SCHED, units=3)
    assert a == b


def test_different_seeds_differ():
    plans = {FaultPlan.generate(seed=s, n=N, t=T, schedule=SCHED, units=3)
             for s in range(20)}
    assert len(plans) > 1


def test_generated_plans_are_nonempty_and_confined_to_normal_rounds():
    for seed in range(10):
        plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=SCHED, units=3)
        assert not plan.is_empty()
        for unit_faults in (plan.crashes, plan.drops, plan.duplications, plan.delays):
            for fault in unit_faults:
                info = SCHED.info(fault.first_round)
                assert info.phase.value == "normal"
                assert SCHED.info(fault.last_round).phase.value == "normal"
                assert SCHED.info(fault.last_round).time_unit == info.time_unit
        for fault in plan.corruptions:
            assert SCHED.info(fault.round).phase.value == "normal"


def test_generated_plans_stay_within_st_limits():
    """The headline guarantee: generate() plans are (s,t)-limited by
    construction, so the Definition 7 audit must pass on every seed."""
    for seed in range(10):
        plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=SCHED, units=3)
        execution, _, _ = run_plan(plan)
        report = audit_st_limited(execution, T)
        assert report.within_limits, (seed, report.violations)


def test_no_link_faults_generated_when_s_is_1():
    """With s=1 any single unreliable link disconnects both endpoints, so
    a safe generator must not emit link faults at all."""
    for seed in range(10):
        plan = FaultPlan.generate(seed=seed, n=N, t=1, schedule=SCHED, units=3, s=1)
        assert not plan.drops and not plan.duplications and not plan.delays


# --------------------------------------------------------------- determinism

def transcript_of(plan, seed=42):
    execution, programs, _ = run_plan(plan, seed=seed)
    return (execution.global_output(), [p.received for p in programs])


def test_identical_seed_and_plan_give_identical_transcript():
    plan = FaultPlan.generate(seed=5, n=N, t=T, schedule=SCHED, units=3)
    assert transcript_of(plan) == transcript_of(plan)


def test_runner_seed_changes_transcript_but_not_fault_schedule():
    plan = FaultPlan.generate(seed=5, n=N, t=T, schedule=SCHED, units=3)
    _, _, adv_a = run_plan(plan, seed=1)
    _, _, adv_b = run_plan(plan, seed=2)
    # the fault side is driven by plan.seed only: same stats either way
    assert adv_a.stats == adv_b.stats


# --------------------------------------------------------------- composition

def test_compose_unions_all_categories():
    a = FaultPlan(seed=1, crashes=(CrashFault(0, 3, 4),),
                  drops=(DropFault(frozenset((0, 1)), 3, 4),))
    b = FaultPlan(seed=2, corruptions=(MemoryCorruptionFault(2, 5),),
                  duplications=(DuplicateFault(frozenset((1, 2)), 3, 4),),
                  delays=(DelayFault(frozenset((2, 3)), 3, 4),),
                  reorders=(ReorderFault(None, 3, 6),))
    c = a.compose(b)
    assert c.fault_count() == a.fault_count() + b.fault_count()
    assert c.victims() == frozenset({0, 2})
    assert c.seed == mix_seed("compose", 1, 2)


def test_composed_plan_composes_with_base_adversary():
    """A FaultPlan rides on top of any base adversary: both act."""
    from tests.helpers import BreakOnceAdversary

    plan = FaultPlan(seed=3, crashes=(CrashFault(1, 8, 9),))
    base = BreakOnceAdversary(victim=0, break_round=4, leave_round=6, corrupt=True)
    programs = [EchoProgram() for _ in range(N)]
    adversary = FaultInjectionAdversary(plan, base=base)
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=42)
    execution = runner.run(units=2)
    broken_rounds = {i: rec.broken for i, rec in enumerate(execution.records)}
    assert 0 in broken_rounds[4] and 0 in broken_rounds[5]  # base's break-in
    assert 1 in broken_rounds[8] and 1 in broken_rounds[9]  # plan's crash
    assert programs[0].secret == "corrupted"                # base still acted


def test_fault_adversary_does_not_steal_base_break_ins():
    """If the base already holds a node, a crash on the same node must not
    release it early."""
    from tests.helpers import BreakOnceAdversary

    # base holds node 0 for rounds 4..8; plan crashes node 0 for 5..6
    plan = FaultPlan(seed=3, crashes=(CrashFault(0, 5, 6),))
    base = BreakOnceAdversary(victim=0, break_round=4, leave_round=8)
    programs = [EchoProgram() for _ in range(N)]
    adversary = FaultInjectionAdversary(plan, base=base)
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=42)
    execution = runner.run(units=1)
    for rnd in range(4, 8):
        assert 0 in execution.records[rnd].broken, rnd


def test_describe_and_empty():
    assert FaultPlan(seed=0).is_empty()
    assert "empty" in FaultPlan(seed=0).describe()
    plan = burst(7, victims=[0, 1], peers=range(N), first_round=4, last_round=6)
    assert not plan.is_empty()
    assert plan.victims() <= {0, 1}


def test_plan_is_immutable():
    plan = FaultPlan(seed=0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.seed = 1


# ---------------------------------------------------------------- validation

@pytest.mark.parametrize("plan, reason", [
    (FaultPlan(seed=0, crashes=(CrashFault(0, 9, 4),)),
     "last_round 4 < first_round 9"),
    (FaultPlan(seed=0, crashes=(CrashFault(0, -1, 4),)),
     "negative first_round"),
    (FaultPlan(seed=0, corruptions=(MemoryCorruptionFault(0, -3),)),
     "negative first_round"),
    (FaultPlan(seed=0, drops=(DropFault(frozenset((0, 1)), 3, 4, probability=1.5),)),
     "probability 1.5 outside"),
    (FaultPlan(seed=0, drops=(DropFault(frozenset((0, 1)), 3, 4, probability=-0.1),)),
     "outside \\[0, 1\\]"),
    (FaultPlan(seed=0, drops=(DropFault(frozenset((0,)), 3, 4),)),
     "link must join two distinct nodes"),
    (FaultPlan(seed=0, drops=(DropFault(frozenset((0, 1, 2)), 3, 4),)),
     "link must join two distinct nodes"),
    (FaultPlan(seed=0, duplications=(DuplicateFault(frozenset((0, 1)), 3, 4, copies=0),)),
     "copies must be >= 1"),
    (FaultPlan(seed=0, delays=(DelayFault(frozenset((0, 1)), 3, 4, delay=0),)),
     "delay must be >= 1"),
])
def test_validate_rejects_malformed_faults(plan, reason):
    with pytest.raises(ValueError, match=reason):
        plan.validate()


def test_validate_checks_node_range_only_with_context():
    plan = FaultPlan(seed=0, crashes=(CrashFault(99, 3, 4),),
                     reorders=(ReorderFault(99, 3, 4),))
    plan.validate()  # no n given: node ids cannot be checked
    with pytest.raises(ValueError, match=r"node 99 outside \[0, 5\)"):
        plan.validate(n=N)


def test_validate_checks_the_run_horizon_only_with_context():
    plan = FaultPlan(seed=0, crashes=(CrashFault(0, 50, 60),))
    plan.validate(n=N)  # no horizon given: windows cannot be checked
    with pytest.raises(ValueError, match="beyond the 40-round horizon"):
        plan.validate(n=N, total_rounds=SCHED.total_rounds(3))


def test_validate_returns_self_for_chaining():
    plan = FaultPlan(seed=0, crashes=(CrashFault(0, 3, 4),))
    assert plan.validate(n=N, total_rounds=SCHED.total_rounds(3)) is plan


def test_malformed_plans_fail_the_run_at_injection_time():
    """The adversary validates at begin(): a bad plan aborts the run up
    front instead of silently never firing."""
    plan = FaultPlan(seed=0, crashes=(CrashFault(N + 3, 3, 4),))
    with pytest.raises(ValueError, match="outside"):
        run_plan(plan)
