"""Adaptive chaos campaigns: escalation, frontier search, resumable state.

A *campaign* answers one question about one scenario: **how aggressive
can this adaptive strategy get before an invariant breaks?**  For a
guarded scenario (requests projected through the
:class:`~repro.faults.budget.StBudgetGuard`) the expected answer is
"arbitrarily — the guard holds", and the campaign certifies the safety
margin by running the full escalation ladder violation-free.  For an
unguarded scenario the campaign walks the ladder until the first
:class:`~repro.analysis.monitor.InvariantViolationError`, then bisects
between the last clean and first violating knob — the *failure frontier*
— which localises exactly how much over-budget pressure the protocol
absorbs before Definition 7's guarantees stop applying.

Operational hardening, because campaigns run many simulations unattended:

- every probe runs under a wall-clock budget (:class:`WallClockBudget`,
  an observer raising :class:`CampaignTimeout` mid-run) with
  retry-on-timeout;
- every probe outcome is recorded in a JSON :class:`CampaignState` file
  keyed by ``campaign_id`` and knob, so a killed sweep resumes where it
  stopped instead of re-burning finished runs;
- clean probes carry the transcript digest
  (:func:`repro.analysis.digest.transcript_digest`), which is what the
  E15 determinism replay compares.

The clock is injectable everywhere (tests drive a fake), and nothing
here reads wall-clock time except through it.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.digest import transcript_digest
from repro.analysis.monitor import InvariantViolationError, RuntimeInvariantMonitor, Violation
from repro.sim.runner import Runner, RunObserver
from repro.sim.transcript import Execution, RoundRecord

__all__ = [
    "CampaignTimeout",
    "WallClockBudget",
    "Probe",
    "ProbeOutcome",
    "run_probe",
    "CampaignState",
    "CampaignResult",
    "escalate",
    "DEFAULT_LADDER",
]

DEFAULT_LADDER = (0.2, 0.4, 0.6, 0.8, 1.0)


class CampaignTimeout(RuntimeError):
    """A probe exceeded its wall-clock budget (raised mid-run)."""


class WallClockBudget(RunObserver):
    """Observer that aborts a run when it outlives its wall-clock budget.

    ``clock`` is any zero-argument monotonic-seconds callable
    (:func:`time.monotonic` by default; tests inject a fake to exercise
    the timeout path deterministically).
    """

    def __init__(self, limit_seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        self.limit = limit_seconds
        self.clock = clock
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> None:
        self._started = self.clock()

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        if self._started is None:
            self._started = self.clock()
        self.elapsed = self.clock() - self._started
        if self.elapsed > self.limit:
            raise CampaignTimeout(
                f"probe exceeded its {self.limit}s budget at round "
                f"{record.info.round} ({self.elapsed:.3f}s elapsed)"
            )


@dataclass
class Probe:
    """One ready-to-run simulation, built fresh per attempt.

    ``build(aggressiveness) -> Probe`` factories hand these to
    :func:`run_probe`; ``monitor`` must be attached to the runner's
    observers already (the probe only declares where to read verdicts
    from), and ``extras`` collects any JSON-ready per-run telemetry
    (the E15 bench puts the SLO report here).
    """

    runner: Runner
    units: int
    monitor: RuntimeInvariantMonitor
    extras: Callable[[Execution], dict] | None = None


@dataclass
class ProbeOutcome:
    """Verdict of one probe (JSON-ready via :meth:`as_dict`)."""

    aggressiveness: float
    ok: bool | None            # None = undecided (all attempts timed out)
    violation: dict | None = None
    digest: str | None = None
    timed_out: bool = False
    attempts: int = 1
    rounds: int = 0
    extras: dict = field(default_factory=dict)
    cached: bool = False       # satisfied from CampaignState, not re-run

    def as_dict(self) -> dict:
        return {
            "aggressiveness": self.aggressiveness,
            "ok": self.ok,
            "violation": self.violation,
            "digest": self.digest,
            "timed_out": self.timed_out,
            "attempts": self.attempts,
            "rounds": self.rounds,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeOutcome":
        return cls(cached=True, **data)


def _violation_dict(violation: Violation) -> dict:
    return {
        "invariant": violation.invariant,
        "unit": violation.unit,
        "event_round": violation.event_round,
        "detected_round": violation.detected_round,
        "details": repr(violation.details),
    }


def run_probe(
    build: Callable[[float], Probe],
    aggressiveness: float,
    *,
    timeout: float | None = None,
    retries: int = 1,
    clock: Callable[[], float] = time.monotonic,
) -> ProbeOutcome:
    """Run one probe at one knob setting, with timeout + retry.

    A fresh probe is built per attempt (simulations are single-shot), a
    timed-out attempt is retried up to ``retries`` times, and an
    :class:`InvariantViolationError` from a fail-fast monitor is the
    *answer*, not an error: the outcome records the violation with full
    round attribution.  Clean runs carry their transcript digest.
    """
    attempts = 0
    while True:
        attempts += 1
        probe = build(aggressiveness)
        budget: WallClockBudget | None = None
        if timeout is not None:
            budget = WallClockBudget(timeout, clock)
            probe.runner.add_observer(budget)
            budget.start()
        try:
            execution = probe.runner.run(probe.units)
        except InvariantViolationError as error:
            return ProbeOutcome(
                aggressiveness=aggressiveness, ok=False,
                violation=_violation_dict(error.violation),
                attempts=attempts,
                rounds=len(probe.runner.execution.records),
            )
        except CampaignTimeout:
            if attempts <= retries:
                continue
            return ProbeOutcome(
                aggressiveness=aggressiveness, ok=None, timed_out=True,
                attempts=attempts,
                rounds=len(probe.runner.execution.records),
            )
        violations = probe.monitor.violations
        outcome = ProbeOutcome(
            aggressiveness=aggressiveness,
            ok=not violations,
            violation=_violation_dict(violations[0]) if violations else None,
            digest=transcript_digest(execution),
            attempts=attempts,
            rounds=len(execution.records),
        )
        if probe.extras is not None:
            outcome.extras = probe.extras(execution)
        return outcome


class CampaignState:
    """Resumable machine-readable campaign state (one JSON file).

    Outcomes are keyed ``"<campaign_id>@<knob>"``; a re-invoked campaign
    replays finished probes from the file (marked ``cached``) and only
    simulates the rest.  ``runs_executed`` counts actual simulations this
    process performed — the resumability test asserts it stays zero on a
    second pass.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.runs_executed = 0
        if self.path.exists():
            self._data: dict[str, dict] = json.loads(self.path.read_text())
        else:
            self._data = {}

    @staticmethod
    def _key(campaign_id: str, aggressiveness: float) -> str:
        return f"{campaign_id}@{aggressiveness:.6f}"

    def get(self, campaign_id: str, aggressiveness: float) -> ProbeOutcome | None:
        data = self._data.get(self._key(campaign_id, aggressiveness))
        return None if data is None else ProbeOutcome.from_dict(data)

    def put(self, campaign_id: str, outcome: ProbeOutcome) -> None:
        self._data[self._key(campaign_id, outcome.aggressiveness)] = outcome.as_dict()
        self.runs_executed += 1
        self.save()

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._data, indent=2, sort_keys=True) + "\n")


@dataclass
class CampaignResult:
    """Outcome of one escalation campaign."""

    campaign_id: str
    frontier: float | None          # lowest knob observed violating
    last_clean: float | None        # highest knob observed clean
    margin_established: bool        # whole ladder (top included) ran clean
    first_violation: dict | None
    probes: list[ProbeOutcome]

    def as_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "frontier": self.frontier,
            "last_clean": self.last_clean,
            "margin_established": self.margin_established,
            "first_violation": self.first_violation,
            "probes": [probe.as_dict() for probe in self.probes],
        }


def escalate(
    campaign_id: str,
    build: Callable[[float], Probe],
    *,
    ladder: tuple[float, ...] = DEFAULT_LADDER,
    bisect_steps: int = 3,
    timeout: float | None = None,
    retries: int = 1,
    state: CampaignState | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> CampaignResult:
    """Escalate the aggressiveness knob to the failure frontier.

    Walks ``ladder`` in ascending order until the first violating probe,
    then runs a *bounded* bisection (``bisect_steps`` extra probes)
    between the last clean and first violating knob to tighten the
    frontier.  If the whole ladder is clean the safety margin is
    established and no bisection runs.  Undecided (timed-out) probes are
    recorded but pin nothing.  With ``state``, finished knobs are
    replayed from the file instead of re-simulated.
    """

    def probe_at(knob: float) -> ProbeOutcome:
        if state is not None:
            cached = state.get(campaign_id, knob)
            if cached is not None:
                return cached
        outcome = run_probe(build, knob, timeout=timeout, retries=retries, clock=clock)
        if state is not None:
            state.put(campaign_id, outcome)
        return outcome

    probes: list[ProbeOutcome] = []
    last_clean: float | None = None
    frontier: float | None = None
    first_violation: dict | None = None

    for knob in sorted(ladder):
        outcome = probe_at(knob)
        probes.append(outcome)
        if outcome.ok:
            last_clean = knob
        elif outcome.ok is False:
            frontier = knob
            first_violation = outcome.violation
            break

    if frontier is not None:
        lo = last_clean if last_clean is not None else 0.0
        hi = frontier
        for _ in range(bisect_steps):
            mid = round((lo + hi) / 2, 6)
            if mid <= lo or mid >= hi:
                break
            outcome = probe_at(mid)
            probes.append(outcome)
            if outcome.ok:
                lo, last_clean = mid, mid
            elif outcome.ok is False:
                hi, frontier = mid, mid
                first_violation = outcome.violation
            else:
                break  # undecided: stop tightening rather than loop
    margin = frontier is None and last_clean is not None and last_clean == max(ladder)
    return CampaignResult(
        campaign_id=campaign_id,
        frontier=frontier,
        last_clean=last_clean,
        margin_established=margin,
        first_violation=first_violation,
        probes=probes,
    )
