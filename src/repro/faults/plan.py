"""Seed-deterministic, composable fault schedules.

The experiments' adversaries (``repro.adversary.strategies``) each encode
one archetypal *attack*; this module encodes the orthogonal plane of
*faults* — the churn, duplication, delay and partial-state-loss shapes
that Byzantine-tolerant systems meet in practice and that the paper's
model folds into the same ``(s,t)``-limited adversary (a crash is a
break-in during which the intruder stays silent; a flaky link is an
unreliable link per Definition 4).

A :class:`FaultPlan` is a static, declarative schedule of fault
primitives.  It is executed by
:class:`repro.faults.inject.FaultInjectionAdversary`, which composes with
any existing :class:`~repro.sim.adversary_api.Adversary`, and it is
audited by the existing Definition 3/7 accounting in
:mod:`repro.adversary.limits` — a plan built by :meth:`FaultPlan.generate`
stays ``(s,t)``-limited by construction, so every security statement of
the paper must keep holding under it (the chaos experiments assert
exactly that).

Primitives:

- :class:`CrashFault` — fail-stop outage: the node is broken into and the
  intruder does nothing.  Recorded as broken for ``[first_round,
  last_round]``; the program is silent one extra round (the runner's
  leave semantics) and recovers connectivity at the next refreshment
  phase (Def. 5.3).
- :class:`MemoryCorruptionFault` — a one-round break-in that mutates the
  node's RAM (by default its PDS share, the state the refresh protocol's
  commitment-sync + share-recovery machinery exists to repair).
- :class:`DropFault` / :class:`DuplicateFault` / :class:`DelayFault` —
  link-level loss, duplication and bounded delay (UL model only; all
  three make the link unreliable under Definition 4).  Delayed messages
  that would cross a time-unit boundary are discarded instead (per-unit
  timeout), so stale traffic never pollutes a refreshment phase.
- :class:`ReorderFault` — shuffles a receiver's inbox.  Deliberately
  *invisible* to Definition 4 (same multiset per link): it costs the
  adversary nothing and protocols must be order-independent under it.
- :func:`burst` — a composition helper: every kind of fault at once
  inside one round window, aimed at one victim set.

All randomness used while *executing* a plan is derived from
``plan.seed``, never from wall-clock or global state: identical seed and
plan imply an identical transcript.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.sim.clock import Schedule

__all__ = [
    "CrashFault",
    "MemoryCorruptionFault",
    "DropFault",
    "DuplicateFault",
    "DelayFault",
    "ReorderFault",
    "FaultPlan",
    "burst",
    "mix_seed",
]


def mix_seed(*parts: object) -> int:
    """Stable integer from arbitrary labels (runs are reproducible across
    processes, unlike ``hash``)."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# -- node-level primitives ---------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop outage over the inclusive round interval."""

    node: int
    first_round: int
    last_round: int

    def active(self, round_number: int) -> bool:
        return self.first_round <= round_number <= self.last_round


@dataclass(frozen=True)
class MemoryCorruptionFault:
    """Break in at ``round``, mutate RAM, leave the next round.

    ``mutator(program, rng)`` does the damage; ``None`` selects
    :func:`default_corruptor` (flip the PDS share / scramble a ``secret``
    attribute).  Honest accounting: the node is recorded broken at
    ``round`` — memory corruption *is* a break-in in the paper's model.
    """

    node: int
    round: int
    mutator: Callable[[Any, random.Random], None] | None = None


# -- link-level primitives ---------------------------------------------------


def _norm_link(link: tuple[int, int] | frozenset | None) -> frozenset | None:
    return None if link is None else frozenset(link)


@dataclass(frozen=True)
class DropFault:
    """Drop traffic on one link (both directions), ``None`` = all links."""

    link: frozenset | None
    first_round: int
    last_round: int
    probability: float = 1.0
    channels: frozenset[str] | None = None

    def matches(self, sender: int, receiver: int, channel: str, round_number: int) -> bool:
        if not (self.first_round <= round_number <= self.last_round):
            return False
        if self.channels is not None and channel not in self.channels:
            return False
        return self.link is None or self.link == frozenset((sender, receiver))


@dataclass(frozen=True)
class DuplicateFault:
    """Deliver ``copies`` extra identical copies of matching traffic."""

    link: frozenset | None
    first_round: int
    last_round: int
    copies: int = 1
    probability: float = 1.0
    channels: frozenset[str] | None = None

    matches = DropFault.matches


@dataclass(frozen=True)
class DelayFault:
    """Hold matching traffic ``delay`` extra rounds; discard instead of
    delivering across a time-unit boundary (per-unit timeout)."""

    link: frozenset | None
    first_round: int
    last_round: int
    delay: int = 1
    probability: float = 1.0
    channels: frozenset[str] | None = None

    matches = DropFault.matches


@dataclass(frozen=True)
class ReorderFault:
    """Shuffle the delivery order inside matching inboxes."""

    receiver: int | None  # None = every receiver
    first_round: int
    last_round: int

    def active(self, round_number: int) -> bool:
        return self.first_round <= round_number <= self.last_round


# -- the plan -----------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A static schedule of faults (see module docstring)."""

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    corruptions: tuple[MemoryCorruptionFault, ...] = ()
    drops: tuple[DropFault, ...] = ()
    duplications: tuple[DuplicateFault, ...] = ()
    delays: tuple[DelayFault, ...] = ()
    reorders: tuple[ReorderFault, ...] = ()

    # -- composition ----------------------------------------------------------

    def compose(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two schedules; the combined seed is a stable mix."""
        return FaultPlan(
            seed=mix_seed("compose", self.seed, other.seed),
            crashes=self.crashes + other.crashes,
            corruptions=self.corruptions + other.corruptions,
            drops=self.drops + other.drops,
            duplications=self.duplications + other.duplications,
            delays=self.delays + other.delays,
            reorders=self.reorders + other.reorders,
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- introspection --------------------------------------------------------

    def is_empty(self) -> bool:
        return not (self.crashes or self.corruptions or self.drops
                    or self.duplications or self.delays or self.reorders)

    def fault_count(self) -> int:
        return (len(self.crashes) + len(self.corruptions) + len(self.drops)
                + len(self.duplications) + len(self.delays) + len(self.reorders))

    def victims(self) -> frozenset[int]:
        """Nodes directly targeted by node-level faults."""
        nodes = {c.node for c in self.crashes}
        nodes |= {c.node for c in self.corruptions}
        return frozenset(nodes)

    def describe(self) -> str:
        parts = []
        for label, faults in (
            ("crash", self.crashes), ("corrupt", self.corruptions),
            ("drop", self.drops), ("dup", self.duplications),
            ("delay", self.delays), ("reorder", self.reorders),
        ):
            if faults:
                parts.append(f"{label}x{len(faults)}")
        body = "+".join(parts) if parts else "empty"
        return f"FaultPlan(seed={self.seed}, {body})"

    # -- validation -----------------------------------------------------------

    def validate(self, *, n: int | None = None, total_rounds: int | None = None) -> "FaultPlan":
        """Reject malformed faults instead of letting them silently never fire.

        Raises :class:`ValueError` on: inverted windows (``last_round <
        first_round``), negative rounds, probabilities outside ``[0, 1]``,
        non-positive ``copies``/``delay``, malformed links, and — when the
        optional context is given — node ids outside ``[0, n)`` or windows
        starting at/after ``total_rounds`` (the run horizon).  Returns
        ``self`` so call sites can chain.  Called from
        :meth:`FaultInjectionAdversary.begin <repro.faults.inject.FaultInjectionAdversary>`
        at injection time, so a bad plan fails the run up front rather
        than producing a quietly fault-free execution.
        """
        def bad(fault: object, reason: str) -> ValueError:
            return ValueError(f"invalid {type(fault).__name__}: {reason} ({fault!r})")

        def check_window(fault: object, first: int, last: int) -> None:
            if last < first:
                raise bad(fault, f"last_round {last} < first_round {first}")
            if first < 0:
                raise bad(fault, f"negative first_round {first}")
            if total_rounds is not None and first >= total_rounds:
                raise bad(fault, f"window starts at {first}, beyond the "
                                 f"{total_rounds}-round horizon")

        def check_node(fault: object, node: int) -> None:
            if n is not None and not (0 <= node < n):
                raise bad(fault, f"node {node} outside [0, {n})")

        def check_link(fault: object) -> None:
            if fault.link is not None:
                if len(fault.link) != 2:
                    raise bad(fault, "link must join two distinct nodes")
                for endpoint in fault.link:
                    check_node(fault, endpoint)
            if not (0.0 <= fault.probability <= 1.0):
                raise bad(fault, f"probability {fault.probability} outside [0, 1]")

        for fault in self.crashes:
            check_window(fault, fault.first_round, fault.last_round)
            check_node(fault, fault.node)
        for fault in self.corruptions:
            check_window(fault, fault.round, fault.round)
            check_node(fault, fault.node)
        for fault in self.drops:
            check_window(fault, fault.first_round, fault.last_round)
            check_link(fault)
        for fault in self.duplications:
            check_window(fault, fault.first_round, fault.last_round)
            check_link(fault)
            if fault.copies < 1:
                raise bad(fault, f"copies must be >= 1, got {fault.copies}")
        for fault in self.delays:
            check_window(fault, fault.first_round, fault.last_round)
            check_link(fault)
            if fault.delay < 1:
                raise bad(fault, f"delay must be >= 1, got {fault.delay}")
        for fault in self.reorders:
            check_window(fault, fault.first_round, fault.last_round)
            if fault.receiver is not None:
                check_node(fault, fault.receiver)
        return self

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        n: int,
        t: int,
        schedule: Schedule,
        units: int,
        *,
        s: int | None = None,
        start_unit: int = 1,
        kinds: Iterable[str] = ("crash", "corrupt", "drop", "duplicate", "delay", "reorder"),
        max_victims_per_unit: int | None = None,
    ) -> "FaultPlan":
        """A random fault schedule that is ``(s,t)``-limited by construction.

        Per time unit the generator picks at most ``min(t,
        max_victims_per_unit)`` victims and aims every node- and
        link-level fault at them, confined to the unit's *normal* rounds
        with enough margin that each victim steps through the following
        refreshment phase from its first round — the standard proactive
        recovery contract (Def. 5.3, mirroring
        :class:`~repro.adversary.strategies.BreakinPlan`).  Non-victim
        collateral is bounded: a non-victim never sees more than ``s - 1``
        faulted links in one unit, so it can neither lose ``n - s``
        reliable peers nor accumulate ``s`` unreliable ones — only the
        ≤ t victims can be impaired, which is exactly Definition 7's
        budget under the instantaneous reading audited by
        :func:`repro.adversary.limits.audit_st_limited`.
        """
        s = t if s is None else s
        if t < 1:
            # a (s,0)-limited adversary may fault nothing: the empty plan
            return cls(seed=mix_seed("fault-plan", seed, n, t, s, units, start_unit))
        kinds = tuple(kinds)
        rng = random.Random(mix_seed("fault-plan", seed, n, t, s, units, start_unit, kinds))
        crashes: list[CrashFault] = []
        corruptions: list[MemoryCorruptionFault] = []
        drops: list[DropFault] = []
        duplications: list[DuplicateFault] = []
        delays: list[DelayFault] = []
        reorders: list[ReorderFault] = []

        link_kinds = [k for k in kinds if k in ("drop", "duplicate", "delay") and s >= 2]
        node_kinds = [k for k in kinds if k in ("crash", "corrupt")]

        for unit in range(start_unit, units):
            first_normal = schedule.first_normal_round(unit)
            last_normal = first_normal + schedule.normal_rounds - 1
            if last_normal - first_normal < 3:
                continue  # not enough room for safe margins
            budget = min(t, max_victims_per_unit or t)
            victims = sorted(rng.sample(range(n), rng.randint(1, budget)))
            # collateral budget: faulted links incident to each non-victim
            peer_load = {j: 0 for j in range(n)}
            for victim in victims:
                choices = node_kinds + link_kinds
                kind = rng.choice(choices) if choices else None
                if kind == "crash":
                    # last+2 <= refresh start, so the program resumes by the
                    # first refreshment round (see CrashFault docstring)
                    first = rng.randint(first_normal, last_normal - 2)
                    last = rng.randint(first, last_normal - 1)
                    crashes.append(CrashFault(node=victim, first_round=first, last_round=last))
                elif kind == "corrupt":
                    # break round r, silent r+1, resume r+2 <= refresh start
                    round_number = rng.randint(first_normal, last_normal - 1)
                    corruptions.append(
                        MemoryCorruptionFault(node=victim, round=round_number)
                    )
                elif kind in ("drop", "duplicate", "delay"):
                    peers = [
                        j for j in range(n)
                        if j != victim and j not in victims and peer_load[j] < s - 1
                    ]
                    rng.shuffle(peers)
                    # fewer than s faulted links keeps even the victim
                    # operational some of the time; more disconnects it —
                    # both stay within the <= t-victims budget
                    for peer in peers[: rng.randint(1, max(1, s - 1))]:
                        peer_load[peer] += 1
                        first = rng.randint(first_normal, last_normal - 2)
                        last = rng.randint(first, last_normal - 1)
                        link = frozenset((victim, peer))
                        if kind == "drop":
                            drops.append(DropFault(link=link, first_round=first, last_round=last))
                        elif kind == "duplicate":
                            duplications.append(DuplicateFault(
                                link=link, first_round=first, last_round=last,
                                copies=rng.randint(1, 2),
                            ))
                        else:
                            max_delay = max(1, min(3, last_normal - last))
                            delays.append(DelayFault(
                                link=link, first_round=first, last_round=last,
                                delay=rng.randint(1, max_delay),
                            ))
            if "reorder" in kinds and rng.random() < 0.5:
                reorders.append(ReorderFault(
                    receiver=None, first_round=first_normal, last_round=last_normal,
                ))

        return cls(
            seed=seed,
            crashes=tuple(crashes),
            corruptions=tuple(corruptions),
            drops=tuple(drops),
            duplications=tuple(duplications),
            delays=tuple(delays),
            reorders=tuple(reorders),
        )


def burst(
    seed: int,
    victims: Iterable[int],
    peers: Iterable[int],
    first_round: int,
    last_round: int,
    *,
    delay: int = 1,
    copies: int = 1,
) -> FaultPlan:
    """A fault burst: crash + drop + duplicate + delay aimed at ``victims``
    inside one window.  Deliberately *not* limit-respecting — bursts are
    for stress tests and for exercising the monitor's fail-fast path."""
    victims = sorted(set(victims))
    peers = sorted(set(peers))
    drops, dups, dels = [], [], []
    for i, victim in enumerate(victims):
        for j, peer in enumerate(peers):
            if peer == victim:
                continue
            link = frozenset((victim, peer))
            bucket = (i + j) % 3
            if bucket == 0:
                drops.append(DropFault(link=link, first_round=first_round, last_round=last_round))
            elif bucket == 1:
                dups.append(DuplicateFault(
                    link=link, first_round=first_round, last_round=last_round, copies=copies))
            else:
                dels.append(DelayFault(
                    link=link, first_round=first_round, last_round=last_round, delay=delay))
    return FaultPlan(
        seed=seed,
        crashes=tuple(
            CrashFault(node=v, first_round=first_round, last_round=last_round)
            for v in victims[: max(1, len(victims) // 2)]
        ),
        drops=tuple(drops),
        duplications=tuple(dups),
        delays=tuple(dels),
        reorders=(ReorderFault(receiver=None, first_round=first_round, last_round=last_round),),
    )


def default_corruptor(program: Any, rng: random.Random) -> None:
    """Generic RAM damage: flip the PDS share if the program holds one
    (the state the refresh protocol repairs), otherwise scramble a
    ``secret`` attribute if present."""
    state = getattr(program, "state", None)
    share = getattr(state, "share", None)
    if share is not None and hasattr(share, "value"):
        from repro.crypto.shamir import Share

        state.share = Share(x=share.x, value=share.value + rng.randint(1, 1 << 16))
        return
    if hasattr(program, "secret"):
        program.secret = f"corrupted-{rng.randint(0, 1 << 30)}"


__all__.append("default_corruptor")
