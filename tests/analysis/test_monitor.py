"""RuntimeInvariantMonitor: incremental checking, fail-fast, attribution."""

import pytest

from tests.helpers import EchoProgram
from repro.analysis import (
    InvariantViolationError,
    RuntimeInvariantMonitor,
    check_emulation_invariants,
)
from repro.faults import CrashFault, FaultInjectionAdversary, FaultPlan, burst
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import ALERT, NodeContext, NodeProgram
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N, T = 5, 2


def run_monitored(programs, adversary, monitor, units=3, seed=42):
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=seed,
                      observers=[monitor])
    return runner.run(units=units)


# ------------------------------------------------------------------ clean runs

def test_clean_run_has_no_violations_and_matches_post_hoc():
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    programs = [EchoProgram() for _ in range(N)]
    execution = run_monitored(programs, PassiveAdversary(), monitor)
    assert monitor.ok and monitor.finalized
    assert monitor.rounds_seen == len(execution.records)
    post = check_emulation_invariants(execution, T)
    assert monitor.violation_tuples() == post.violations == []


def test_clean_faulty_run_within_limits_is_still_clean():
    for seed in range(5):
        plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=SCHED, units=3)
        monitor = RuntimeInvariantMonitor(T, fail_fast=True)
        programs = [EchoProgram() for _ in range(N)]
        execution = run_monitored(programs, FaultInjectionAdversary(plan), monitor)
        assert monitor.ok, (seed, monitor.violations)
        assert check_emulation_invariants(execution, T).ok


# ---------------------------------------------------------- L1 fail-fast round

def test_l1_fail_fast_reports_the_exact_round():
    """t+1 simultaneous crashes break the Definition 7 budget at a known
    round; the monitor must raise *during* that round, naming it."""
    plan = FaultPlan(seed=1, crashes=tuple(
        CrashFault(node=i, first_round=6, last_round=8) for i in range(T + 1)))
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    programs = [EchoProgram() for _ in range(N)]
    with pytest.raises(InvariantViolationError) as excinfo:
        run_monitored(programs, FaultInjectionAdversary(plan), monitor)
    violation = excinfo.value.violation
    assert violation.invariant == "L1-limit"
    assert violation.event_round == 6
    assert violation.detected_round == 6
    assert violation.details["impaired"] == [0, 1, 2]


def test_burst_plan_fails_fast_at_its_first_round():
    plan = burst(9, victims=[0, 1, 2], peers=range(N), first_round=5, last_round=9)
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    programs = [EchoProgram() for _ in range(N)]
    with pytest.raises(InvariantViolationError) as excinfo:
        run_monitored(programs, FaultInjectionAdversary(plan), monitor)
    assert excinfo.value.violation.event_round == 5


def test_fail_fast_false_collects_everything():
    plan = FaultPlan(seed=1, crashes=tuple(
        CrashFault(node=i, first_round=6, last_round=8) for i in range(T + 1)))
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    programs = [EchoProgram() for _ in range(N)]
    run_monitored(programs, FaultInjectionAdversary(plan), monitor)
    assert not monitor.ok
    rounds = [v.event_round for v in monitor.violations]
    # broken at 6..8, then still s-disconnected until the next refresh
    # phase re-admits them (Def. 5.3) — every such round is over budget
    assert rounds[:3] == [6, 7, 8]
    assert rounds == sorted(rounds)
    assert all(v.invariant == "L1-limit" for v in monitor.violations)


def test_check_limits_false_disables_l1():
    plan = FaultPlan(seed=1, crashes=tuple(
        CrashFault(node=i, first_round=6, last_round=8) for i in range(T + 1)))
    monitor = RuntimeInvariantMonitor(T, check_limits=False, fail_fast=True)
    programs = [EchoProgram() for _ in range(N)]
    run_monitored(programs, FaultInjectionAdversary(plan), monitor)
    assert monitor.ok


# ------------------------------------------------------------------- I3 alerts

class AlwaysAlertProgram(NodeProgram):
    """Alerts at one fixed round while staying fully operational — the
    textbook I3 violation (an ideal-model node never alerts unprovoked)."""

    def __init__(self, alert_round):
        super().__init__()
        self.alert_round = alert_round

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        ctx.broadcast("noise", ctx.info.round)
        if ctx.info.round == self.alert_round:
            ctx.alert()


def test_i3_violation_carries_the_alert_round():
    alert_round = 7
    programs = [AlwaysAlertProgram(alert_round if i == 0 else -1) for i in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    execution = run_monitored(programs, PassiveAdversary(), monitor, units=2)
    i3 = [v for v in monitor.violations if v.invariant == "I3-false-alert"]
    assert len(i3) == 1
    assert i3[0].event_round == alert_round
    assert i3[0].unit == SCHED.info(alert_round).time_unit
    assert i3[0].details == (0, 0)  # (unit, node)
    # detection waits for the unit boundary ("operational throughout" is
    # not knowable earlier), which is still mid-run, not post-hoc
    assert i3[0].detected_round == SCHED.rounds_of_unit(0)[-1] + 1
    # and the post-hoc checker agrees
    post = check_emulation_invariants(execution, T)
    assert ("I3-false-alert", (0, 0)) in post.violations


def test_i3_alert_in_last_unit_is_caught_at_run_end():
    last_round = SCHED.total_rounds(2) - 1
    programs = [AlwaysAlertProgram(last_round if i == 1 else -1) for i in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    run_monitored(programs, PassiveAdversary(), monitor, units=2)
    i3 = [v for v in monitor.violations if v.invariant == "I3-false-alert"]
    assert len(i3) == 1 and i3[0].event_round == last_round


def test_broken_node_alert_is_not_a_violation():
    """An alert from a node that was broken during the unit is legitimate
    (it is not operational-throughout)."""
    alert_round = 7
    programs = [AlwaysAlertProgram(alert_round if i == 0 else -1) for i in range(N)]
    plan = FaultPlan(seed=1, crashes=(CrashFault(node=0, first_round=3,
                                                 last_round=4),))
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    run_monitored(programs, FaultInjectionAdversary(plan), monitor, units=2)
    assert monitor.ok


# ------------------------------------------------------------------ I1 signing

class FakeSignerProgram(NodeProgram):
    """Outputs "signed" without any quorum of "asked-to-sign" — a forged
    signature appearing in the global output (the I1 event)."""

    def __init__(self, forge_round):
        super().__init__()
        self.forge_round = forge_round

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        ctx.broadcast("noise", ctx.info.round)
        if ctx.info.round == self.forge_round:
            ctx.output(("signed", "forged-msg", ctx.info.time_unit))


def test_i1_violation_attributes_the_signed_event():
    forge_round = 7
    programs = [FakeSignerProgram(forge_round if i == 0 else -1) for i in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    execution = run_monitored(programs, PassiveAdversary(), monitor, units=2)
    i1 = [v for v in monitor.violations if v.invariant == "I1-threshold"]
    assert len(i1) == 1
    assert i1[0].event_round == forge_round
    assert i1[0].unit == 0
    # post-hoc checker flags the same (message, unit)
    post = check_emulation_invariants(execution, T)
    assert any(label == "I1-threshold" for label, _ in post.violations)


def test_i1_signed_event_after_its_unit_is_decided_immediately():
    """A forged "signed" for unit 0 appearing in unit 1 is decidable the
    round it appears (unit 0's data is final by then)."""
    forge_round = SCHED.first_normal_round(1) + 1
    programs = [FakeSignerProgram(-1) for _ in range(N)]

    class LateForger(FakeSignerProgram):
        def step(self, ctx, inbox):
            ctx.broadcast("noise", ctx.info.round)
            if ctx.info.round == self.forge_round:
                ctx.output(("signed", "late-forgery", 0))  # claims unit 0

    programs[0] = LateForger(forge_round)
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    run_monitored(programs, PassiveAdversary(), monitor, units=2)
    i1 = [v for v in monitor.violations if v.invariant == "I1-threshold"]
    assert len(i1) == 1
    assert i1[0].event_round == forge_round
    assert i1[0].detected_round == forge_round  # no waiting for a boundary


def test_legitimately_requested_signature_is_not_flagged():
    """t+1 requests before the signature -> I1 holds; the monitor must not
    false-positive mid-unit while requests are still accumulating."""

    class RequesterProgram(NodeProgram):
        def __init__(self, ask_round, sign_round):
            super().__init__()
            self.ask_round = ask_round
            self.sign_round = sign_round

        def step(self, ctx, inbox):
            ctx.broadcast("noise", ctx.info.round)
            if ctx.info.round == self.ask_round:
                ctx.output(("asked-to-sign", "m", ctx.info.time_unit))
            if self.sign_round == ctx.info.round:
                ctx.output(("signed", "m", ctx.info.time_unit))

    # all nodes ask at round 5 and all report signed at round 8 (so I2
    # holds too); no I1 may fire even though the quorum was still
    # accumulating when the unit began
    programs = [RequesterProgram(5, 8) for i in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    run_monitored(programs, PassiveAdversary(), monitor, units=2)
    i1 = [v for v in monitor.violations if v.invariant == "I1-threshold"]
    assert i1 == []


# ----------------------------------------------------------------- I2 liveness

def test_i2_violation_detected_with_one_unit_grace():
    """All n nodes ask, nobody signs: I2 breaks.  Detection must wait one
    full unit (signatures may legitimately complete in u+1) and then fire."""

    class AskOnlyProgram(NodeProgram):
        def step(self, ctx, inbox):
            ctx.broadcast("noise", ctx.info.round)
            if ctx.info.round == 5:
                ctx.output(("asked-to-sign", "m", ctx.info.time_unit))

    programs = [AskOnlyProgram() for _ in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=False)
    execution = run_monitored(programs, PassiveAdversary(), monitor, units=3)
    i2 = [v for v in monitor.violations if v.invariant == "I2-liveness"]
    assert len(i2) == 1
    assert i2[0].unit == 0
    assert i2[0].details[1] == list(range(N))  # everyone is missing
    # decided when unit 2 started, not at run end
    assert i2[0].detected_round == SCHED.rounds_of_unit(2)[0]
    post = check_emulation_invariants(execution, T)
    assert any(label == "I2-liveness" for label, _ in post.violations)


# ------------------------------------------------------------ degraded events

def test_degraded_events_are_collected_not_flagged():
    class DegradingProgram(NodeProgram):
        def step(self, ctx, inbox):
            ctx.broadcast("noise", ctx.info.round)
            if ctx.info.round == 6:
                ctx.output(("degraded", {"node": ctx.node_id, "unit": 0,
                                         "round": 6, "reason": "test"}))

    programs = [DegradingProgram() for _ in range(N)]
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    run_monitored(programs, PassiveAdversary(), monitor, units=2)
    assert monitor.ok
    assert len(monitor.degraded_events) == N
    node, event_round, payload = monitor.degraded_events[0]
    assert event_round == 6 and payload["reason"] == "test"
