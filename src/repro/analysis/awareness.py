"""Global awareness (§5.1): detecting an over-powered adversary.

The paper's local awareness (Def. 11) tells an impersonated node about
its own situation.  §5.1 adds a *global* concern: an "almost
(t,t)-limited" adversary — one that injects on arbitrarily many links —
can deny certificates to many nodes at once.  Emulation then fails, but
the system as a whole can still notice: under a genuinely (t,t)-limited
adversary at most ``t`` nodes per unit can be impaired, so **more than
t alerting nodes in one unit is proof the adversary exceeded the model**.

:func:`global_awareness` scans an execution for that signal.  Operators
in the paper's deployment story would treat it as the trigger for
out-of-band recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.node import ALERT
from repro.sim.transcript import Execution

__all__ = ["GlobalAwarenessReport", "global_awareness"]


@dataclass(frozen=True)
class GlobalAwarenessReport:
    """Per-unit alerting sets and the units that exceed the model."""

    t: int
    alerting_nodes: dict[int, frozenset[int]]
    #: units where the number of alerting nodes exceeds t — impossible
    #: under any (t,t)-limited adversary (except with negligible
    #: probability), hence evidence the model's bounds were exceeded
    model_exceeded_units: tuple[int, ...]

    @property
    def adversary_exceeded_model(self) -> bool:
        return bool(self.model_exceeded_units)


def global_awareness(execution: Execution, t: int) -> GlobalAwarenessReport:
    """Compute the §5.1 global-awareness signal for an execution."""
    alerting: dict[int, frozenset[int]] = {}
    exceeded: list[int] = []
    for unit in range(execution.units()):
        nodes = frozenset(
            node
            for node in range(execution.n)
            if any(entry == ALERT for entry in execution.outputs_of_in_unit(node, unit))
        )
        if nodes:
            alerting[unit] = nodes
        if len(nodes) > t:
            exceeded.append(unit)
    return GlobalAwarenessReport(
        t=t, alerting_nodes=alerting, model_exceeded_units=tuple(exceeded)
    )
