"""The minimum viable configuration: n = 3, t = 1 (n = 2t + 1)."""

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 3, 1
SCHED = uls_schedule()


def build_and_run(adversary=None, units=2, seed=6, sign_plan=None):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    for node_id, round_number, message in sign_plan or []:
        runner.add_external_input(node_id, round_number, ("sign", message))
    execution = runner.run(units=units)
    return public, programs, execution


def test_minimum_network_refreshes_and_signs():
    r1 = SCHED.first_normal_round(1)
    public, programs, execution = build_and_run(
        sign_plan=[(i, r1, "tiny") for i in range(N)]
    )
    for program in programs:
        assert program.keystore.history == [(1, "ok")]
        assert program.state.share_is_valid()
        assert program.core.alert_units == []
    signature = programs[0].signatures[("tiny", 1)]
    assert verify_user_signature(public, "tiny", 1, signature)


def test_minimum_network_survives_single_breakin():
    plan = BreakinPlan(victims={0: frozenset({2})})
    public, programs, execution = build_and_run(
        adversary=MobileBreakInAdversary(plan)
    )
    assert programs[2].keystore.history == [(1, "ok")]
    assert programs[2].state.share_is_valid()


def test_two_requests_needed_at_t1():
    r0 = SCHED.first_normal_round(0)
    public, programs, execution = build_and_run(
        sign_plan=[(0, r0, "solo")]  # only one request: below t+1 = 2
    )
    for i in range(N):
        assert ("signed", "solo", 0) not in execution.outputs_of(i)
