"""The §1.3 strawman: the attack succeeds against it, silently.

This is the negative control for the whole paper: the same cut-off
adversary that ULS/Λ detect and neutralize completely hijacks the naive
sign-the-new-key-with-the-old-key scheme.
"""

from repro.adversary.strategies import CutOffAdversary
from repro.core.naive import NaiveImpersonator, NaiveProgram
from repro.core.views import impersonations
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.node import ALERT
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N = 5
SCHED = Schedule(setup_rounds=2, refresh_rounds=3, normal_rounds=8)


def run(adversary=None, units=4, sends=None, seed=6):
    programs = [NaiveProgram(SCHEME) for _ in range(N)]
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=2, seed=seed)
    for node_id, round_number, dst, message in sends or []:
        runner.add_external_input(node_id, round_number, ("send", dst, message))
    execution = runner.run(units=units)
    return execution, runner


def test_benign_naive_run_works():
    """Without an adversary the strawman is perfectly functional — that is
    what makes it tempting."""
    r = SCHED.first_normal_round(2)
    sends = [(0, r, 1, "hello"), (3, r + 1, 2, "world")]
    execution, _ = run(sends=sends, units=3)
    assert ("app-recv", 0, "naive-app", "hello") in execution.outputs_of(1)
    assert ("app-recv", 3, "naive-app", "world") in execution.outputs_of(2)
    for unit in range(3):
        for i in range(N):
            assert impersonations(execution, i, unit) == set()


def test_keys_rotate_each_unit():
    _, runner = run(units=3)
    program = runner.nodes[0].program
    assert program.unit == 2  # rekeyed at units 1 and 2


def test_cutoff_attack_hijacks_naive_scheme_silently():
    """The paper's §1.3 attack: steal one key, forge the next rekey, own
    the victim's identity forever after — and the victim never notices."""
    victim = 4
    impersonator = NaiveImpersonator(SCHEME, victim=victim, rng_seed=99)
    adversary = CutOffAdversary(victim=victim, break_unit=1, impersonator=impersonator)
    execution, runner = run(adversary=adversary, units=4)

    # forged application messages were accepted as coming from the victim
    # in units 2 and 3 (after the stolen key signed the fake rekey)
    forged_2 = impersonations(execution, victim, 2)
    forged_3 = impersonations(execution, victim, 3)
    assert forged_2, "unit-2 impersonation should succeed against the strawman"
    assert forged_3, "the hijack persists in later units"

    # the other nodes now hold the adversary's key for the victim
    for i in range(N - 1):
        stored = runner.nodes[i].program.peer_keys[victim]
        assert stored == impersonator.chain_key.verify_key

    # and the victim is completely unaware: it never outputs alert
    for unit in range(4):
        assert execution.alerts_in_unit(victim, unit) == 0
    assert ALERT not in execution.outputs_of(victim)


def test_rekey_with_wrong_old_key_rejected():
    """Sanity check on the strawman itself: a rekey signed with an
    unrelated key is rejected (the attack needs the genuinely stolen
    key, not nothing)."""
    import random

    from repro.core.naive import NAIVE_REKEY, _rekey_bytes
    from repro.sim.adversary_api import Adversary, faithful_delivery

    class BadRekey(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round == SCHED.refresh_start(1):
                rng = random.Random(1)
                wrong = SCHEME.generate(rng)
                fake = SCHEME.generate(rng)
                sig = SCHEME.sign(wrong.signing_key,
                                  _rekey_bytes(SCHEME, 4, 1, fake.verify_key))
                for receiver in range(api.n - 1):
                    plan[receiver].append(api.forge_envelope(
                        4, receiver, NAIVE_REKEY, ("rekey", 1, fake.verify_key, sig)))
            return plan

    execution, runner = run(adversary=BadRekey(), units=2)
    # victims' peers still track the victim's true key: messages flow
    r = SCHED.first_normal_round(1)
    execution2, runner2 = run(adversary=BadRekey(), units=2,
                              sends=[(4, r + 1, 0, "still-me")])
    assert ("app-recv", 4, "naive-app", "still-me") in execution2.outputs_of(0)
