"""Agreement substrate (§1.4): broadcast emulation over reliable links.

The AL model provides point-to-point links only; the PDS sub-protocols
need (weakly) consistent broadcast.  Two classical constructions:

- :mod:`repro.agreement.echo` — two-step echo broadcast (weak consistency,
  constant rounds, works over any :class:`~repro.pds.transport.Transport`);
- :mod:`repro.agreement.dolev_strong` — Dolev–Strong signature chains
  (full byzantine broadcast, ``t + 1`` rounds).
"""

from repro.agreement.dolev_strong import DolevStrongProgram
from repro.agreement.echo import BOTTOM, EchoBroadcast

__all__ = ["DolevStrongProgram", "EchoBroadcast", "BOTTOM"]
