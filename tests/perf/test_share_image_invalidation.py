"""Rotation-bucket invalidation of the share-image cache.

``PdsNodeState.install_share`` must drop the superseded commitment's
whole bucket: memoized images (and fixed-base windows) of the
pre-refresh sharing must never serve the refreshed key.
"""

import random

from repro.crypto.feldman import FeldmanDealer
from repro.crypto.group import named_group
from repro.crypto.shamir import Share
from repro.pds.keys import deal_initial_states
from repro.perf.share_image import share_image_cache, share_image_value

GROUP = named_group("toy64")
N, T = 5, 2


def _refreshed(state, rng):
    """A Herzberg refresh of ``state``: combine with a zero dealing."""
    dealer = FeldmanDealer(GROUP, n=N, threshold=T)
    zero = dealer.deal_zero(rng)
    new_commitment = state.key_commitment.combine(GROUP, zero.commitment)
    zero_share = zero.shares[state.node_id]
    new_share = Share(
        x=state.share.x,
        value=(state.share.value + zero_share.value) % GROUP.q,
    )
    return new_share, new_commitment


def test_install_share_drops_old_rotation_bucket(perf):
    rng = random.Random(21)
    public, states = deal_initial_states(GROUP, n=N, threshold=T, rng=rng)
    state = states[0]
    old = state.key_commitment
    cache = share_image_cache()

    # warm the old commitment's bucket from every verifier's viewpoint
    for x in range(1, N + 1):
        share_image_value(GROUP, old.elements, x)
    assert cache.has_bucket(GROUP, old.elements)

    new_share, new_commitment = _refreshed(state, rng)
    state.install_share(new_share, new_commitment, unit=1)

    assert not cache.has_bucket(GROUP, old.elements)
    # the refreshed sharing computes fresh, correct images
    image = share_image_value(GROUP, new_commitment.elements, new_share.x)
    assert image == GROUP.base_power(new_share.value)
    assert new_commitment.verify_share(GROUP, new_share)


def test_reinstalling_same_commitment_keeps_bucket(perf):
    rng = random.Random(22)
    public, states = deal_initial_states(GROUP, n=N, threshold=T, rng=rng)
    state = states[1]
    commitment = state.key_commitment
    cache = share_image_cache()

    share_image_value(GROUP, commitment.elements, state.share.x)
    assert cache.has_bucket(GROUP, commitment.elements)
    hits_before = cache.hits

    # a recovery path may re-install the very same sharing; its memo stays
    state.install_share(state.share, commitment, unit=0, kind="recovery")
    assert cache.has_bucket(GROUP, commitment.elements)
    share_image_value(GROUP, commitment.elements, state.share.x)
    assert cache.hits == hits_before + 1
