"""E1 — Lemma 15: DISPERSE delivery vs. adversarial link destruction.

The lemma: if sender and receiver are both s-operational with
``s <= (n-1)/2``, DISPERSE delivers.  We attack worst-case: the adversary
kills the direct link, the sender's links to the "top" k nodes, and the
receiver's links to the "bottom" k nodes — a split attack that leaves a
common reliable neighbour exactly while ``2k < n - 2``.  The measured
delivery curve must be a step function: 100% up to the combinatorial
crossover, 0% past it.
"""

import os

import pytest

from repro.adversary.strategies import LinkAttackAdversary, LinkFault
from repro.core.disperse import DisperseService
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import emit, format_table, table_data

SCHED = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=8)
SENDER, RECEIVER = 0, 1


class OneShotSender(NodeProgram):
    def __init__(self):
        super().__init__()
        self.disperse = DisperseService()
        self.delivered = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        self.delivered.extend(self.disperse.receipts(""))
        if ctx.info.round == 2 and self.node_id == SENDER:
            self.disperse.send(ctx, RECEIVER, ("probe",), tag="")


def split_attack_faults(n: int, k: int) -> list[LinkFault]:
    """Kill the direct link, sender->top-k relays, receiver->bottom-k."""
    others = [i for i in range(n) if i not in (SENDER, RECEIVER)]
    faults = [LinkFault(link=frozenset({SENDER, RECEIVER}), first_round=0, last_round=99)]
    for node in others[len(others) - k:]:
        faults.append(LinkFault(link=frozenset({SENDER, node}), first_round=0, last_round=99))
    for node in others[:k]:
        faults.append(LinkFault(link=frozenset({RECEIVER, node}), first_round=0, last_round=99))
    return faults


def delivered(n: int, k: int, seed: int = 0) -> bool:
    programs = [OneShotSender() for _ in range(n)]
    adversary = LinkAttackAdversary(split_attack_faults(n, k)) if k >= 0 else PassiveAdversary()
    runner = ULRunner(programs, adversary, SCHED, s=max(1, (n - 1) // 2), seed=seed)
    runner.run(units=1)
    return any(body == ("probe",) for _, body in programs[RECEIVER].delivered)


# BENCH_SMOKE=1 restricts the sweep to the smallest n (used by CI to keep
# the benchmark job a fast sanity check rather than a full regeneration)
SWEEP_N = (5,) if os.environ.get("BENCH_SMOKE") else (5, 7, 9, 13)


@pytest.fixture(scope="module")
def table():
    rows = []
    for n in SWEEP_N:
        relays = n - 2
        for k in range(0, relays + 1):
            ok = delivered(n, k)
            # a common reliable neighbour survives iff the killed top-k and
            # bottom-k sets do not cover all relays
            expected = 2 * k < relays
            rows.append((n, k, "yes" if ok else "no", "yes" if expected else "no"))
            assert ok == expected, f"n={n} k={k}"
    return rows


def test_e1_disperse_delivery_crossover(table, benchmark):
    headers = ["n", "links killed per endpoint k", "delivered", "common-neighbour predicts"]
    emit("e1_disperse", format_table(
        "E1  DISPERSE delivery under split link attacks (Lemma 15)",
        headers,
        table,
    ), data=table_data(headers, table))
    benchmark(lambda: delivered(7, 2))
