"""Merkle hash trees with authentication paths.

Used by the many-time hash-based signature scheme
(:mod:`repro.crypto.hash_sig`) to commit to a batch of Lamport one-time
verification keys, and available as a general-purpose accumulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import tagged_hash

__all__ = ["MerkleTree", "MerklePath"]

_NODE_TAG = "repro/merkle/node"
_LEAF_TAG = "repro/merkle/leaf"


@dataclass(frozen=True)
class MerklePath:
    """Authentication path for one leaf: the sibling digest at every level,
    bottom-up, plus the leaf index (which encodes left/right turns)."""

    leaf_index: int
    siblings: tuple[bytes, ...]


class MerkleTree:
    """A complete binary Merkle tree over a list of leaf payloads.

    The leaf count is padded to the next power of two with distinguishable
    empty leaves.  Leaves are hashed with a leaf-specific tag so a leaf
    digest can never be confused with an interior node (no second-preimage
    splicing).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self.leaf_count = len(leaves)
        size = 1
        while size < len(leaves):
            size *= 2
        hashed = [tagged_hash(_LEAF_TAG, leaf) for leaf in leaves]
        hashed += [tagged_hash(_LEAF_TAG, b"", index.to_bytes(8, "big"))
                   for index in range(len(leaves), size)]
        # levels[0] is the leaf level, levels[-1] is [root]
        levels = [hashed]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above = [
                tagged_hash(_NODE_TAG, below[2 * i], below[2 * i + 1])
                for i in range(len(below) // 2)
            ]
            levels.append(above)
        self._levels = levels

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def height(self) -> int:
        return len(self._levels) - 1

    def path(self, leaf_index: int) -> MerklePath:
        """Authentication path for the leaf at ``leaf_index``."""
        if not (0 <= leaf_index < self.leaf_count):
            raise IndexError(f"leaf index {leaf_index} out of range")
        siblings = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            siblings.append(level[sibling_index])
            index //= 2
        return MerklePath(leaf_index=leaf_index, siblings=tuple(siblings))

    @staticmethod
    def verify_path(root: bytes, leaf: bytes, path: MerklePath) -> bool:
        """Check that ``leaf`` sits at ``path.leaf_index`` under ``root``."""
        if path.leaf_index < 0:
            return False
        digest = tagged_hash(_LEAF_TAG, leaf)
        index = path.leaf_index
        for sibling in path.siblings:
            if index % 2 == 0:
                digest = tagged_hash(_NODE_TAG, digest, sibling)
            else:
                digest = tagged_hash(_NODE_TAG, sibling, digest)
            index //= 2
        return digest == root
