"""Wire-level message representation.

An :class:`Envelope` is one message on one link in one round.  The
``sender`` field is the *claimed* source: in the UL model the adversary
can inject envelopes with any claimed sender, so receiving programs must
never treat it as authenticated — that is exactly what the paper's
CERTIFY/VER-CERT layer is for.

``channel`` is a routing tag (e.g. ``"disperse"``, ``"pa/3"``) that lets a
node multiplex many concurrent sub-protocols over the same link, mirroring
the paper's parallel protocol copies (§4.2.3 step 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["Envelope"]


@dataclass(frozen=True)
class Envelope:
    """One message on one link."""

    sender: int
    receiver: int
    channel: str
    payload: Any
    round_sent: int

    def __hash__(self) -> int:
        # The runner's linear-time link accounting (Definition 4) puts
        # every envelope in a Counter twice per round; payloads are deep
        # tuples, so the hash is memoized on first use.  Raises TypeError
        # for unhashable payloads, like the generated hash would — the
        # runner falls back to multiset comparison then.  (Defining
        # __hash__ explicitly keeps @dataclass from generating one; the
        # memo slot lives in __dict__, which frozen instances may touch.)
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(
                (self.sender, self.receiver, self.channel, self.payload, self.round_sent)
            )
            self.__dict__["_hash"] = cached
        return cached

    def redirect(self, receiver: int) -> "Envelope":
        """Copy of this envelope addressed to a different node (used by
        adversaries that duplicate or misroute traffic)."""
        return replace(self, receiver=receiver)

    def with_payload(self, payload: Any) -> "Envelope":
        """Copy with a modified payload (adversarial tampering)."""
        return replace(self, payload=payload)

    def describe(self) -> str:
        """Short human-readable form for logs."""
        return f"[r{self.round_sent} {self.sender}->{self.receiver} {self.channel}]"
