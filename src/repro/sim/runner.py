"""The synchronous execution engine for the AL and UL models (§2.1–2.2).

One :class:`Runner` drives ``n`` node programs, an adversary and a
schedule through a sequence of communication rounds and produces an
:class:`~repro.sim.transcript.Execution`.

Round anatomy (messages sent at round ``w`` arrive at round ``w+1``):

1. every non-broken node's program runs on the inbox delivered this round
   and queues its outgoing messages (broken nodes' programs do not run —
   the adversary speaks for them);
2. outside the set-up phase the adversary observes all queued traffic
   (*rushing*), may break into / leave nodes, and may queue messages in
   the name of broken nodes;
3. delivery is resolved: faithfully in the AL model; by the adversary's
   delivery plan in the UL model (modify / delete / duplicate / inject);
4. link reliability is derived by diffing sent vs. delivered traffic
   (Definition 4), the s-operational set is advanced (Definition 5), and
   system-log lines ("compromised"/"recovered") are appended when a
   node's status changes.

The set-up phase is adversary-free (the paper's assumption); all ROMs are
frozen when it ends.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

from repro.sim.adversary_api import Adversary, AdversaryApi, FaithfulPlan
from repro.adversary.connectivity import ConnectivityTracker
from repro.perf.config import perf_config
from repro.sim.clock import Phase, RoundInfo, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import Node, NodeContext, NodeProgram
from repro.sim.randomness import RandomnessSource
from repro.sim.transcript import (
    COMPROMISED,
    RECOVERED,
    CompactRoundRecord,
    Execution,
    RoundRecord,
)

__all__ = ["Runner", "ALRunner", "ULRunner", "RunObserver"]

InputProvider = Callable[[int, RoundInfo], list[Any]]


class RunObserver:
    """Hook interface for watching an execution round by round.

    Observers see each :class:`RoundRecord` the moment it is appended —
    *during* the run, not after it — which is what lets a monitor
    fail-fast on the exact round an invariant breaks instead of burning
    the remaining units (see
    :class:`repro.analysis.monitor.RuntimeInvariantMonitor`).  Observers
    must treat the execution as read-only; they are analysis, not
    protocol.
    """

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        """Called after every round's record is appended."""

    def on_run_end(self, execution: Execution) -> None:
        """Called once after the last round (adversary output included)."""


class Runner:
    """Shared machinery; use :class:`ALRunner` or :class:`ULRunner`."""

    model = "abstract"

    def __init__(
        self,
        programs: list[NodeProgram],
        adversary: Adversary,
        schedule: Schedule,
        seed: int | str = 0,
        input_provider: InputProvider | None = None,
        *,
        observers: list[RunObserver] | None = None,
        stream_digest: bool = False,
    ) -> None:
        self.n = len(programs)
        if self.n < 2:
            raise ValueError("need at least two nodes")
        self.observers: list[RunObserver] = list(observers or [])
        self.schedule = schedule
        self.seed = seed
        self.randomness = RandomnessSource(seed)
        self.adversary = adversary
        self.nodes = [Node(i, program, self.n) for i, program in enumerate(programs)]
        self._input_provider = input_provider
        self._scheduled_inputs: dict[tuple[int, int], list[Any]] = {}
        self.execution = Execution(
            n=self.n, schedule=schedule, seed=seed, model=self.model,
            node_outputs=[[] for _ in range(self.n)],
        )
        self._prev_status: list[bool] = [True] * self.n  # True = "good" last round
        # incremental canonical digest over the per-round records; with
        # compact records on it is the only way the round traffic remains
        # comparable to a full-mode run (see analysis.digest.rounds_digest).
        # imported lazily: repro.analysis's package init imports this module
        if stream_digest:
            from repro.analysis.digest import RoundsDigest

            self._rounds_digest = RoundsDigest()
        else:
            self._rounds_digest = None

    # -- driver-facing API -----------------------------------------------------

    def add_observer(self, observer: RunObserver) -> None:
        """Attach an observer before (or even during) :meth:`run`."""
        self.observers.append(observer)

    def add_external_input(self, node_id: int, round_number: int, value: Any) -> None:
        """Schedule the paper's ``x_{i,w}``: an input handed to node
        ``node_id`` at the start of round ``round_number``."""
        self._scheduled_inputs.setdefault((node_id, round_number), []).append(value)

    def run(self, units: int) -> Execution:
        """Simulate time units ``0 .. units-1`` and return the execution."""
        total = self.schedule.total_rounds(units)
        self.adversary.begin(self.n, self.schedule, self.randomness.adversary())
        for round_number in range(total):
            self._run_round(self.schedule.info(round_number))
        self.execution.adversary_output.extend(self.adversary.finish())
        if self._rounds_digest is not None:
            self.execution.rounds_digest = self._rounds_digest.hexdigest()
        for observer in self.observers:
            observer.on_run_end(self.execution)
        return self.execution

    # -- internals ---------------------------------------------------------------

    def _inputs_for(self, node_id: int, info: RoundInfo) -> list[Any]:
        inputs = list(self._scheduled_inputs.get((node_id, info.round), []))
        if self._input_provider is not None:
            inputs.extend(self._input_provider(node_id, info))
        return inputs

    def _run_round(self, info: RoundInfo) -> None:
        cfg = perf_config()
        enabled = cfg.enabled
        lazy_rng = enabled and cfg.lazy_rng
        demux = enabled and cfg.inbox_demux
        fastpath = enabled and cfg.faithful_fastpath
        zero_copy = enabled and cfg.zero_copy_records
        compact = enabled and cfg.compact_records
        randomness = self.randomness
        round_number = info.round

        # 1. honest computation
        traffic: list[Envelope] = []
        for node in self.nodes:
            inbox = node.pending_inbox
            node.pending_inbox = []
            if node.broken:
                continue  # broken nodes have empty output; adversary acts for them
            node_id = node.node_id
            if lazy_rng:
                rng = lambda _i=node_id, _r=round_number: randomness.node_round(_i, _r)
            else:
                rng = randomness.node_round(node_id, round_number)
            ctx = NodeContext(
                node_id=node_id,
                n=self.n,
                info=info,
                rng=rng,
                rom=node.rom,
                external_inputs=self._inputs_for(node_id, info),
                inbox=inbox,
                demux=demux,
            )
            node.program.step(ctx, inbox)
            traffic.extend(ctx.outbox)
            if ctx.outputs:
                stamped = node.record_outputs(round_number, ctx.outputs)
                self.execution.node_outputs[node_id].extend(stamped)

        # 2-3. adversary interaction + delivery
        if info.phase is Phase.SETUP:
            sent = tuple(traffic)
            plan: dict[int, list[Envelope]] = FaithfulPlan.build(sent, self.n)
            broken = frozenset()
            if info.is_phase_end:
                for node in self.nodes:
                    node.rom.freeze()
        else:
            if lazy_rng:
                api_rng = lambda _r=round_number: randomness.stream("api", _r)
            else:
                api_rng = randomness.stream("api", round_number)
            api = AdversaryApi(self.nodes, info, api_rng)
            observed = tuple(traffic)  # rushing: the pre-injection view
            self.adversary.on_round(api, info, observed)
            self.execution.adversary_output.extend(api.output_entries)
            broken = frozenset(i for i, node in enumerate(self.nodes) if node.broken)
            sent = observed + tuple(api.injected) if api.injected else observed
            plan = self._resolve_delivery(api, info, sent)

        # a FaithfulPlan built from exactly this round's sent traffic is
        # faithful by construction: receiver keys are complete, every
        # envelope sits in its receiver's inbox, nothing was added or
        # dropped — so both the sanitation walk and the Definition 4
        # regroup-and-compare are already decided
        provenly_faithful = (
            fastpath
            and type(plan) is FaithfulPlan
            and plan.source is sent
        )
        if not provenly_faithful:
            self._sanitize_plan(plan)
        for node in self.nodes:
            node.pending_inbox = plan.get(node.node_id, [])

        # 4. accounting
        unreliable = self._unreliable_links(
            sent, plan, broken, provenly_faithful=provenly_faithful
        )
        operational = self._operational_set(info, broken, unreliable)
        self._log_status_changes(info, broken, operational)

        digesting = self._rounds_digest is not None
        delivered: Any = None
        if digesting or not compact:
            if zero_copy or compact:
                # share the plan's own lists (and, for a complete faithful
                # plan, the dict itself) instead of re-materializing tuples;
                # holders must treat records as read-only — which was
                # always the contract for transcripts
                if type(plan) is FaithfulPlan:
                    delivered = plan
                else:
                    delivered = {i: plan.get(i, ()) for i in range(self.n)}
            else:
                delivered = {i: tuple(plan.get(i, ())) for i in range(self.n)}
        if digesting:
            self._rounds_digest.update(
                info, sent, delivered, broken, operational, unreliable
            )
        if compact:
            sent_by_channel: dict[str, int] = {}
            for envelope in sent:
                channel = envelope.channel
                sent_by_channel[channel] = sent_by_channel.get(channel, 0) + 1
            record: Any = CompactRoundRecord(
                info=info,
                sent_count=len(sent),
                delivered_count=sum(map(len, plan.values())),
                broken=broken,
                operational=operational,
                unreliable_links=unreliable,
                sent_by_channel=sent_by_channel,
            )
        else:
            record = RoundRecord(
                info=info,
                sent=sent,
                delivered=delivered,
                broken=broken,
                operational=operational,
                unreliable_links=unreliable,
            )
        self.execution.records.append(record)
        for observer in self.observers:
            observer.on_round(self.execution, record)

    def _sanitize_plan(self, plan: dict[int, list[Envelope]]) -> None:
        for receiver, envelopes in plan.items():
            for envelope in envelopes:
                if envelope.receiver != receiver:
                    raise ValueError(
                        f"delivery plan mismatch: {envelope.describe()} in inbox of {receiver}"
                    )
                if envelope.sender == receiver:
                    raise ValueError("self-links do not exist in the model")

    def _unreliable_links(
        self,
        traffic: tuple[Envelope, ...],
        plan: dict[int, list[Envelope]],
        broken: frozenset[int],
        *,
        provenly_faithful: bool = False,
    ) -> frozenset[frozenset[int]]:
        """Definition 4, per round: a link {i, j} is unreliable if an
        endpoint is broken or traffic on either direction was not delivered
        exactly (as a multiset).

        The comparison is linear in the round's traffic instead of
        quadratic per link, and in the common case touches no payload at
        all: the adversary passes delivered envelopes through *by
        reference*, so each direction's delivered id-multiset usually
        equals its sent id-multiset, which already proves multiset
        equality.  Only directions whose id-counts differ are re-compared
        by content (an injected equal *copy* is still a faithful
        delivery) — Counter-based, with the legacy remove-one-by-one
        comparison for unhashable payloads, so adversaries are free to
        inject arbitrary garbage.
        """
        links_broken: set[frozenset[int]] = set()
        for i in broken:
            for j in range(self.n):
                if j != i:
                    links_broken.add(frozenset((i, j)))

        # Fast path: when the plan is, receiver by receiver, exactly the
        # faithful regrouping of the sent traffic (list equality hits the
        # identity shortcut element-wise, since faithful plans pass the
        # very same envelope objects through), every direction's sent and
        # delivered multisets match and the only unreliable links are the
        # broken-endpoint ones.  Any mismatch falls through to the full
        # per-direction accounting below.
        if provenly_faithful or self._plan_is_faithful(traffic, plan):
            return frozenset(links_broken)

        # per direction: envelope-object id counts (the traffic tuple and
        # the plan's lists keep every counted envelope alive for the whole
        # comparison, so ids cannot be recycled)
        sent_ids: dict[tuple[int, int], dict[int, int]] = {}
        delivered_ids: dict[tuple[int, int], dict[int, int]] = {}

        for envelope in traffic:
            if envelope.sender in broken or envelope.receiver in broken:
                continue  # the link is already unreliable; skip bookkeeping
            direction = (envelope.sender, envelope.receiver)
            counts = sent_ids.get(direction)
            if counts is None:
                counts = sent_ids[direction] = {}
            ident = id(envelope)
            counts[ident] = counts.get(ident, 0) + 1
        for receiver, envelopes in plan.items():
            for envelope in envelopes:
                if envelope.sender in broken or receiver in broken:
                    continue
                direction = (envelope.sender, receiver)
                counts = delivered_ids.get(direction)
                if counts is None:
                    counts = delivered_ids[direction] = {}
                ident = id(envelope)
                counts[ident] = counts.get(ident, 0) + 1

        unreliable = set(links_broken)
        mismatched: list[tuple[int, int]] = []
        for direction in set(sent_ids) | set(delivered_ids):
            if frozenset(direction) in unreliable:
                continue
            if sent_ids.get(direction) != delivered_ids.get(direction):
                mismatched.append(direction)
        if not mismatched:
            return frozenset(unreliable)

        # only directions whose id-counts differ need the content-level
        # multiset comparison; gather their envelope objects in one
        # targeted second pass instead of materializing per-direction
        # lists for the whole round up front
        wanted = set(mismatched)
        sent_objs: dict[tuple[int, int], list[Envelope]] = {d: [] for d in wanted}
        delivered_objs: dict[tuple[int, int], list[Envelope]] = {d: [] for d in wanted}
        for envelope in traffic:
            direction = (envelope.sender, envelope.receiver)
            if direction in wanted:
                sent_objs[direction].append(envelope)
        for receiver, envelopes in plan.items():
            for envelope in envelopes:
                direction = (envelope.sender, receiver)
                if direction in wanted:
                    delivered_objs[direction].append(envelope)

        for direction in mismatched:
            link = frozenset(direction)
            sent_side = sent_objs[direction]
            delivered_side = delivered_objs[direction]
            try:
                if Counter(sent_side) != Counter(delivered_side):
                    unreliable.add(link)
            except TypeError:
                if not _same_multiset(sent_side, delivered_side):
                    unreliable.add(link)
        return frozenset(unreliable)

    @staticmethod
    def _plan_is_faithful(
        traffic: tuple[Envelope, ...], plan: dict[int, list[Envelope]]
    ) -> bool:
        """Whether ``plan`` delivers exactly the sent traffic, in order.

        Content equality (not identity) per receiver list: an adversary
        that replaces an envelope with an equal copy still delivers
        faithfully under Definition 4.  Receivers in the plan that never
        appear in the traffic must have empty inboxes, and every receiver
        with traffic must appear — otherwise this is not a faithful round.
        """
        regrouped: dict[int, list[Envelope]] = {}
        for envelope in traffic:
            inbox = regrouped.get(envelope.receiver)
            if inbox is None:
                inbox = regrouped[envelope.receiver] = []
            inbox.append(envelope)
        matched = 0
        for receiver, envelopes in plan.items():
            expected = regrouped.get(receiver)
            if expected is None:
                if envelopes:
                    return False
                continue
            if envelopes != expected:
                return False
            matched += 1
        return matched == len(regrouped)

    # -- model-specific hooks ------------------------------------------------------

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        raise NotImplementedError

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        raise NotImplementedError

    def _log_status_changes(
        self, info: RoundInfo, broken: frozenset[int], operational: frozenset[int]
    ) -> None:
        """Append "compromised"/"recovered" lines on status transitions.

        In the AL model the status is simply non-broken (§2.1); in the UL
        model it is s-operational (§2.2) — a node that becomes
        s-disconnected is logged as compromised even though it is not
        broken.
        """
        for node_id in range(self.n):
            good = node_id in operational
            if good != self._prev_status[node_id]:
                event = RECOVERED if good else COMPROMISED
                self.execution.system_log.append((info.round, node_id, event))
                self._prev_status[node_id] = good


def _same_multiset(a: list[Envelope], b: list[Envelope]) -> bool:
    """Legacy quadratic multiset comparison — kept as the fallback for
    directions carrying unhashable payloads (and as the reference the
    Counter path is tested against)."""
    if len(a) != len(b):
        return False
    remaining = list(b)
    for item in a:
        try:
            remaining.remove(item)
        except ValueError:
            return False
    return True


class ALRunner(Runner):
    """Authenticated-links model: delivery is always faithful; the
    adversary's only powers are reading traffic, breaking into nodes and
    speaking for broken ones."""

    model = "AL"

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        # delivery is faithful *by model definition*, so carry the proof
        return FaithfulPlan.build(traffic, self.n)

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        return frozenset(range(self.n)) - broken


class ULRunner(Runner):
    """Unauthenticated-links model: the adversary owns delivery; node
    status is s-operationality tracked per Definitions 4–6.

    Args:
        s: the disconnection threshold used for operational-node
            accounting (the paper's ``s``; experiments use ``s = t``).
    """

    model = "UL"

    def __init__(
        self,
        programs: list[NodeProgram],
        adversary: Adversary,
        schedule: Schedule,
        s: int,
        seed: int | str = 0,
        input_provider: InputProvider | None = None,
        *,
        observers: list[RunObserver] | None = None,
        stream_digest: bool = False,
    ) -> None:
        super().__init__(programs, adversary, schedule, seed, input_provider,
                         observers=observers, stream_digest=stream_digest)
        self.s = s
        self.tracker = ConnectivityTracker(self.n, s)

    def _resolve_delivery(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        return self.adversary.deliver(api, info, traffic)

    def _operational_set(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        return self.tracker.observe_round(info, broken, unreliable)
