"""Unit tests for Definition-10 views and impersonation detection."""

from repro.core.views import ViewItem, external_view, impersonations, internal_sent
from repro.sim.clock import Schedule
from repro.sim.transcript import Execution

SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)


def make_execution(outputs, broken_by_unit=None):
    """outputs: {node: [(round, entry), ...]}"""
    execution = Execution(n=3, schedule=SCHED, seed=0, model="UL",
                          node_outputs=[[] for _ in range(3)])
    for node, entries in outputs.items():
        execution.node_outputs[node] = entries
    # fabricate minimal round records for broken accounting
    from repro.sim.clock import RoundInfo
    from repro.sim.transcript import RoundRecord

    broken_by_unit = broken_by_unit or {}
    for round_number in range(SCHED.total_rounds(3)):
        info = SCHED.info(round_number)
        broken = frozenset(broken_by_unit.get(info.time_unit, ()))
        execution.records.append(RoundRecord(
            info=info, sent=(), delivered={}, broken=broken,
            operational=frozenset(range(3)) - broken, unreliable_links=frozenset(),
        ))
    return execution


R1 = SCHED.first_normal_round(1)


def test_internal_sent_collects_app_sent():
    execution = make_execution({0: [(R1, ("app-sent", 1, "chat", "x"))]})
    assert internal_sent(execution, 0, 1) == {ViewItem(1, "chat", "x")}
    assert internal_sent(execution, 0, 0) == set()


def test_external_view_collects_peer_receptions():
    execution = make_execution({1: [(R1, ("app-recv", 0, "chat", "x"))]})
    assert external_view(execution, 0, 1) == {ViewItem(1, "chat", "x")}


def test_matching_send_means_no_impersonation():
    execution = make_execution({
        0: [(R1, ("app-sent", 1, "chat", "x"))],
        1: [(R1 + 2, ("app-recv", 0, "chat", "x"))],
    })
    assert impersonations(execution, 0, 1) == set()


def test_unmatched_reception_is_impersonation():
    execution = make_execution({
        1: [(R1, ("app-recv", 0, "chat", "forged"))],
    })
    assert impersonations(execution, 0, 1) == {ViewItem(1, "chat", "forged")}


def test_previous_unit_send_matches_boundary_delivery():
    """A message sent at the end of unit 0 and received at the start of
    unit 1 is not an impersonation."""
    r_end_unit0 = SCHED.first_normal_round(0) + 2
    execution = make_execution({
        0: [(r_end_unit0, ("app-sent", 1, "chat", "late"))],
        1: [(SCHED.refresh_start(1), ("app-recv", 0, "chat", "late"))],
    })
    assert impersonations(execution, 0, 1) == set()


def test_broken_node_is_not_impersonated():
    """Definition 10 applies to non-broken nodes only."""
    execution = make_execution(
        {1: [(R1, ("app-recv", 0, "chat", "forged"))]},
        broken_by_unit={1: {0}},
    )
    assert impersonations(execution, 0, 1) == set()


def test_broken_observers_do_not_count():
    """Receptions recorded by broken nodes are excluded from the external
    view (their outputs are adversary-controlled)."""
    execution = make_execution(
        {1: [(R1, ("app-recv", 0, "chat", "forged"))]},
        broken_by_unit={1: {1}},
    )
    assert external_view(execution, 0, 1) == set()


def test_unhashable_payloads_normalized():
    execution = make_execution({
        0: [(R1, ("app-sent", 1, "chat", ["list", "payload"]))],
        1: [(R1 + 2, ("app-recv", 0, "chat", ["list", "payload"]))],
    })
    assert impersonations(execution, 0, 1) == set()
