"""Tests for the distributed UGen (joint-Feldman DKG + certificates)."""

import pytest

from repro.core.uls import UlsProgram, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.shamir import reconstruct_secret
from repro.pds.dkg import run_distributed_ugen
from repro.pds.threshold_schnorr import verify_pds_signature
from repro.core.certify import certificate_assertion
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2


@pytest.fixture(scope="module")
def ugen():
    return run_distributed_ugen(GROUP, SCHEME, N, T, seed=9)


def test_all_nodes_share_the_public_data(ugen):
    public, states, keys = ugen
    for state in states:
        assert state.public.public_key == public.public_key
        assert state.key_commitment == states[0].key_commitment
        assert state.share_is_valid()


def test_shares_reconstruct_the_public_key(ugen):
    public, states, keys = ugen
    secret = reconstruct_secret(GROUP.scalar_field, [s.share for s in states[:T + 1]])
    assert GROUP.base_power(secret) == public.public_key


def test_no_single_dealer_knows_the_secret(ugen):
    """Structural check: the dealing sub-shares were erased after the
    combine step (each program's dealing table is empty)."""
    # re-run to access program internals
    from repro.pds.dkg import DkgUGenProgram
    from repro.sim.adversary_api import PassiveAdversary
    from repro.sim.clock import Schedule
    from repro.sim.runner import ALRunner

    programs = [DkgUGenProgram(GROUP, N, T, SCHEME) for _ in range(N)]
    runner = ALRunner(programs, PassiveAdversary(),
                      Schedule(setup_rounds=3, refresh_rounds=1, normal_rounds=8),
                      seed=9)
    runner.run(units=1)
    for program in programs:
        assert program._dealings == {}


def test_unit0_certificates_verify(ugen):
    public, states, keys = ugen
    for node, local_keys in enumerate(keys):
        assert local_keys.usable
        assertion = certificate_assertion(
            node, 0, SCHEME.key_repr(local_keys.keypair.verify_key)
        )
        assert verify_pds_signature(public, assertion, 0, local_keys.certificate)


def test_dkg_output_drives_a_full_uls_run(ugen):
    """Drop-in interchangeability with build_uls_states: a complete ULS
    run (refresh + signing) on DKG-produced material."""
    public, states, keys = ugen
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    schedule = uls_schedule()
    runner = ULRunner(programs, PassiveAdversary(), schedule, s=T, seed=4)
    r1 = schedule.first_normal_round(1)
    for i in range(N):
        runner.add_external_input(i, r1, ("sign", "dkg-backed"))
    execution = runner.run(units=2)
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok")]
    signature = programs[0].signatures[("dkg-backed", 1)]
    assert verify_user_signature(public, "dkg-backed", 1, signature)
