"""Differential testing against the ideal process (Definition 12 made
executable).

The emulation definition compares the real scheme's global output with
the ideal process's.  We drive the ideal process with the *same* request
schedule as a real ULS run and compare the finite projections that the
definition's distinguishers would look at first: the set of signed
messages, the per-signer asked/signed output lines, and the verifier's
behaviour on signed and unsigned messages.
"""

import pytest

from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.pds.ideal import IdealSignatureProcess
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()

# (message, unit, requesters) — mixtures above and below the threshold
REQUEST_SCHEDULE = [
    ("alpha", 0, [0, 1, 2, 3, 4]),
    ("beta", 0, [0, 1, 2]),          # exactly t+1
    ("gamma", 0, [0, 1]),            # only t: must NOT sign
    ("delta", 1, [2, 3, 4]),
    ("echo", 1, [4]),                # single request: must NOT sign
]


@pytest.fixture(scope="module")
def real_and_ideal():
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=17)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=17)
    for message, unit, requesters in REQUEST_SCHEDULE:
        round_number = SCHED.first_normal_round(unit)
        for node in requesters:
            runner.add_external_input(node, round_number, ("sign", message))
    execution = runner.run(units=2)

    ideal = IdealSignatureProcess(n=N, t=T)
    for message, unit, requesters in REQUEST_SCHEDULE:
        for node in requesters:
            ideal.sign_request(node, message, unit)
    return public, programs, execution, ideal


def test_signed_sets_coincide(real_and_ideal):
    public, programs, execution, ideal = real_and_ideal
    for message, unit, requesters in REQUEST_SCHEDULE:
        ideal_signed = ideal.is_signed(message, unit)
        real_signed = any(
            ("signed", message, unit) in execution.outputs_of(i) for i in range(N)
        )
        assert real_signed == ideal_signed, (message, unit)


def test_per_signer_outputs_coincide(real_and_ideal):
    public, programs, execution, ideal = real_and_ideal
    for node in range(N):
        ideal_lines = [
            entry for entry in ideal.signer_outputs[node]
            if entry[0] in ("asked-to-sign", "signed")
        ]
        real_lines = [
            entry for entry in execution.outputs_of(node)
            if isinstance(entry, tuple) and entry[0] in ("asked-to-sign", "signed")
        ]
        assert sorted(map(repr, real_lines)) == sorted(map(repr, ideal_lines)), node


def test_verifier_behaviour_coincides(real_and_ideal):
    public, programs, execution, ideal = real_and_ideal
    for message, unit, requesters in REQUEST_SCHEDULE:
        signature = next(
            (p.signatures.get((message, unit)) for p in programs
             if p.signatures.get((message, unit)) is not None),
            None,
        )
        real_verifies = signature is not None and verify_user_signature(
            public, message, unit, signature
        )
        assert real_verifies == ideal.verify(message, unit), (message, unit)
    # cross-checks that can never verify
    assert not ideal.verify("never-requested", 0)
    assert not verify_user_signature(public, "never-requested", 0, None)


def test_wrong_unit_not_signed(real_and_ideal):
    """A message signed for unit 0 is not a unit-1 signature (Remark 5's
    time granularity)."""
    public, programs, execution, ideal = real_and_ideal
    signature = programs[0].signatures[("alpha", 0)]
    assert verify_user_signature(public, "alpha", 0, signature)
    assert not verify_user_signature(public, "alpha", 1, signature)
    assert not ideal.is_signed("alpha", 1)
