"""Transport abstraction: how protocol messages travel.

The paper's central transformation (§4) takes a PDS scheme whose
sub-protocols run over *authenticated reliable links* and re-runs the same
logic with every message wrapped in AUTH-SEND.  We capture that by coding
all distributed-signature sub-protocols (dealing, acks, partial
signatures, share renewal, ...) against this small :class:`Transport`
interface:

- in the AL model, :class:`DirectTransport` maps ``send`` straight onto
  the node's links (delivery in 1 round);
- in the UL model, :class:`repro.core.auth_send.AuthSendTransport` maps
  ``send`` onto CERTIFY + DISPERSE (acceptance 2 rounds after sending).

``delay`` tells session protocols how many rounds separate a send from
its acceptance, so the same session code steps correctly over either
transport.

Per-round usage contract: the owner program calls ``begin_round`` with
the round's inbox once per round *before* any sub-protocol logic runs;
sub-protocols then read ``accepted`` and call ``send``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.sim.messages import Envelope
from repro.sim.node import NodeContext

__all__ = ["Transport", "DirectTransport", "Accepted"]


class Accepted:
    """A message accepted by the transport this round.

    ``sender`` is authenticated to whatever level the transport provides:
    claimed-only for :class:`DirectTransport` in the UL model, certified
    for AUTH-SEND, genuinely authentic for :class:`DirectTransport` in the
    AL model (where links are authenticated by assumption).
    """

    __slots__ = ("sender", "body")

    def __init__(self, sender: int, body: Any) -> None:
        self.sender = sender
        self.body = body

    def __repr__(self) -> str:
        return f"Accepted(sender={self.sender}, body={self.body!r})"


class Transport(ABC):
    """See module docstring."""

    #: rounds from ``send`` to the receiver's ``accepted``
    delay: int = 1

    @abstractmethod
    def begin_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Ingest this round's inbox; must be called exactly once per round
        before any sends."""

    @abstractmethod
    def send(self, ctx: NodeContext, receiver: int, body: Any) -> None:
        """Queue ``body`` for the receiver."""

    @abstractmethod
    def accepted(self) -> list[Accepted]:
        """Messages accepted this round (reset every ``begin_round``)."""

    def accepted_view(self) -> list[Accepted]:
        """Read-only view of :meth:`accepted`.

        Sub-protocols iterate the acceptances several times per round;
        transports that keep an internal list expose it here directly so
        each consumer doesn't force a defensive copy.  Callers must not
        mutate the result.  The default just defers to :meth:`accepted`.
        """
        return self.accepted()

    def send_to_all(self, ctx: NodeContext, body: Any) -> None:
        """Point-to-point send to every other node (n-1 messages).

        This is *not* a consistent broadcast: a corrupted sender can send
        different bodies to different receivers.  Protocols that need
        consistency must layer an agreement step on top (see
        :mod:`repro.agreement`).
        """
        for receiver in range(ctx.n):
            if receiver != ctx.node_id:
                self.send(ctx, receiver, body)

    def send_broadcast(self, ctx: NodeContext, body: Any) -> None:
        """Round-wide send: ``body`` to every other node.

        Semantically identical to :meth:`send_to_all` (and that is the
        default implementation); transports with a cheaper round-wide
        primitive override it.  The same consistency caveat applies — this
        is a *cost* optimization, not a consistent broadcast.
        """
        self.send_to_all(ctx, body)


class DirectTransport(Transport):
    """Messages travel on the raw links, one round of delay.

    In the AL model this *is* an authenticated reliable channel.  In the
    UL model it provides nothing (the adversary owns the links) — the
    E5 baseline experiments use exactly this gap.
    """

    delay = 1

    def __init__(self, channel: str = "direct") -> None:
        self.channel = channel
        self._accepted: list[Accepted] = []

    def begin_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self._accepted = [
            Accepted(sender=env.sender, body=env.payload)
            for env in ctx.channel_view(inbox, self.channel)
        ]

    def send(self, ctx: NodeContext, receiver: int, body: Any) -> None:
        ctx.send(receiver, self.channel, body)

    def accepted(self) -> list[Accepted]:
        return list(self._accepted)

    def accepted_view(self) -> list[Accepted]:
        return self._accepted
