"""Feldman verifiable secret sharing.

Shamir sharing plus a public commitment vector ``(g^{a_0}, ..., g^{a_t})``
to the dealing polynomial's coefficients.  Any party can check its share
against the commitment, and — crucially for the threshold Schnorr PDS —
any party can compute the *public image* ``g^{f(x)}`` of any other party's
share, which is what makes partial signatures publicly verifiable and the
scheme robust against corrupted signers.

Commitment vectors compose homomorphically: the commitment of a sum of
polynomials is the element-wise product.  Proactive refresh exploits this
to update the public share images after adding a zero-sharing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.field import Polynomial
from repro.crypto.group import SchnorrGroup
from repro.crypto.shamir import Share, ShamirDealer

__all__ = ["FeldmanCommitment", "FeldmanDealing", "FeldmanDealer"]


@dataclass(frozen=True)
class FeldmanCommitment:
    """Public commitment ``(g^{a_0}, ..., g^{a_t})`` to a polynomial."""

    elements: tuple[int, ...]

    @property
    def public_constant(self) -> int:
        """``g^{a_0}`` — the public image of the shared secret."""
        return self.elements[0]

    @property
    def degree_bound(self) -> int:
        return len(self.elements) - 1

    def share_image(self, group: SchnorrGroup, x: int) -> int:
        """Compute ``g^{f(x)} = Π elements[k]^{x^k}`` from public data."""
        acc = group.identity
        power_of_x = 1
        for element in self.elements:
            acc = group.multiply(acc, group.power(element, power_of_x))
            power_of_x = (power_of_x * x) % group.q
        return acc

    def verify_share(self, group: SchnorrGroup, share: Share) -> bool:
        """Check ``g^{share.value} == g^{f(share.x)}``."""
        return group.base_power(share.value) == self.share_image(group, share.x)

    def combine(self, group: SchnorrGroup, other: "FeldmanCommitment") -> "FeldmanCommitment":
        """Commitment to the sum of the two committed polynomials.

        Shorter vectors are padded with the identity (commitment to a zero
        coefficient), so polynomials of different degree bounds compose.
        """
        length = max(len(self.elements), len(other.elements))
        mine = self.elements + (group.identity,) * (length - len(self.elements))
        theirs = other.elements + (group.identity,) * (length - len(other.elements))
        return FeldmanCommitment(
            elements=tuple(group.multiply(a, b) for a, b in zip(mine, theirs))
        )


@dataclass(frozen=True)
class FeldmanDealing:
    """Everything a dealer produces: per-party shares + the commitment."""

    shares: list[Share]
    commitment: FeldmanCommitment


class FeldmanDealer:
    """Deals Feldman-verifiable sharings in a Schnorr group."""

    def __init__(self, group: SchnorrGroup, n: int, threshold: int) -> None:
        self.group = group
        self.shamir = ShamirDealer(group.scalar_field, n, threshold)
        self.n = n
        self.threshold = threshold

    def commit(self, polynomial: Polynomial) -> FeldmanCommitment:
        """Commit to an existing polynomial."""
        return FeldmanCommitment(
            elements=tuple(self.group.base_power(c) for c in polynomial.coefficients)
        )

    def deal(self, secret: int, rng: random.Random) -> FeldmanDealing:
        """Deal a verifiable sharing of ``secret``."""
        polynomial, shares = self.shamir.share(secret, rng)
        return FeldmanDealing(shares=shares, commitment=self.commit(polynomial))

    def deal_zero(self, rng: random.Random) -> FeldmanDealing:
        """Deal a verifiable sharing of zero (for proactive refresh).

        Verifiers must additionally check ``commitment.public_constant == 1``
        to be sure the dealt secret really is zero; see
        :meth:`verify_zero_dealing`.
        """
        return self.deal(0, rng)

    def verify_zero_dealing(self, dealing_commitment: FeldmanCommitment) -> bool:
        """Check that a commitment opens to a sharing of zero."""
        return dealing_commitment.public_constant == self.group.identity
