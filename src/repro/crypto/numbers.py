"""Number-theoretic primitives used by every scheme in this package.

Everything here is implemented from scratch on top of Python integers:
Miller--Rabin primality testing, prime and safe-prime generation, modular
inverses, and square-and-multiply helpers.  These are the foundations for
the Schnorr groups (:mod:`repro.crypto.group`), RSA
(:mod:`repro.crypto.rsa`) and the secret-sharing arithmetic
(:mod:`repro.crypto.shamir`).

All generation functions take an explicit ``random.Random`` instance so
executions of the simulator are reproducible from a single seed (the
paper's model hands each node an explicit random tape ``r_i``).
"""

from __future__ import annotations

import random
from typing import Iterable

__all__ = [
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "mod_inverse",
    "egcd",
    "crt_pair",
    "product",
]

# Small primes used for fast trial division before Miller--Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

# Deterministic Miller--Rabin witness sets.  For n < 3.3e24 the first set
# is a proven deterministic test; for larger n we add random witnesses.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite.

    ``n - 1 = d * 2**r`` with ``d`` odd.
    """
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller--Rabin primality test.

    Deterministic (and exact) for ``n`` below ~3.3e24; probabilistic with
    ``rounds`` random witnesses above that, giving error probability at
    most ``4**-rounds``.

    Args:
        n: candidate integer.
        rounds: number of random witnesses for large ``n``.
        rng: randomness source for witness selection (a fresh one is
            created when omitted; witness choice does not need to be
            reproducible for correctness).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < _DETERMINISTIC_BOUND:
        witnesses: Iterable[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random()
        witnesses = list(_DETERMINISTIC_WITNESSES)
        witnesses += [rng.randrange(2, n - 1) for _ in range(rounds)]

    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Sample a uniformly-ish random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError(f"cannot generate a prime of {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> tuple[int, int]:
    """Sample a safe prime ``p = 2q + 1``; returns ``(p, q)``.

    Safe primes give Schnorr groups whose prime-order subgroup has index 2,
    which keeps subgroup-membership checks trivial.  Generation is slow for
    large ``bits``; the named groups in :mod:`repro.crypto.group` cache
    precomputed parameters for production sizes.
    """
    if bits < 4:
        raise ValueError(f"cannot generate a safe prime of {bits} bits")
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p):
            return p, q


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


def mod_inverse(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises:
        ZeroDivisionError: if ``gcd(a, modulus) != 1``.
    """
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise ZeroDivisionError(f"{a} has no inverse modulo {modulus} (gcd={g})")
    return x % modulus


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder theorem for two coprime moduli.

    Returns the unique ``x mod m1*m2`` with ``x = r1 (mod m1)`` and
    ``x = r2 (mod m2)``.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError(f"moduli {m1}, {m2} are not coprime")
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * p) % m2)) % (m1 * m2)


def product(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for empty input)."""
    result = 1
    for value in values:
        result *= value
    return result
