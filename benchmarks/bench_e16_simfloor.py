"""E16 — the simulation-floor layer: rounds/sec with bit-identical transcripts.

E14 measured the *crypto* hot paths; after PR 2 and PR 4 the remaining
ceiling is the crypto-free simulation floor itself — envelope routing,
per-round transcript materialization, and ``disperse.on_round``
bookkeeping.  E16 measures that floor directly:

* **crypto-free floods** at n ∈ {5, 13, 25, 49}: every node runs a
  full-flood DISPERSE chatter (ring probes, one retransmission) under a
  passive adversary, so the run is pure routing + accounting with zero
  signature work.  The n = 49 point is the E8-style run: it uses the §6
  sparse relay (``relay_fanout = 2t+1``), the exact configuration E8
  prescribes for large n — a full ULS refresh at n = 49 is still
  crypto-bound for tens of minutes per mode even sparse, which is why
  the floor benchmark isolates E8's n = 49 *message pattern* instead;
* **the E13 chaos workloads** (DISPERSE chatter and full ULS under
  seeded fault plans), each point aggregating several seeds so the
  timing is not dominated by per-run noise; the crypto-free
  ``chaos-disperse`` point is the acceptance target (≥ 2× on vs off);
* **a real E8 sparse-relay refresh at n = 13**, showing the floor drop
  propagating into the crypto-bearing experiments (E14 re-measures the
  full-flood e8 points; its committed report is regenerated with this
  layer in place).

Each point runs twice in-process — layer off (``configure(enabled=
False)``) then on (caches cleared, cold start) — recording wall-clock,
rounds/sec, and a transcript digest per mode.  The digests are computed
*outside* the timed region (they cost the same in both modes and would
otherwise dilute the measured ratio) and must be equal: the floor layer
is transcript-neutral (docs/PROTOCOLS.md §12).

Compact-record mode is covered separately: it intentionally drops the
per-round envelopes, so its parity claim goes through the streaming
:class:`~repro.analysis.digest.RoundsDigest` — the compact run's digest
must equal the full run's.

Sweep points fan out across worker processes (``--jobs N``); stripping
the ``timing`` section must yield byte-identical reports for any
``--jobs`` value, which ``test_e16_jobs_do_not_change_results`` checks.

Regenerate the committed report with::

    PYTHONPATH=src python benchmarks/bench_e16_simfloor.py --jobs 4

``BENCH_SMOKE=1`` shrinks the sweep to a CI-sized sanity check (report
goes to ``BENCH_E16_smoke.json``; the committed full-sweep
``BENCH_E16.json`` and the regression floor ``BENCH_E16_floor.json``
are left alone).  ``check_e16_regression.py`` compares a fresh report's
speedup ratios against the committed floor and fails CI on a > 25%
regression.
"""

import argparse
import hashlib
import os
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.core.disperse import DisperseService
from repro.perf import configure
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import build_uls_network, emit_json, format_table, transcript_digest
from bench_e13_chaos import run_disperse_chaos, run_uls_chaos

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

FLOOD_T = 2
FLOOD_SCHED = Schedule(setup_rounds=2, refresh_rounds=2, normal_rounds=20)
FLOOD_UNITS = 1 if SMOKE else 3
SPARSE_N = 49  # full flood is Θ(n²) per probe; at n=49 use the §6 sparse relay

E8_T = 2
E8_N = 13  # a real refresh at n=49 runs for tens of minutes even sparse
E8_UNITS = 2  # refresh runs at unit boundaries: units=2 is one real refresh

CHAOS_SEEDS = {
    "disperse": range(0, 2) if SMOKE else range(0, 8),
    "uls": range(100, 101) if SMOKE else range(100, 104),
}

FULL_POINTS = (
    [("flood", n) for n in (5, 13, 25, 49)]
    + [("chaos", "disperse"), ("chaos", "uls"), ("e8", E8_N)]
)
SMOKE_POINTS = [("flood", 5), ("chaos", "disperse")]

COMPACT_N = 5 if SMOKE else 13


def sweep_points():
    return SMOKE_POINTS if SMOKE else FULL_POINTS


def point_id(point) -> str:
    kind, param = point
    return f"{kind}-n{param}" if isinstance(param, int) else f"{kind}-{param}"


# ------------------------------------------------------------ workloads

class FloodChatter(NodeProgram):
    """Ring-probe DISPERSE chatter — the crypto-free floor workload.

    Identical in shape to E13's ``ChaosChatter`` but parameterized by
    relay fanout so the n = 49 point can run the §6 sparse relay."""

    def __init__(self, relay_fanout: int | None = None) -> None:
        super().__init__()
        self.disperse = DisperseService(relay_fanout=relay_fanout, retransmit=1)
        self.delivered: list = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        self.delivered.extend(self.disperse.receipts(""))
        if ctx.info.phase.value == "normal":
            target = (self.node_id + 1) % ctx.n
            self.disperse.send(ctx, target, ("probe", self.node_id, ctx.info.round))


def run_flood(n: int, *, stream_digest: bool = False):
    relay_fanout = 2 * FLOOD_T + 1 if n >= SPARSE_N else None
    programs = [FloodChatter(relay_fanout) for _ in range(n)]
    runner = ULRunner(programs, PassiveAdversary(), FLOOD_SCHED,
                      s=FLOOD_T, seed=n, stream_digest=stream_digest)
    return runner.run(units=FLOOD_UNITS)


def _run_e8(n: int):
    public, programs, runner, schedule = build_uls_network(
        n, E8_T, seed=0, relay_fanout=2 * E8_T + 1)
    return runner.run(units=E8_UNITS)


def _run_point(point):
    """One sweep point → list of executions (chaos points aggregate
    several seeds so per-run noise does not dominate the timing)."""
    kind, param = point
    if kind == "flood":
        return [run_flood(param)]
    if kind == "chaos":
        runs = {"disperse": run_disperse_chaos, "uls": run_uls_chaos}[param]
        return [runs(seed)[1] for seed in CHAOS_SEEDS[param]]
    if kind == "e8":
        return [_run_e8(param)]
    raise ValueError(f"unknown sweep point kind {kind!r}")


# ----------------------------------------------------------- measurement

def _combined_digest(executions) -> str:
    digests = "|".join(transcript_digest(execution) for execution in executions)
    return hashlib.sha256(digests.encode("ascii")).hexdigest()


REPEATS = 2  # smoke points are tiny, so best-of-2 is cheap even in CI


def measure_point(point):
    """Run one sweep point in both modes; return digests and timings.

    Only the simulation is inside the timed region; the digest pass
    costs the same in both modes and would dilute the measured ratio.
    Each mode is best-of-``REPEATS`` (min wall-clock) so a scheduler
    hiccup on either side cannot fake or mask a regression; the digest
    must be identical across repeats."""
    out = {"point": point_id(point)}
    try:
        for mode, enabled in (("baseline", False), ("optimized", True)):
            best = None
            digest = None
            rounds = 0
            for _ in range(REPEATS):
                configure(enabled=enabled)  # also clears caches (cold start)
                start = time.perf_counter()
                executions = _run_point(point)
                elapsed = time.perf_counter() - start
                rounds = sum(len(execution.records) for execution in executions)
                this_digest = _combined_digest(executions)
                if digest is None:
                    digest = this_digest
                elif digest != this_digest:
                    raise AssertionError(f"{point_id(point)} {mode}: "
                                         "repeat changed the transcript")
                best = elapsed if best is None else min(best, elapsed)
            out[mode] = {
                "seconds": best,
                "rounds": rounds,
                "rounds_per_s": rounds / best if best else 0.0,
                "digest": digest,
            }
    finally:
        configure(enabled=True)
    return out


def measure_compact(n: int = COMPACT_N):
    """Compact-record mode vs full records, both with the streaming
    digest on: the digests must match (docs/PROTOCOLS.md §12) and the
    compact run records its own timing."""
    out = {"n": n}
    try:
        for mode, compact in (("full", False), ("compact", True)):
            configure(enabled=True, compact_records=compact)
            start = time.perf_counter()
            execution = run_flood(n, stream_digest=True)
            out[mode] = {
                "seconds": time.perf_counter() - start,
                "rounds_digest": execution.rounds_digest,
            }
    finally:
        configure(enabled=True, compact_records=False)
    out["digest_match"] = out["full"]["rounds_digest"] == out["compact"]["rounds_digest"]
    return out


def run_sweep(points, jobs: int):
    if jobs <= 1:
        return [measure_point(point) for point in points]
    with ProcessPoolExecutor(max_workers=jobs, mp_context=get_context("fork")) as pool:
        return list(pool.map(measure_point, points, chunksize=1))


def build_report(measurements, compact, jobs: int) -> dict:
    results = {}
    timing_points = {}
    total_baseline = 0.0
    total_optimized = 0.0
    for m in measurements:
        pid = m["point"]
        results[pid] = {
            "digest": m["optimized"]["digest"],
            "transcripts_match": m["baseline"]["digest"] == m["optimized"]["digest"],
            "rounds": m["optimized"]["rounds"],
        }
        baseline_s = m["baseline"]["seconds"]
        optimized_s = m["optimized"]["seconds"]
        total_baseline += baseline_s
        total_optimized += optimized_s
        timing_points[pid] = {
            "baseline_s": round(baseline_s, 4),
            "optimized_s": round(optimized_s, 4),
            "baseline_rounds_per_s": round(m["baseline"]["rounds_per_s"], 1),
            "optimized_rounds_per_s": round(m["optimized"]["rounds_per_s"], 1),
            "speedup": round(baseline_s / optimized_s, 2),
        }
    return {
        "experiment": "e16_simfloor",
        "description": "sim-floor layer on vs off: rounds/sec and transcript "
                       "digests on crypto-free floods (n in {5,13,25,49}), the "
                       "E13 chaos points, and a sparse-relay E8 refresh; the "
                       "n=49 flood runs E8's large-n sparse-relay config; "
                       "digests must match in both modes and compact records "
                       "must keep rounds-digest parity",
        "config": {
            "group": "toy64",
            "smoke": SMOKE,
            "repeats": REPEATS,
            "floor_flags": ["inbox_demux", "lazy_rng", "faithful_fastpath",
                            "zero_copy_records", "fault_index"],
            "flood": {"schedule": [FLOOD_SCHED.setup_rounds,
                                   FLOOD_SCHED.refresh_rounds,
                                   FLOOD_SCHED.normal_rounds],
                      "units": FLOOD_UNITS, "t": FLOOD_T,
                      "sparse_relay_from_n": SPARSE_N,
                      "relay_fanout_sparse": 2 * FLOOD_T + 1,
                      "e8_style_point": f"flood-n{SPARSE_N}"},
            "chaos_seeds": {kind: list(seeds) for kind, seeds in CHAOS_SEEDS.items()},
            "e8": {"n": E8_N, "t": E8_T, "units": E8_UNITS,
                   "relay_fanout": 2 * E8_T + 1},
            "points": [point_id(p) for p in sweep_points()],
        },
        "results": results,
        "compact_records": {
            "n": compact["n"],
            "digest_match": compact["digest_match"],
            "rounds_digest": compact["full"]["rounds_digest"],
        },
        "timing": {
            "jobs": jobs,
            "points": timing_points,
            "compact": {
                "full_s": round(compact["full"]["seconds"], 4),
                "compact_s": round(compact["compact"]["seconds"], 4),
                "speedup": round(compact["full"]["seconds"]
                                 / compact["compact"]["seconds"], 2),
            },
            "total_baseline_s": round(total_baseline, 4),
            "total_optimized_s": round(total_optimized, 4),
            "speedup": round(total_baseline / total_optimized, 2),
        },
    }


def canonical_payload(report: dict) -> dict:
    """The deterministic part of a report (identical for any --jobs)."""
    return {key: value for key, value in report.items() if key != "timing"}


def report_table(report: dict) -> str:
    timing = report["timing"]
    rows = []
    for pid, point in sorted(timing["points"].items()):
        rows.append((
            pid,
            report["results"][pid]["rounds"],
            point["baseline_s"],
            point["optimized_s"],
            point["baseline_rounds_per_s"],
            point["optimized_rounds_per_s"],
            point["speedup"],
            "yes" if report["results"][pid]["transcripts_match"] else "NO",
        ))
    rows.append(("TOTAL", "", timing["total_baseline_s"],
                 timing["total_optimized_s"], "", "", timing["speedup"], ""))
    return format_table(
        "E16  sim-floor layer: wall-clock and rounds/sec, layer off vs on "
        "(transcripts equal)",
        ["point", "rounds", "off s", "on s", "off rds/s", "on rds/s",
         "speedup", "same transcript"],
        rows,
    )


# ---------------------------------------------------------------- pytest

def test_e16_transcripts_match_and_floor_speedup(benchmark):
    """Every mode flip leaves the transcript bit-identical; the
    crypto-free chaos points must show the >= 2x floor drop (smoke
    points are too small to bound tightly, so smoke only checks > 1x
    overall)."""
    measurements = run_sweep(sweep_points(), jobs=1)
    compact = measure_compact()
    report = build_report(measurements, compact, jobs=1)
    assert all(r["transcripts_match"] for r in report["results"].values()), report
    assert report["compact_records"]["digest_match"], report
    if SMOKE:
        assert report["timing"]["speedup"] > 1.0
    else:
        assert report["timing"]["points"]["chaos-disperse"]["speedup"] >= 2.0
        assert report["timing"]["speedup"] > 1.5
    stem = "BENCH_E16_smoke" if SMOKE else "BENCH_E16"
    emit_json(stem, report)
    print("\n" + report_table(report) + "\n")
    benchmark(lambda: run_flood(5))


def test_e16_jobs_do_not_change_results():
    """The parallel harness is a pure fan-out: stripping the timing
    section, --jobs 1 and --jobs 2 reports are identical."""
    points = SMOKE_POINTS
    compact = measure_compact()
    serial = build_report(run_sweep(points, jobs=1), compact, jobs=1)
    parallel = build_report(run_sweep(points, jobs=2), compact, jobs=2)
    assert canonical_payload(serial) == canonical_payload(parallel)


# ---------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="worker processes for the sweep (default: all cores)")
    args = parser.parse_args(argv)
    measurements = run_sweep(sweep_points(), jobs=args.jobs)
    compact = measure_compact()
    report = build_report(measurements, compact, jobs=args.jobs)
    stem = "BENCH_E16_smoke" if SMOKE else "BENCH_E16"
    path = emit_json(stem, report)
    print(report_table(report))
    print(f"\nwrote {path}")
    failures = [pid for pid, r in report["results"].items()
                if not r["transcripts_match"]]
    if not report["compact_records"]["digest_match"]:
        failures.append("compact-records")
    if failures:
        print(f"TRANSCRIPT MISMATCH: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
