"""Shamir secret sharing over a prime field.

The distribution substrate for the AL-model PDS (§3.2): the global signing
key is a degree-``t`` sharing among ``n`` nodes, any ``t+1`` of which can
reconstruct (interpolate) while any ``t`` learn nothing.

Share indices are the node identifiers shifted to ``1..n`` (``x = 0`` is
the secret itself and is never used as an evaluation point).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.field import PrimeField, Polynomial

__all__ = ["Share", "ShamirDealer", "reconstruct_secret", "add_share_values"]


@dataclass(frozen=True)
class Share:
    """One share: evaluation point ``x`` (node index + 1) and value ``f(x)``."""

    x: int
    value: int


class ShamirDealer:
    """Deals degree-``threshold`` sharings of secrets among ``n`` parties.

    ``threshold`` here is the paper's ``t``: up to ``t`` shares reveal
    nothing, ``t+1`` reconstruct.
    """

    def __init__(self, field: PrimeField, n: int, threshold: int) -> None:
        if n < 1:
            raise ValueError("need at least one party")
        if not (0 <= threshold < n):
            raise ValueError(f"threshold must be in [0, n), got t={threshold}, n={n}")
        if n >= field.order:
            raise ValueError("field too small for this many parties")
        self.field = field
        self.n = n
        self.threshold = threshold

    def share(self, secret: int, rng: random.Random) -> tuple[Polynomial, list[Share]]:
        """Deal a fresh sharing of ``secret``; returns (polynomial, shares).

        The polynomial is returned so verifiable wrappers (Feldman) can
        commit to its coefficients; plain callers should discard it.
        """
        poly = self.field.random_polynomial(self.threshold, rng, constant=secret)
        shares = [Share(x=i, value=poly.evaluate(i)) for i in range(1, self.n + 1)]
        return poly, shares

    def share_zero(self, rng: random.Random) -> tuple[Polynomial, list[Share]]:
        """Deal a sharing of 0 — the building block of proactive refresh
        (adding a zero-sharing re-randomizes every share while preserving
        the secret)."""
        return self.share(0, rng)


def reconstruct_secret(field: PrimeField, shares: list[Share]) -> int:
    """Interpolate the secret from at least ``t+1`` shares.

    The caller is responsible for providing enough *correct* shares;
    verifiability (rejecting corrupted shares) is Feldman's job.
    """
    if not shares:
        raise ValueError("cannot reconstruct from zero shares")
    return field.interpolate_at_zero([(s.x, s.value) for s in shares])


def add_share_values(field: PrimeField, *shares: Share) -> Share:
    """Point-wise sum of shares at the same ``x``.

    Summing a share of ``a`` and a share of ``b`` (same degree, same x)
    yields a share of ``a + b`` — used both for refresh (adding a
    zero-sharing) and for joint nonce generation in threshold signing.
    """
    if not shares:
        raise ValueError("need at least one share")
    x = shares[0].x
    if any(s.x != x for s in shares):
        raise ValueError("shares must share an evaluation point")
    total = 0
    for s in shares:
        total = field.add(total, s.value)
    return Share(x=x, value=total)
