"""Execute a :class:`~repro.faults.plan.FaultPlan` as an adversary.

:class:`FaultInjectionAdversary` is an ordinary
:class:`~repro.sim.adversary_api.Adversary`, so fault schedules ride the
exact same rails as attacks: crashes and memory corruptions are break-ins
(visible to the ``(s,t)`` accounting of :mod:`repro.adversary.limits`),
link faults are delivery-plan edits (visible to the Definition 4 multiset
diff), and reordering is a delivery-plan edit that Definition 4 provably
cannot see.  It optionally wraps a *base* adversary — the base acts
first each round, the faults are layered on top of whatever it did —
so any existing strategy composes with any plan.

Determinism: the only randomness consumed is a private
``random.Random`` seeded from ``plan.seed``; the runner's own adversary
rng is passed through to the base untouched, so wrapping a strategy in
faults never perturbs the strategy's random choices.
"""

from __future__ import annotations

import random
from typing import Any

from repro.faults.plan import FaultPlan, default_corruptor, mix_seed
from repro.perf.config import perf_config
from repro.sim.adversary_api import Adversary, AdversaryApi, FaithfulPlan
from repro.sim.clock import RoundInfo, Schedule
from repro.sim.messages import Envelope

__all__ = ["FaultInjectionAdversary"]


class FaultInjectionAdversary(Adversary):
    """Adversary that executes a static :class:`FaultPlan`.

    ``stats`` tallies what actually happened (crashes, corruptions,
    dropped/duplicated/delayed/expired/reordered envelopes) and is also
    emitted as a ``("fault-stats", {...})`` entry in the adversary's
    final output, where the emulation checker ignores it but analyses
    and benchmarks can read it back from the transcript.
    """

    def __init__(self, plan: FaultPlan, base: Adversary | None = None) -> None:
        self.plan = plan
        self.base = base
        self.stats: dict[str, int] = {
            "crashes": 0,
            "corruptions": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "expired": 0,
            "reordered": 0,
        }
        self._crashed: set[int] = set()         # nodes *we* hold broken
        self._pending_leave: set[int] = set()   # corruption victims to release
        self._held: dict[int, list[Envelope]] = {}  # release round -> envelopes

    # -- lifecycle -----------------------------------------------------------

    def begin(self, n: int, schedule: Schedule, rng: random.Random) -> None:
        super().begin(n, schedule, rng)
        self.plan.validate(n=n)  # fail the run up front on malformed plans
        if self.base is not None:
            self.base.begin(n, schedule, rng)
        # reset per-run state so the same adversary object replays
        # identically when reused across runs
        self.stats = dict.fromkeys(self.stats, 0)
        self._crashed = set()
        self._pending_leave = set()
        self._held = {}
        self._rng = random.Random(mix_seed("fault-exec", self.plan.seed))
        self._corruptions_by_round: dict[int, list] = {}
        for fault in self.plan.corruptions:
            self._corruptions_by_round.setdefault(fault.round, []).append(fault)

    def finish(self) -> list[Any]:
        entries = list(self.base.finish()) if self.base is not None else []
        entries.append(("fault-stats", dict(self.stats)))
        return entries

    # -- break-ins (crashes + memory corruption) ------------------------------

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]) -> None:
        if self.base is not None:
            self.base.on_round(api, info, traffic)

        # release last round's corruption victims: the break is recorded for
        # exactly one round, the program stays silent one more (leave
        # semantics) and then resumes with the damaged state
        for node in sorted(self._pending_leave):
            if api.is_broken(node):
                api.leave(node)
        self._pending_leave.clear()

        # crashes: hold the victim broken over the fault's interval.  A node
        # the base adversary already holds is left to the base (we must not
        # release someone else's break-in).
        wanted = {
            fault.node for fault in self.plan.crashes if fault.active(info.round)
        }
        for node in sorted(wanted - self._crashed):
            if not api.is_broken(node):
                api.break_into(node)
                self._crashed.add(node)
                self.stats["crashes"] += 1
        for node in sorted(self._crashed - wanted):
            if api.is_broken(node):
                api.leave(node)
            self._crashed.discard(node)

        # memory corruption: one-round break-in that damages RAM
        for fault in self._corruptions_by_round.get(info.round, ()):
            mutator = fault.mutator or default_corruptor
            if api.is_broken(fault.node):
                # already compromised (by the base or a crash): mutate in
                # place, ownership of the break-in is unchanged
                mutator(api.program_of(fault.node), self._rng)
            else:
                program = api.break_into(fault.node)
                mutator(program, self._rng)
                self._pending_leave.add(fault.node)
            self.stats["corruptions"] += 1

    # -- delivery (drop / duplicate / delay / reorder; UL model only) ---------

    def deliver(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        if self.base is not None:
            plan = self.base.deliver(api, info, traffic)
        else:
            # passed through unmodified below when no fault is active, so
            # carry the faithfulness provenance
            plan = FaithfulPlan.build(traffic, api.n)
        for receiver in range(api.n):
            plan.setdefault(receiver, [])

        round_number = info.round
        if perf_config().flag("fault_index"):
            # filter the static schedule down to this round's active
            # faults once, instead of re-checking every fault's round
            # window per envelope.  Order is preserved, so "first
            # matching fault wins" and rng consumption are unchanged —
            # an inactive fault never matches and never draws.
            drops = [f for f in self.plan.drops
                     if f.first_round <= round_number <= f.last_round]
            delays = [f for f in self.plan.delays
                      if f.first_round <= round_number <= f.last_round]
            dups = [f for f in self.plan.duplications
                    if f.first_round <= round_number <= f.last_round]
            reorders = [f for f in self.plan.reorders if f.active(round_number)]
            if (not drops and not delays and not dups and not reorders
                    and round_number not in self._held):
                # nothing can touch this round's traffic and nothing
                # draws randomness: the base plan goes through untouched
                # (keeping its faithfulness marker, if any)
                return plan
        else:
            drops = self.plan.drops
            delays = self.plan.delays
            dups = self.plan.duplications
            reorders = self.plan.reorders

        out: dict[int, list[Envelope]] = {receiver: [] for receiver in range(api.n)}
        for receiver in range(api.n):
            for envelope in plan[receiver]:
                fate = self._link_fate(envelope, info, drops, delays, dups)
                if fate == "drop":
                    self.stats["dropped"] += 1
                    continue
                if isinstance(fate, int):  # delay: fate is the release round
                    if self.schedule.info(fate).time_unit != info.time_unit:
                        # per-unit timeout: never leak stale traffic into the
                        # next unit's refreshment phase
                        self.stats["expired"] += 1
                    else:
                        self._held.setdefault(fate, []).append(envelope)
                        self.stats["delayed"] += 1
                    continue
                out[receiver].append(envelope)
                if fate is not None:  # duplicate: fate is the extra-copy count
                    for _ in range(fate[0]):
                        out[receiver].append(envelope)
                        self.stats["duplicated"] += 1

        # traffic delayed in an earlier round comes due now
        for envelope in self._held.pop(info.round, ()):
            out[envelope.receiver].append(envelope)

        for fault in reorders:
            if not fault.active(info.round):
                continue
            receivers = range(api.n) if fault.receiver is None else (fault.receiver,)
            for receiver in receivers:
                if len(out[receiver]) > 1:
                    self._rng.shuffle(out[receiver])
                    self.stats["reordered"] += 1
        return out

    def _link_fate(self, envelope: Envelope, info: RoundInfo,
                   drops=None, delays=None, dups=None):
        """First matching fault wins: ``"drop"``, release round (int) for a
        delay, ``(copies,)`` for duplication, ``None`` for clean delivery.

        The fault lists default to the plan's full schedules; ``deliver``
        passes this round's pre-filtered active faults instead.
        """
        sender, receiver, channel = envelope.sender, envelope.receiver, envelope.channel
        for fault in (self.plan.drops if drops is None else drops):
            if fault.matches(sender, receiver, channel, info.round):
                if fault.probability >= 1.0 or self._rng.random() < fault.probability:
                    return "drop"
        for fault in (self.plan.delays if delays is None else delays):
            if fault.matches(sender, receiver, channel, info.round):
                if fault.probability >= 1.0 or self._rng.random() < fault.probability:
                    return info.round + fault.delay
        for fault in (self.plan.duplications if dups is None else dups):
            if fault.matches(sender, receiver, channel, info.round):
                if fault.probability >= 1.0 or self._rng.random() < fault.probability:
                    return (fault.copies,)
        return None
