"""Blame-attribution parity: perf layer on vs. off.

The batched verifiers (`verify_shares_batch`, the partial-signature RLC
check) fall back to per-item verification whenever a batch fails, so the
*blame records* — ``RefreshService.rejected_dealers`` and
``ThresholdSigner.rejected_partials`` — must be identical with the perf
layer on or off, under faults as well as in the all-honest case.  Three
angles:

* seeded E13-style chaos runs of the full ULS (property test),
* a deterministic `_on_zero_deals` drive with a forged share and a
  non-zero-constant dealing (guaranteed-nonempty blame), and
* an AL PDS run where one signer's share is corrupted mid-unit
  (guaranteed-nonempty ``rejected_partials`` on the honest nodes).
"""

import random

import pytest

from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.feldman import FeldmanDealer
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.shamir import Share
from repro.faults import FaultInjectionAdversary, FaultPlan
from repro.pds.harness import PdsNodeProgram, required_refresh_rounds
from repro.pds.keys import deal_initial_states
from repro.pds.refresh import RefreshService, _Phase
from repro.pds.transport import DirectTransport
from repro.perf import configure
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner, ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
ULS_SCHED = uls_schedule()


# ------------------------------------------------ chaos property test

def _run_uls_chaos(seed: int):
    plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=ULS_SCHED, units=2)
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i], cert_retransmit=1, cert_grace_rounds=1)
        for i in range(N)
    ]
    runner = ULRunner(programs, FaultInjectionAdversary(plan), ULS_SCHED,
                      s=T, seed=seed)
    execution = runner.run(units=2)
    return (
        execution.global_output(),
        [frozenset(p.core.refresher.rejected_dealers) for p in programs],
        [frozenset(p.core.signer.rejected_partials) for p in programs],
    )


@pytest.mark.parametrize("seed", [101, 107, 113])
def test_uls_chaos_blame_parity(perf, seed):
    configure(enabled=True)
    output_on, dealers_on, partials_on = _run_uls_chaos(seed)
    configure(enabled=False)
    output_off, dealers_off, partials_off = _run_uls_chaos(seed)
    assert output_on == output_off
    assert dealers_on == dealers_off
    assert partials_on == partials_off


# --------------------------------------- deterministic refresh blame

def _drive_zero_deals() -> tuple[set, dict]:
    rng = random.Random(31)
    public, states = deal_initial_states(GROUP, n=N, threshold=T, rng=rng)
    service = RefreshService(states[0], DirectTransport())
    phase = _Phase(unit=1, start_round=0)
    dealer = FeldmanDealer(GROUP, n=N, threshold=T)
    my_x = states[0].share_index
    run = []
    for sender in (1, 2, 3):
        dealing = dealer.deal_zero(rng)
        value = dealing.shares[my_x - 1].value
        if sender == 3:
            value = (value + 1) % GROUP.q  # forged sub-share
        run.append((sender, ("rf-zdeal", 1, dealing.commitment.elements, value)))
    nonzero = dealer.deal(5, rng)  # constant term != 0: not a zero sharing
    run.append((4, ("rf-zdeal", 1, nonzero.commitment.elements,
                    nonzero.shares[my_x - 1].value)))
    service._on_zero_deals(run, phase)
    return service.rejected_dealers, phase.zero_dealings


def test_zero_deal_blame_deterministic(perf):
    configure(enabled=True, feldman_batch=True)
    rejected_on, dealings_on = _drive_zero_deals()
    configure(enabled=True, feldman_batch=False)
    rejected_off, dealings_off = _drive_zero_deals()

    # exact blame either way: dealer 3 forged its sub-share, dealer 4
    # dealt a non-zero sharing
    assert rejected_on == rejected_off == {(1, 3), (1, 4)}
    for dealings in (dealings_on, dealings_off):
        # the forged dealing is recorded with an unusable share ...
        assert dealings[3].my_share_value is None
        # ... the non-zero dealing is rejected outright (never acked)
        assert 4 not in dealings
        # honest dealers' sub-shares survive
        assert dealings[1].my_share_value is not None
        assert dealings[2].my_share_value is not None
    assert {d: z.my_share_value for d, z in dealings_on.items()} == \
        {d: z.my_share_value for d, z in dealings_off.items()}


# --------------------------------------- corrupted-signer AL parity

AL_SCHED = Schedule(setup_rounds=1, refresh_rounds=required_refresh_rounds(1),
                    normal_rounds=8)


class CorruptedSigner(PdsNodeProgram):
    """Flips its own share value at the first normal round of unit 0, so
    every partial signature it later emits fails verification."""

    def step(self, ctx, inbox):
        if ctx.info.round == AL_SCHED.first_normal_round(0) and self.state.share:
            share = self.state.share
            self.state.share = Share(x=share.x, value=(share.value + 1) % GROUP.q)
        super().step(ctx, inbox)


def _run_corrupted_signing(seed: int = 41):
    public, states = deal_initial_states(GROUP, n=N, threshold=T,
                                         rng=random.Random(seed))
    programs = [CorruptedSigner(states[0])] + [
        PdsNodeProgram(state) for state in states[1:]
    ]
    runner = ALRunner(programs, PassiveAdversary(), AL_SCHED, seed=seed)
    r = AL_SCHED.first_normal_round(0)
    for node_id in range(N):
        runner.add_external_input(node_id, r, ("sign", "parity"))
    execution = runner.run(units=1)
    return (
        execution.global_output(),
        [frozenset(p.signer.rejected_partials) for p in programs],
    )


def test_corrupted_partial_blame_parity(perf):
    configure(enabled=True)
    output_on, rejected_on = _run_corrupted_signing()
    configure(enabled=False)
    output_off, rejected_off = _run_corrupted_signing()

    assert output_on == output_off
    assert rejected_on == rejected_off
    # every honest node blames node 0's share index, in both modes
    for node_id in range(1, N):
        assert rejected_on[node_id], node_id
        assert all(index == 1 for _, index in rejected_on[node_id])
