"""Tests for the adversary capability boundary (what the model allows
the adversary to do — and, as importantly, what it forbids)."""

import pytest

from repro.sim.adversary_api import Adversary, AdversaryApi
from repro.sim.clock import Schedule
from repro.sim.node import Node
from repro.sim.rom import RomViolation
from repro.sim.runner import ALRunner

from tests.helpers import EchoProgram

SCHED = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=4)


def make_api(n=3):
    nodes = [Node(i, EchoProgram(), n) for i in range(n)]
    import random

    return nodes, AdversaryApi(nodes, SCHED.info(2), random.Random(0))


def test_send_as_requires_broken_node():
    nodes, api = make_api()
    with pytest.raises(PermissionError):
        api.send_as(0, 1, "c", "payload")
    api.break_into(0)
    api.send_as(0, 1, "c", "payload")
    assert len(api.injected) == 1


def test_send_as_validates_receiver():
    nodes, api = make_api()
    api.break_into(0)
    with pytest.raises(ValueError):
        api.send_as(0, 0, "c", "self")
    with pytest.raises(ValueError):
        api.send_as(0, 9, "c", "out-of-range")


def test_program_of_requires_broken():
    nodes, api = make_api()
    with pytest.raises(PermissionError):
        api.program_of(1)
    api.break_into(1)
    assert api.program_of(1) is nodes[1].program


def test_break_and_leave_events_recorded():
    nodes, api = make_api()
    api.break_into(2)
    api.break_into(2)  # idempotent
    api.leave(2)
    api.leave(2)  # idempotent
    assert api.break_events == [(2, "break"), (2, "leave")]
    assert not api.is_broken(2)


def test_rom_readable_but_not_writable():
    """The adversary can read ROM; a write attempt raises (the ROM
    enforces itself — there is no writable path)."""
    nodes, api = make_api()
    nodes[0].rom.write("v_cert", 42)
    nodes[0].rom.freeze()
    rom = api.rom_of(0)
    assert rom.read("v_cert") == 42
    with pytest.raises(RomViolation):
        rom.write("v_cert", 666)


def test_forge_envelope_carries_claimed_sender():
    nodes, api = make_api()
    envelope = api.forge_envelope(2, 0, "chan", "fake")
    assert envelope.sender == 2
    assert envelope.receiver == 0


def test_adversary_output_reaches_global_output():
    class Chatty(Adversary):
        def on_round(self, api, info, traffic):
            if info.round == 2:
                api.output(("observed", len(traffic)))

    runner = ALRunner([EchoProgram() for _ in range(3)], Chatty(), SCHED, seed=1)
    execution = runner.run(units=1)
    assert any(entry[0] == "observed" for entry in execution.adversary_output)
    assert any(line[0] == "adversary" for line in execution.global_output())
