"""Tests for execution transcripts and global outputs (§2.1–2.2)."""

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner, ULRunner
from repro.sim.transcript import COMPROMISED, RECOVERED

from tests.helpers import EchoProgram, LinkDropAdversary

SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)
N = 4


def run_al(adversary=None, units=3, seed=2):
    runner = ALRunner([EchoProgram() for _ in range(N)],
                      adversary or PassiveAdversary(), SCHED, seed=seed)
    return runner.run(units=units)


def test_status_lines_alternate():
    """Per node, compromised/recovered lines strictly alternate, starting
    with compromised."""
    plan = BreakinPlan(victims={0: frozenset({1}), 1: frozenset({1, 2})})
    execution = run_al(MobileBreakInAdversary(plan))
    for node in range(N):
        events = [e for _, i, e in execution.system_log if i == node]
        for index, event in enumerate(events):
            expected = COMPROMISED if index % 2 == 0 else RECOVERED
            assert event == expected


def test_global_output_is_deterministic_and_ordered():
    e1 = run_al(seed=9)
    e2 = run_al(seed=9)
    g1, g2 = e1.global_output(), e2.global_output()
    assert g1 == g2
    # round-major ordering of the node/system lines
    rounds = [line[1] for line in g1 if line[0] in ("node", "system")]
    assert rounds == sorted(rounds)


def test_global_output_contains_system_lines():
    plan = BreakinPlan(victims={1: frozenset({3})})
    execution = run_al(MobileBreakInAdversary(plan))
    lines = execution.global_output()
    assert any(line[0] == "system" and line[2] == 3 and line[3] == COMPROMISED
               for line in lines)
    assert any(line[0] == "system" and line[2] == 3 and line[3] == RECOVERED
               for line in lines)


def test_impaired_vs_broken_distinction():
    """A UL link-victim is impaired (non-operational) but not broken."""
    dead = {frozenset((0, j)) for j in range(1, N)}
    runner = ULRunner([EchoProgram() for _ in range(N)],
                      LinkDropAdversary(dead), SCHED, s=2, seed=3)
    execution = runner.run(units=2)
    assert 0 in execution.impaired_in_unit(1)
    assert 0 not in execution.broken_in_unit(1)


def test_outputs_of_in_unit_slices_by_unit():
    execution = run_al()
    # EchoProgram emits no outputs; fabricate via unit query consistency
    for node in range(N):
        all_outputs = execution.outputs_of(node)
        by_unit = [
            entry
            for unit in range(execution.units())
            for entry in execution.outputs_of_in_unit(node, unit)
        ]
        assert sorted(map(repr, all_outputs)) == sorted(map(repr, by_unit))


def test_messages_sent_by_round_filter():
    execution = run_al(units=1)
    total = execution.messages_sent()
    per_round = sum(
        execution.messages_sent(rounds=[r]) for r in range(SCHED.total_rounds(1))
    )
    assert total == per_round


def test_record_at_and_units():
    execution = run_al(units=2)
    assert execution.units() == 2
    record = execution.record_at(0)
    assert record.info.round == 0
    assert execution.rounds_in_unit(1)[0].info.round == SCHED.refresh_start(1)
