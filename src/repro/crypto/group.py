"""Schnorr groups: prime-order subgroups of ``Z_p*`` for safe primes ``p``.

A :class:`SchnorrGroup` is the algebraic home of the centralized Schnorr
signature scheme (:mod:`repro.crypto.schnorr`), Feldman VSS commitments
(:mod:`repro.crypto.feldman`) and the threshold Schnorr PDS
(:mod:`repro.pds.threshold_schnorr`).

For reproducible fast simulations, :func:`named_group` exposes precomputed
safe-prime parameters at several sizes.  ``toy64`` is the default for unit
tests (fast, structurally identical to the large groups); ``toy512`` and
``modp1024`` are realistic sizes.  Fresh parameters of any size can be
generated with :meth:`SchnorrGroup.generate`.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.field import PrimeField
from repro.crypto.numbers import is_probable_prime, mod_inverse, random_safe_prime
from repro.perf.config import perf_config, register_cache_clearer
from repro.perf.fixed_base import FixedBaseWindow

__all__ = ["GroupParams", "SchnorrGroup", "named_group", "NAMED_GROUP_NAMES"]

#: bound on per-group fixed-base windows kept for registered bases
_MAX_BASE_WINDOWS = 16

#: bound on per-group memoized membership checks
_MAX_MEMBER_CACHE = 8192


@dataclass(frozen=True)
class GroupParams:
    """Raw parameters of a Schnorr group: modulus ``p = 2q + 1``, subgroup
    order ``q``, and a generator ``g`` of the order-``q`` subgroup."""

    p: int
    q: int
    g: int


# Precomputed safe-prime groups (generated with repro.crypto.numbers using
# the recorded seeds; regenerate with SchnorrGroup.generate).
_NAMED_PARAMS: dict[str, GroupParams] = {
    "toy64": GroupParams(
        p=10561829830609104407,
        q=5280914915304552203,
        g=9602570437518168674,
    ),  # generated seed=20260704
    "toy160": GroupParams(
        p=997855515580186396229697615310159920406160229659,
        q=498927757790093198114848807655079960203080114829,
        g=40598130892338324350451060130031123639020733021,
    ),  # generated seed=20260704
    "toy256": GroupParams(
        p=67821671967046951812557102031991670226620564348077837361628384566976813466943,
        q=33910835983523475906278551015995835113310282174038918680814192283488406733471,
        g=1850363098878163849516495635244569225836707380982770421430618418451472981723,
    ),  # generated seed=20260704
    "toy512": GroupParams(
        p=7224477589836730553154706986369398157297831408571460562969841994707833055171720153046343778318831080327224059409896887841605627399437448331101686846698343,
        q=3612238794918365276577353493184699078648915704285730281484920997353916527585860076523171889159415540163612029704948443920802813699718724165550843423349171,
        g=3861457192457190027768709366239781566834679578181151228805404375812153503896915365145922142150784532370305624799428037617088535660399526567890696987942938,
    ),  # generated seed=20260704
    "modp1024": GroupParams(
        p=102292161455402110795990114425354183015494145275678033294089408026257351076129818420238765831867365949681431539556667064807255964689911503222465506608386343717085643604731455043574735084843874347060142964840943459408481536927182861856820961443771763238767770199395850343670860883557290967403306168112662460087,
        q=51146080727701055397995057212677091507747072637839016647044704013128675538064909210119382915933682974840715769778333532403627982344955751611232753304193171858542821802365727521787367542421937173530071482420471729704240768463591430928410480721885881619383885099697925171835430441778645483701653084056331230043,
        g=43338353338829160309271392124088032175802578010888055724324843417461540773382510262568244032894896631063040234741223714503596379318858608370721183212445194097688425957439580663690250576823322582862780984876228399207528335266912907191921301553886997475029337569545509147976099107959202167877405949530252616906,
    ),  # generated seed=42
}

NAMED_GROUP_NAMES = tuple(sorted(_NAMED_PARAMS))

# live groups (keyed by id: equality-deduping would hide duplicate
# instances), so clear_all_caches() can drop their precomputed windows
_GROUP_REGISTRY: "weakref.WeakValueDictionary[int, SchnorrGroup]" = (
    weakref.WeakValueDictionary()
)


@register_cache_clearer
def _clear_group_caches() -> None:
    for group in list(_GROUP_REGISTRY.values()):
        group._g_window = None
        group._base_windows.clear()
        group._member_cache.clear()


class SchnorrGroup:
    """The order-``q`` subgroup of ``Z_p*`` for a safe prime ``p = 2q + 1``.

    Group elements are ints in ``[1, p)``; scalars live in the
    :class:`~repro.crypto.field.PrimeField` ``Z_q`` exposed as
    :attr:`scalar_field`.
    """

    def __init__(self, params: GroupParams, check: bool = True) -> None:
        if check:
            if params.p != 2 * params.q + 1:
                raise ValueError("p must equal 2q + 1")
            if not is_probable_prime(params.p) or not is_probable_prime(params.q):
                raise ValueError("p and q must both be prime")
            if not (1 < params.g < params.p) or pow(params.g, params.q, params.p) != 1:
                raise ValueError("g must generate the order-q subgroup")
            if params.g == 1:
                raise ValueError("g must not be the identity")
        self.params = params
        self.p = params.p
        self.q = params.q
        self.g = params.g
        self.scalar_field = PrimeField(params.q)
        # fixed-base precomputation (repro.perf): a window for g, built
        # lazily, plus a small pool of windows for registered long-lived
        # bases (e.g. the PDS key v_cert used by every VER-CERT)
        self._g_window: FixedBaseWindow | None = None
        self._base_windows: dict[int, FixedBaseWindow] = {}
        self._member_cache: dict[int, bool] = {}
        _GROUP_REGISTRY[id(self)] = self

    # -- construction ---------------------------------------------------

    @classmethod
    def generate(cls, bits: int, rng: random.Random) -> "SchnorrGroup":
        """Generate fresh parameters with a ``bits``-bit safe prime."""
        p, q = random_safe_prime(bits, rng)
        while True:
            h = rng.randrange(2, p - 1)
            g = pow(h, 2, p)
            if g != 1:
                break
        return cls(GroupParams(p=p, q=q, g=g))

    # -- group operations -------------------------------------------------

    @property
    def identity(self) -> int:
        return 1

    def power(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p`` (exponent reduced mod q)."""
        return pow(base, exponent % self.q, self.p)

    def base_power(self, exponent: int) -> int:
        """``g ** exponent mod p`` (through the fixed-base window when the
        perf layer is on and the modulus is large enough to profit)."""
        if self._windows_enabled():
            window = self._g_window
            if window is None:
                window = self._g_window = FixedBaseWindow(self.g, self.p, self.q)
            return window.pow(exponent)
        return pow(self.g, exponent % self.q, self.p)

    def fixed_power(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p`` for a *long-lived* base.

        Builds (and keeps) a fixed-base window for ``base`` when the perf
        layer is on — meant for bases that are exponentiated many times
        over their lifetime, such as the PDS verification key ``v_cert``
        checked by every VER-CERT, or a unit's certified local keys.
        Falls back to :meth:`power` for small groups or when disabled.
        The window pool is bounded; eviction is FIFO.
        """
        if not self._windows_enabled():
            return pow(base, exponent % self.q, self.p)
        window = self._base_windows.get(base)
        if window is None:
            while len(self._base_windows) >= _MAX_BASE_WINDOWS:
                self._base_windows.pop(next(iter(self._base_windows)))
            window = self._base_windows[base] = FixedBaseWindow(base, self.p, self.q)
        return window.pow(exponent)

    def _windows_enabled(self) -> bool:
        cfg = perf_config()
        return (
            cfg.enabled
            and cfg.fixed_base
            and self.p.bit_length() >= cfg.fixed_base_min_bits
        )

    def multiply(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def invert(self, a: int) -> int:
        return mod_inverse(a, self.p)

    def divide(self, a: int, b: int) -> int:
        return (a * self.invert(b)) % self.p

    def is_member(self, a: int) -> bool:
        """Check membership of the order-``q`` subgroup.

        A pure predicate of the element, so outcomes are memoized when
        the perf layer is on — the same keys, commitments and signature
        components are membership-checked over and over."""
        if not perf_config().enabled:
            return 0 < a < self.p and pow(a, self.q, self.p) == 1
        cached = self._member_cache.get(a)
        if cached is None:
            cached = 0 < a < self.p and pow(a, self.q, self.p) == 1
            if len(self._member_cache) >= _MAX_MEMBER_CACHE:
                self._member_cache.clear()
            self._member_cache[a] = cached
        return cached

    def random_scalar(self, rng: random.Random) -> int:
        """Uniform nonzero scalar (suitable as a secret key or nonce)."""
        return rng.randrange(1, self.q)

    def multi_power(self, bases_and_exponents: list[tuple[int, int]]) -> int:
        """Product of ``base_i ** exp_i`` — convenience for commitment checks."""
        acc = 1
        for base, exponent in bases_and_exponents:
            acc = (acc * pow(base, exponent % self.q, self.p)) % self.p
        return acc

    # -- equality / descriptor --------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SchnorrGroup) and self.params == other.params

    def __hash__(self) -> int:
        return hash(self.params)

    def __repr__(self) -> str:
        return f"SchnorrGroup(bits={self.p.bit_length()})"


@lru_cache(maxsize=None)
def named_group(name: str = "toy64") -> SchnorrGroup:
    """Return one of the precomputed groups by name.

    Available names: ``toy64``, ``toy160``, ``toy256``, ``toy512`` (see
    ``NAMED_GROUP_NAMES``).  Parameters are validated on first use and the
    constructed group is cached.
    """
    try:
        params = _NAMED_PARAMS[name]
    except KeyError:
        raise KeyError(f"unknown group {name!r}; choose from {NAMED_GROUP_NAMES}") from None
    return SchnorrGroup(params)
