"""Campaign runner: timeouts, retries, frontier bisection, resumability."""

import json

import pytest

from tests.helpers import EchoProgram
from repro.analysis.monitor import RuntimeInvariantMonitor
from repro.faults import (
    AdaptiveAdversary,
    CampaignState,
    CampaignTimeout,
    Probe,
    RecoveryChaserStrategy,
    WallClockBudget,
    escalate,
    run_probe,
)
from repro.sim.clock import Schedule
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N, T = 5, 2
UNITS = 3


class FakeClock:
    """Deterministic injectable clock: advances a fixed step per reading."""

    def __init__(self, step: float = 0.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def build_probe(aggressiveness, *, guarded=True, seed=7, fail_fast=True):
    adversary = AdaptiveAdversary(RecoveryChaserStrategy(), T, seed=seed,
                                  guarded=guarded, aggressiveness=aggressiveness)
    monitor = RuntimeInvariantMonitor(T, fail_fast=fail_fast)
    runner = ULRunner([EchoProgram() for _ in range(N)], adversary, SCHED,
                      s=T, seed=seed, observers=[adversary.lens, monitor])
    return Probe(runner=runner, units=UNITS, monitor=monitor)


# -------------------------------------------------------------------- timeout

def test_wall_clock_budget_aborts_a_run_mid_flight():
    probe = build_probe(0.2)
    budget = WallClockBudget(5.0, clock=FakeClock(step=1.0))
    probe.runner.add_observer(budget)
    budget.start()
    with pytest.raises(CampaignTimeout, match="exceeded"):
        probe.runner.run(UNITS)
    assert budget.elapsed > 5.0


def test_run_probe_reports_timeout_after_exhausting_retries():
    outcome = run_probe(lambda knob: build_probe(knob), 0.2,
                        timeout=5.0, retries=1, clock=FakeClock(step=1.0))
    assert outcome.timed_out
    assert outcome.ok is None
    assert outcome.attempts == 2  # the original try + one retry


def test_run_probe_retries_then_succeeds():
    clocks = iter([FakeClock(step=1.0), FakeClock(step=0.0)])
    shared = {"clock": None}

    def ticking():  # first attempt races ahead, the retry never ages
        return shared["clock"]()

    def build(knob):
        shared["clock"] = next(clocks)
        return build_probe(knob)

    outcome = run_probe(build, 0.2, timeout=5.0, retries=2, clock=ticking)
    assert outcome.ok is True
    assert outcome.attempts == 2
    assert outcome.digest


# ------------------------------------------------------------ probe outcomes

def test_clean_probe_carries_digest_and_extras():
    def build(knob):
        probe = build_probe(knob)
        probe.extras = lambda execution: {"rounds": len(execution.records)}
        return probe

    outcome = run_probe(build, 0.2)
    assert outcome.ok is True and outcome.violation is None
    assert outcome.digest and outcome.rounds == SCHED.total_rounds(UNITS)
    assert outcome.extras == {"rounds": SCHED.total_rounds(UNITS)}
    assert json.loads(json.dumps(outcome.as_dict())) == outcome.as_dict()


def test_violating_probe_records_the_violation_with_round_attribution():
    outcome = run_probe(lambda knob: build_probe(knob, guarded=False), 1.0)
    assert outcome.ok is False
    assert outcome.violation["invariant"] == "L1-limit"
    assert outcome.violation["event_round"] == outcome.violation["detected_round"]


def test_non_fail_fast_monitors_still_decide_the_probe():
    outcome = run_probe(
        lambda knob: build_probe(knob, guarded=False, fail_fast=False), 1.0)
    assert outcome.ok is False
    assert outcome.violation["invariant"] == "L1-limit"


# ----------------------------------------------------------- frontier search

def test_escalate_finds_the_failure_frontier_by_bisection():
    """Unguarded chaser wants ceil(knob * n) victims per unit: with n=5 and
    t=2 the L1 frontier sits where the count first exceeds 2, i.e. in
    (0.4, 0.6].  The ladder pins [0.4 clean, 0.6 violating]; bisection
    then tightens from inside that bracket."""
    result = escalate("frontier", lambda knob: build_probe(knob, guarded=False),
                      ladder=(0.2, 0.4, 0.6, 0.8, 1.0), bisect_steps=3)
    assert not result.margin_established
    assert result.first_violation["invariant"] == "L1-limit"
    assert 0.4 <= result.last_clean < result.frontier <= 0.6
    assert result.frontier - result.last_clean <= (0.6 - 0.4) / 2
    # 0.2 and 0.4 clean, 0.6 stops the ladder walk; bisection adds more
    assert len(result.probes) > 3


def test_escalate_establishes_the_margin_on_guarded_runs():
    result = escalate("margin", lambda knob: build_probe(knob, guarded=True),
                      ladder=(0.5, 1.0))
    assert result.margin_established
    assert result.frontier is None and result.first_violation is None
    assert result.last_clean == 1.0
    assert all(probe.ok and probe.digest for probe in result.probes)
    assert json.loads(json.dumps(result.as_dict())) == result.as_dict()


# -------------------------------------------------------------- resumability

def test_campaign_state_makes_reruns_free(tmp_path):
    path = tmp_path / "campaign.json"

    first = CampaignState(path)
    result_a = escalate("resume-me", lambda knob: build_probe(knob, guarded=False),
                        ladder=(0.2, 0.6, 1.0), bisect_steps=2, state=first)
    assert first.runs_executed == len(result_a.probes)

    # a second invocation replays every probe from the file: zero new runs
    second = CampaignState(path)
    result_b = escalate("resume-me", lambda knob: build_probe(knob, guarded=False),
                        ladder=(0.2, 0.6, 1.0), bisect_steps=2, state=second)
    assert second.runs_executed == 0
    assert all(probe.cached for probe in result_b.probes)
    assert result_b.as_dict() == result_a.as_dict()

    # a different campaign id shares the file but not the cache
    third = CampaignState(path)
    escalate("other-campaign", lambda knob: build_probe(knob), ladder=(0.2,),
             state=third)
    assert third.runs_executed == 1


def test_campaign_state_survives_partial_sweeps(tmp_path):
    path = tmp_path / "partial.json"
    state = CampaignState(path)
    outcome = run_probe(lambda knob: build_probe(knob), 0.3)
    state.put("partial", outcome)
    reloaded = CampaignState(path)
    cached = reloaded.get("partial", 0.3)
    assert cached is not None and cached.cached
    assert cached.digest == outcome.digest
    assert reloaded.get("partial", 0.4) is None
