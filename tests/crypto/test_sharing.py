"""Tests for Shamir sharing and Feldman VSS."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feldman import FeldmanDealer
from repro.crypto.field import PrimeField
from repro.crypto.group import named_group
from repro.crypto.shamir import Share, ShamirDealer, add_share_values, reconstruct_secret

GROUP = named_group("toy64")
FIELD = GROUP.scalar_field


def make_dealer(n=5, t=2):
    return ShamirDealer(FIELD, n, t)


def test_dealer_validation():
    with pytest.raises(ValueError):
        ShamirDealer(FIELD, 0, 0)
    with pytest.raises(ValueError):
        ShamirDealer(FIELD, 5, 5)
    with pytest.raises(ValueError):
        ShamirDealer(FIELD, 5, -1)
    with pytest.raises(ValueError):
        ShamirDealer(PrimeField(3), 5, 2)


@given(st.integers(min_value=0, max_value=FIELD.order - 1), st.integers(min_value=0))
@settings(max_examples=60)
def test_any_t_plus_1_shares_reconstruct(secret, seed):
    dealer = make_dealer()
    rng = random.Random(seed)
    _, shares = dealer.share(secret, rng)
    subset = rng.sample(shares, dealer.threshold + 1)
    assert reconstruct_secret(FIELD, subset) == secret


def test_t_shares_do_not_determine_secret():
    """With only t shares every candidate secret is equally consistent."""
    dealer = make_dealer(n=5, t=2)
    rng = random.Random(99)
    secret = 42
    _, shares = dealer.share(secret, rng)
    partial = shares[:2]  # only t shares
    # For any candidate secret s', there exists a degree-t polynomial through
    # (0, s') and the two observed shares; interpolation through these three
    # points is always well-defined, so the shares pin down nothing.
    for candidate in (0, 1, 42, 1000, FIELD.order - 1):
        points = [(0, candidate)] + [(s.x, s.value) for s in partial]
        assert FIELD.interpolate_at_zero(points) == candidate


def test_reconstruct_rejects_empty():
    with pytest.raises(ValueError):
        reconstruct_secret(FIELD, [])


def test_share_zero_reconstructs_zero():
    dealer = make_dealer()
    _, shares = dealer.share_zero(random.Random(5))
    assert reconstruct_secret(FIELD, shares[:3]) == 0


def test_add_share_values_refreshes_secret_invariant():
    """share(a) + share(0) is a fresh sharing of a — the refresh identity."""
    dealer = make_dealer()
    rng = random.Random(7)
    _, shares_a = dealer.share(1234, rng)
    _, shares_z = dealer.share_zero(rng)
    combined = [add_share_values(FIELD, a, z) for a, z in zip(shares_a, shares_z)]
    assert reconstruct_secret(FIELD, combined[:3]) == 1234
    # and the share values actually changed (overwhelming probability)
    assert any(a.value != c.value for a, c in zip(shares_a, combined))


def test_add_share_values_rejects_mismatched_x():
    with pytest.raises(ValueError):
        add_share_values(FIELD, Share(x=1, value=2), Share(x=2, value=3))
    with pytest.raises(ValueError):
        add_share_values(FIELD)


def test_feldman_shares_verify():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    dealing = dealer.deal(777, random.Random(1))
    for share in dealing.shares:
        assert dealing.commitment.verify_share(GROUP, share)


def test_feldman_detects_corrupted_share():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    dealing = dealer.deal(777, random.Random(2))
    bad = Share(x=dealing.shares[0].x, value=(dealing.shares[0].value + 1) % FIELD.order)
    assert not dealing.commitment.verify_share(GROUP, bad)


def test_feldman_public_constant_is_secret_image():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    dealing = dealer.deal(321, random.Random(3))
    assert dealing.commitment.public_constant == GROUP.base_power(321)


def test_feldman_zero_dealing_detectable():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    zero = dealer.deal_zero(random.Random(4))
    nonzero = dealer.deal(9, random.Random(4))
    assert dealer.verify_zero_dealing(zero.commitment)
    assert not dealer.verify_zero_dealing(nonzero.commitment)


def test_feldman_commitment_combine_matches_share_sum():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    rng = random.Random(6)
    d1 = dealer.deal(100, rng)
    d2 = dealer.deal(200, rng)
    combined_commitment = d1.commitment.combine(GROUP, d2.commitment)
    for s1, s2 in zip(d1.shares, d2.shares):
        summed = add_share_values(FIELD, s1, s2)
        assert combined_commitment.verify_share(GROUP, summed)
    assert combined_commitment.public_constant == GROUP.base_power(300)


def test_feldman_share_image_matches_base_power():
    dealer = FeldmanDealer(GROUP, n=4, threshold=1)
    dealing = dealer.deal(55, random.Random(8))
    for share in dealing.shares:
        assert dealing.commitment.share_image(GROUP, share.x) == GROUP.base_power(share.value)


def test_feldman_combine_rejects_mismatched_degree_bounds():
    """Combining a degree-t commitment with a shorter (or longer) vector
    must fail loudly: identity-padding a short adversarial dealing would
    silently lower the combined sharing's degree."""
    from repro.crypto.feldman import FeldmanCommitment

    t2 = FeldmanDealer(GROUP, n=5, threshold=2).deal(7, random.Random(10)).commitment
    t1 = FeldmanDealer(GROUP, n=5, threshold=1).deal(7, random.Random(11)).commitment
    with pytest.raises(ValueError, match="degree bound mismatch"):
        t2.combine(GROUP, t1)
    with pytest.raises(ValueError, match="degree bound mismatch"):
        t1.combine(GROUP, t2)
    # equal degrees still combine
    other = FeldmanDealer(GROUP, n=5, threshold=2).deal(8, random.Random(12)).commitment
    assert t2.combine(GROUP, other).degree_bound == 2
    # a truncated copy of a valid commitment is rejected, not padded
    truncated = FeldmanCommitment(elements=t2.elements[:-1])
    with pytest.raises(ValueError, match="degree bound mismatch"):
        t2.combine(GROUP, truncated)


def test_feldman_verify_zero_dealing_rejects_wrong_degree():
    """A zero constant term alone is not enough: the dealing must also
    have degree exactly t, or the refreshed sharing's reconstruction
    threshold would change."""
    from repro.crypto.feldman import FeldmanCommitment

    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    zero = dealer.deal_zero(random.Random(13)).commitment
    assert dealer.verify_zero_dealing(zero)
    padded = FeldmanCommitment(elements=zero.elements + (GROUP.identity,))
    truncated = FeldmanCommitment(elements=zero.elements[:-1])
    assert not dealer.verify_zero_dealing(padded)
    assert not dealer.verify_zero_dealing(truncated)
    # degree-t sharing of zero from a lower-threshold dealer: right length
    # but dealt by the wrong dealer parameters -> judged purely by shape
    low = FeldmanDealer(GROUP, n=5, threshold=1)
    assert not dealer.verify_zero_dealing(low.deal_zero(random.Random(14)).commitment)


def test_feldman_verify_zero_dealing_rejects_nonzero_constant():
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    nonzero = dealer.deal(1, random.Random(15)).commitment
    assert nonzero.degree_bound == dealer.threshold  # right shape ...
    assert not dealer.verify_zero_dealing(nonzero)   # ... wrong secret
