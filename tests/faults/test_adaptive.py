"""Adaptive adversary semantics: lens, strategies, merging, determinism."""

import pytest

from tests.helpers import EchoProgram
from repro.analysis.digest import transcript_digest
from repro.analysis.monitor import InvariantViolationError, RuntimeInvariantMonitor
from repro.faults import (
    AdaptiveAdversary,
    CertificateStarverStrategy,
    RecoveryChaserStrategy,
    TrafficTargeterStrategy,
    make_strategy,
)
from repro.sim.clock import Phase, Schedule
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N, T = 5, 2
UNITS = 4


def run(strategy, *, aggressiveness=0.4, guarded=True, seed=7, runner_seed=11,
        fail_fast=False, units=UNITS):
    adversary = AdaptiveAdversary(strategy, T, seed=seed, guarded=guarded,
                                  aggressiveness=aggressiveness)
    monitor = RuntimeInvariantMonitor(T, fail_fast=fail_fast)
    runner = ULRunner([EchoProgram() for _ in range(N)], adversary, SCHED,
                      s=T, seed=runner_seed,
                      observers=[adversary.lens, monitor])
    execution = runner.run(units=units)
    return adversary, monitor, execution


# ------------------------------------------------------------------- the lens

def test_lens_tracks_impairment_and_traffic_per_unit():
    adversary, _, execution = run(RecoveryChaserStrategy())
    lens = adversary.lens
    for unit in range(UNITS):
        assert lens.impaired_in_unit(unit) == execution.impaired_in_unit(unit)
    # echo chatter broadcasts every round on every link
    traffic = lens.link_traffic(1, channel="echo")
    assert len(traffic) == N * (N - 1) // 2
    assert lens.busiest_links(1)[0] in traffic
    assert set(lens.node_traffic(1)) == set(range(N))


def test_lens_never_sees_the_round_being_planned():
    """Strategy rushing bound: when unit u is planned, the lens must hold
    every round before u's first round and nothing newer."""
    seen = {}

    class Spy(RecoveryChaserStrategy):
        def plan_unit(self, ctx):
            seen[ctx.unit] = ctx.lens.rounds_seen
            return super().plan_unit(ctx)

    run(Spy())
    for unit, rounds_seen in seen.items():
        assert rounds_seen == SCHED.rounds_of_unit(unit)[0]


# ----------------------------------------------------------------- strategies

def test_recovery_chaser_rebreaks_recovered_nodes():
    adversary, _, execution = run(RecoveryChaserStrategy())
    lens = adversary.lens
    rebreaks = 0
    for unit in range(2, UNITS):
        victims = {
            crash.node for crash in adversary.plan.crashes
            if SCHED.info(crash.first_round).time_unit == unit
        }
        # the strategy puts the previous unit's impaired nodes first
        previous = lens.impaired_in_unit(unit - 1)
        if previous:
            assert victims & previous, (unit, victims, previous)
            rebreaks += 1
    assert rebreaks > 0  # the scenario actually exercised the chase


def test_traffic_targeter_drops_the_busiest_nodes_links():
    adversary, _, _ = run(TrafficTargeterStrategy(channel="echo"))
    assert adversary.plan.drops
    for unit_report in adversary.reports:
        for drop in unit_report.drops:
            assert drop.link & unit_report.victims  # incident to a charged victim
    # echo traffic is symmetric, so ranking falls back to node ids: the
    # first planned unit targets nodes 0 and 1 (want = ceil(0.4 * 5) = 2)
    assert adversary.reports[0].victims == frozenset({0, 1})


def test_certificate_starver_attacks_refresh_certificate_channels():
    adversary, _, _ = run(CertificateStarverStrategy())
    assert adversary.plan.drops
    for drop in adversary.plan.drops:
        assert drop.channels == frozenset({"disperse", "newkey"})
        first, last = SCHED.info(drop.first_round), SCHED.info(drop.last_round)
        assert first.phase is Phase.REFRESH and last.phase is Phase.REFRESH
        assert first.time_unit == last.time_unit


def test_strategies_scale_requests_with_the_knob():
    low, _, _ = run(RecoveryChaserStrategy(), aggressiveness=0.2)
    high, _, _ = run(RecoveryChaserStrategy(), aggressiveness=1.0)
    assert (sum(r.requested for r in high.reports)
            > sum(r.requested for r in low.reports))
    # the knob is excluded from the strategy seed: the low-knob request
    # set is a prefix of the high-knob one (monotone escalation)
    low_victims = [sorted(r.victims) for r in low.reports]
    high_victims = [sorted(r.victims) for r in high.reports]
    assert all(set(lo) <= set(hi) for lo, hi in zip(low_victims, high_victims))


def test_make_strategy_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("chaos-monkey")


# ----------------------------------------------------------- adversary driver

def test_plan_reports_are_published_into_the_transcript():
    adversary, _, execution = run(RecoveryChaserStrategy())
    plans = [entry for entry in execution.adversary_output
             if isinstance(entry, tuple) and entry[0] == "adaptive-plan"]
    assert len(plans) == UNITS - 1  # one per planned unit (start_unit=1)
    assert [p[1]["unit"] for p in plans] == list(range(1, UNITS))
    stats = [entry for entry in execution.adversary_output
             if isinstance(entry, tuple) and entry[0] == "adaptive-stats"]
    assert len(stats) == 1
    assert stats[0][1]["strategy"] == "recovery-chaser"
    assert stats[0][1]["approved"] == sum(r.approved for r in adversary.reports)


def test_unguarded_aggressive_run_trips_the_monitor():
    with pytest.raises(InvariantViolationError) as excinfo:
        run(RecoveryChaserStrategy(), aggressiveness=1.0, guarded=False,
            fail_fast=True)
    assert excinfo.value.violation.invariant == "L1-limit"


def test_guarded_run_with_same_strategy_stays_clean():
    _, monitor, _ = run(RecoveryChaserStrategy(), aggressiveness=1.0,
                        guarded=True, fail_fast=True)
    assert monitor.ok


# ---------------------------------------------------------------- determinism

def test_identical_seeds_reproduce_the_transcript_digest():
    digests = set()
    for _ in range(2):
        _, _, execution = run(TrafficTargeterStrategy(channel="echo"))
        digests.add(transcript_digest(execution))
    assert len(digests) == 1


def test_different_adversary_seeds_diverge():
    _, _, a = run(RecoveryChaserStrategy(), seed=1)
    _, _, b = run(RecoveryChaserStrategy(), seed=2)
    assert transcript_digest(a) != transcript_digest(b)


def test_adversary_object_is_reusable_across_runs():
    adversary = AdaptiveAdversary(RecoveryChaserStrategy(), T, seed=7,
                                  aggressiveness=0.4)

    def go():
        runner = ULRunner([EchoProgram() for _ in range(N)], adversary, SCHED,
                          s=T, seed=11, observers=[adversary.lens])
        return transcript_digest(runner.run(units=UNITS))

    assert go() == go()  # begin() resets plan, lens and guard in place
