"""Read-only memory, the paper's trust anchor (§1.1, §2.2, §6).

Each node carries a small ROM that the adversary can read but never
modify.  The protocol *code* is implicitly ROM (the simulator never lets
an adversary replace a node's program object); this class models the
*data* ROM that is written once at the end of the set-up phase — in the
paper it holds the global PDS verification key ``v_cert``.

The runner freezes every ROM when the set-up phase ends; later writes
raise :class:`RomViolation`, and the adversary API exposes only reads.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["Rom", "RomViolation"]


class RomViolation(Exception):
    """Attempted write to frozen read-only memory."""


class Rom:
    """Write-once-then-frozen key/value store."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self._frozen = False

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Make all future writes fail.  Idempotent."""
        self._frozen = True

    def write(self, key: str, value: Any) -> None:
        """Store a value; only legal before :meth:`freeze`."""
        if self._frozen:
            raise RomViolation(f"ROM is frozen; cannot write {key!r}")
        self._data[key] = value

    def read(self, key: str) -> Any:
        """Read a stored value (KeyError if absent)."""
        return self._data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())
