#!/usr/bin/env python3
"""Compiling an existing protocol with the authenticator Λ (§5).

A small replicated configuration service written for *authenticated*
links: a leader pushes config versions, replicas acknowledge and apply
the highest version they have seen.  The protocol itself contains **no
cryptography whatsoever** — it trusts its channel.

``compile_protocol`` (the paper's Λ) turns it into a protocol that runs
over fully adversarial links with recurring break-ins: every message is
CERTIFY'd, DISPERSE'd and VER-CERT'd under per-unit keys that the nodes
re-certify with the threshold scheme at every refreshment phase.

The demo runs the compiled service while an adversary tampers with links
and injects fake "config version 999" updates in the leader's name — the
replicas never apply them.

Run:  python examples/replicated_config_service.py
"""

from repro.core.authenticator import compile_protocol
from repro.core.uls import build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import Adversary, faithful_delivery
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

N, T, UNITS, LEADER, SEED = 5, 2, 3, 0, 13


class ConfigService(NodeProgram):
    """The AL-model protocol π: leader pushes, replicas apply + ack."""

    def __init__(self):
        super().__init__()
        self.version = 0
        self.config = {}
        self.acks: dict[int, set[int]] = {}

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            if envelope.channel == "config-push":
                version, payload = envelope.payload
                if envelope.sender == LEADER and version > self.version:
                    self.version = version
                    self.config = dict(payload)
                    ctx.output(("applied", version))
                    ctx.send(LEADER, "config-ack", version)
            elif envelope.channel == "config-ack" and self.node_id == LEADER:
                self.acks.setdefault(envelope.payload, set()).add(envelope.sender)

        if self.node_id == LEADER and ctx.info.phase is Phase.NORMAL \
                and ctx.info.index_in_phase == 0:
            self.version += 1
            payload = (("timeout_ms", 100 * self.version), ("unit", ctx.info.time_unit))
            ctx.broadcast("config-push", (self.version, payload))
            self.config = dict(payload)
            ctx.output(("applied", self.version))


class TamperAndInject(Adversary):
    """Drops a fifth of all traffic and injects fake config pushes
    claiming to come from the leader (plain envelopes — which the
    compiled protocol never even sees, since they carry no valid
    CERTIFY wrapper)."""

    def deliver(self, api, info, traffic):
        plan = {i: [] for i in range(api.n)}
        for index, envelope in enumerate(traffic):
            if index % 5 == 0 and envelope.sender != LEADER:
                continue  # dropped
            plan[envelope.receiver].append(envelope)
        for replica in range(1, api.n):
            plan[replica].append(api.forge_envelope(
                LEADER, replica, "config-push",
                (999, (("timeout_ms", 0), ("pwned", True)))))
        return plan


def main() -> None:
    group = named_group("toy64")
    scheme = SchnorrScheme(group)
    public, states, keys = build_uls_states(group, scheme, N, T, seed=SEED)
    inners = [ConfigService() for _ in range(N)]
    programs = compile_protocol(inners, states, scheme, keys)
    runner = ULRunner(programs, TamperAndInject(), uls_schedule(), s=T, seed=SEED)

    print("running the compiled config service under link tampering and")
    print("forged leader pushes for", UNITS, "time units...\n")
    execution = runner.run(units=UNITS)

    print(f"{'node':<6} {'applied version':<16} {'config':<40}")
    for i, inner in enumerate(inners):
        print(f"{i:<6} {inner.version:<16} {str(inner.config):<40}")
        assert inner.version < 999, "forged config must never be applied"
        assert "pwned" not in inner.config
    versions = {inner.version for inner in inners}
    assert max(versions) >= UNITS, "genuine pushes kept flowing"
    print("\nOK: replicas tracked the genuine leader; every forged push "
          "was rejected by VER-CERT before π ever saw it.")


if __name__ == "__main__":
    main()
