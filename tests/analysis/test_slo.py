"""Recovery-SLO telemetry, anchored to the E7 recovery contract.

The headline test reproduces the ``bench_e7_recovery`` scenario — a node
broken and state-corrupted during unit 1 recovers everything at unit 2's
refreshment phase — and asserts that the SLO layer and
:func:`repro.analysis.metrics.recovery_units` tell the same story from
their two vantage points: ``recovery_units`` says *which* unit re-admitted
the node (2), the SLO says *how long* that took (1 unit).
"""

import json

from tests.helpers import EchoProgram
from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.analysis.metrics import recovery_units
from repro.analysis.monitor import RuntimeInvariantMonitor
from repro.analysis.slo import RecoverySloObserver
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.faults import CrashFault, FaultInjectionAdversary, FaultPlan
from repro.sim.clock import Schedule
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
UNITS = 3


def run_e7_scenario(victim=0, seed=3):
    """The bench_e7_recovery shape: break + corrupt one node in unit 1."""
    plan = BreakinPlan(victims={1: frozenset({victim})}, corrupt_memory=True)
    adversary = MobileBreakInAdversary(plan)
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    schedule = uls_schedule()
    monitor = RuntimeInvariantMonitor(T, fail_fast=True)
    slo = RecoverySloObserver()
    runner = ULRunner(programs, adversary, schedule, s=T, seed=seed,
                      observers=[monitor, slo])
    execution = runner.run(units=UNITS)
    return execution, programs, slo, monitor


def test_slo_agrees_with_the_e7_recovery_contract():
    victim = 0
    execution, programs, slo, monitor = run_e7_scenario(victim)
    assert monitor.ok

    # metrics: the victim re-entered during unit 2's refreshment phase
    assert recovery_units(execution, victim) == [2]
    for other in range(1, N):
        assert recovery_units(execution, other) == []

    # SLO: down in unit 1, back in unit 2 => time-to-recovery of 1 unit
    assert slo.ttr_units(victim) == [1]
    (span,) = [s for s in slo.spans if s["node"] == victim]
    assert span["start_unit"] == 1 and span["end_unit"] == 2
    assert not slo.unrecovered

    # the contract includes silence: recovery needs no operator
    assert slo.alerts == []
    report = slo.report()
    assert report["ttr_units_max"] == 1
    assert report["signing_availability"]["2"] == 1.0  # machinery restored


def test_slo_report_is_json_ready():
    _, _, slo, _ = run_e7_scenario()
    report = slo.report()
    assert json.loads(json.dumps(report)) == report


def test_slo_spans_on_chatter_crash():
    """A plain crash fault over echo chatter: one span per victim, closed
    at the next unit's refreshment phase."""
    schedule = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
    first = schedule.first_normal_round(1)
    plan = FaultPlan(seed=1, crashes=(CrashFault(2, first + 1, first + 4),))
    slo = RecoverySloObserver()
    runner = ULRunner([EchoProgram() for _ in range(N)],
                      FaultInjectionAdversary(plan), schedule, s=T, seed=5,
                      observers=[slo])
    runner.run(units=UNITS)
    assert slo.ttr_units(2) == [1]
    assert slo.ttr_units() == [1]            # nobody else was touched
    (span,) = slo.spans
    assert span["start_round"] == first + 1
    assert span["ttr_rounds"] == schedule.first_normal_round(2) - 1 - (first + 1)


def test_unrecovered_nodes_are_reported_at_run_end():
    """A crash in the final unit leaves an open span: the node never sees
    another refreshment phase, so the SLO must report it unrecovered."""
    schedule = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
    first = schedule.first_normal_round(UNITS - 1)
    plan = FaultPlan(seed=1, crashes=(CrashFault(1, first, first + 3),))
    slo = RecoverySloObserver()
    runner = ULRunner([EchoProgram() for _ in range(N)],
                      FaultInjectionAdversary(plan), schedule, s=T, seed=5,
                      observers=[slo])
    runner.run(units=UNITS)
    assert slo.spans == []
    (open_span,) = slo.unrecovered
    assert open_span["node"] == 1 and open_span["ttr_units"] is None
    assert slo.report()["unrecovered"]


# ------------------------------------------------- synthetic event accounting

class _Info:
    def __init__(self, round_, unit):
        self.round = round_
        self.time_unit = unit


class _Record:
    def __init__(self, round_, unit, n, impaired=()):
        self.info = _Info(round_, unit)
        self.broken = frozenset()
        self.operational = frozenset(range(n)) - frozenset(impaired)


class _Execution:
    def __init__(self, n):
        self.n = n
        self.node_outputs = [[] for _ in range(n)]
        self.records = []


def test_alert_latency_and_degraded_dwell_bookkeeping():
    """Drive the observer by hand: alert latency counts from the start of
    the open impairment span; degraded dwell counts to re-entry (and is 0
    for a node that never left the operational set)."""
    from repro.sim.node import ALERT

    n = 3
    execution = _Execution(n)
    slo = RecoverySloObserver()

    slo.on_round(execution, _Record(0, 0, n))                 # all fine
    slo.on_round(execution, _Record(1, 0, n, impaired=[1]))   # span opens at 1
    execution.node_outputs[1].append((3, ("degraded", {"reason": "no-certificate",
                                                       "unit": 0})))
    execution.node_outputs[1].append((3, ALERT))
    execution.node_outputs[2].append((3, ("degraded", {"reason": "certificate-late",
                                                       "unit": 0})))
    slo.on_round(execution, _Record(3, 0, n, impaired=[1]))
    slo.on_round(execution, _Record(6, 1, n))                 # node 1 back at 6
    slo.on_run_end(execution)

    (alert,) = slo.alerts
    assert alert == {"node": 1, "round": 3, "unit": 0, "latency_rounds": 2}
    dwells = {d["node"]: d["dwell_rounds"] for d in slo.dwells}
    assert dwells == {1: 3, 2: 0}  # node 2 degraded but never disconnected
    assert slo.ttr_units(1) == [1]
    availability = slo.signing_availability()
    assert availability[0] == 1.0 - 1 / n  # only no-certificate counts
    assert availability[1] == 1.0
    assert slo.report()["signing_availability_min"] == 1.0 - 1 / n
