"""Tests for echo broadcast over the direct transport."""

from repro.agreement.echo import BOTTOM, EchoBroadcast
from repro.pds.transport import DirectTransport
from repro.sim.adversary_api import Adversary, PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ALRunner, ULRunner

SCHED = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=10)


class EchoHost(NodeProgram):
    """Drives an EchoBroadcast instance; broadcasts per a static schedule
    {(round, tag): value} applying only to this node."""

    def __init__(self, n, t, schedule=None):
        super().__init__()
        self.transport = DirectTransport()
        self.ebc = EchoBroadcast(self.transport, n, t)
        self.schedule = schedule or {}
        self.delivered = {}

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.transport.begin_round(ctx, inbox)
        self.ebc.on_round(ctx)
        for round_number, tag in list(self.schedule):
            if round_number == ctx.info.round:
                self.ebc.broadcast(ctx, tag, self.schedule.pop((round_number, tag)))
        for broadcaster, tag, value in self.ebc.deliveries():
            self.delivered[(broadcaster, tag)] = value
            ctx.output(("ebc", broadcaster, tag, value))


def run(n, t, schedules, adversary=None, seed=0, model="AL", s=None):
    programs = []
    for i in range(n):
        programs.append(EchoHost(n, t, schedule=dict(schedules.get(i, {}))))
    if model == "AL":
        runner = ALRunner(programs, adversary or PassiveAdversary(), SCHED, seed=seed)
    else:
        runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED,
                          s=s or t, seed=seed)
    execution = runner.run(units=1)
    return execution, runner


def test_honest_broadcast_delivered_to_all():
    execution, runner = run(4, 1, {0: {(2, "x"): ("payload", 7)}})
    for node in runner.nodes:
        assert node.program.delivered[(0, "x")] == ("payload", 7)


def test_delivery_timing_is_two_delays():
    _, runner = run(4, 1, {0: {(2, "x"): "v"}})
    host = runner.nodes[1].program
    assert host.delivered  # delivered during the run
    # deliveries happen at start + 2*delay = round 4
    execution_outputs = [
        (r, e) for r, e in runner.nodes[1].outputs if e[0] == "ebc"
    ]
    assert execution_outputs[0][0] == 2 + 2 * host.transport.delay


def test_parallel_broadcasts_from_different_nodes():
    schedules = {
        0: {(2, "a"): "from-0"},
        1: {(2, "b"): "from-1"},
        2: {(3, "c"): "from-2"},
    }
    _, runner = run(5, 2, schedules)
    for node in runner.nodes:
        assert node.program.delivered[(0, "a")] == "from-0"
        assert node.program.delivered[(1, "b")] == "from-1"
        assert node.program.delivered[(2, "c")] == "from-2"


def test_value_message_must_come_from_broadcaster():
    """An injected ebc-val claiming broadcaster b but sent by someone else
    is ignored (over the direct transport the claimed sender IS the
    envelope sender, which the adversary controls in the UL model)."""

    class FakeValue(Adversary):
        def deliver(self, api, info, traffic):
            from repro.sim.adversary_api import faithful_delivery

            plan = faithful_delivery(traffic, api.n)
            if info.round == 2:
                # node 3 delivers a value for a session "owned" by node 0,
                # but the envelope's sender is 3 -> must be dropped
                plan[1].append(api.forge_envelope(3, 1, "direct",
                                                  ("ebc-val", 0, "fake", "evil")))
            return plan

    execution, runner = run(4, 1, {}, adversary=FakeValue(), model="UL", s=2)
    assert (0, "fake") not in runner.nodes[1].program.delivered or \
        runner.nodes[1].program.delivered[(0, "fake")] == BOTTOM


def test_equivocating_broadcaster_consistent_at_n_3t_plus_1():
    """AL model, n = 7 >= 3t + 1 with t = 2: a byzantine broadcaster that
    sends different values to different nodes cannot make two honest nodes
    deliver different non-⊥ values (quorum intersection exceeds t)."""

    class EquivocatingBroadcaster(Adversary):
        def on_round(self, api, info, traffic):
            if info.round == 2:
                api.break_into(0)
                for receiver in (1, 2, 3):
                    api.send_as(0, receiver, "direct", ("ebc-val", 0, "x", "EVIL"))
                    api.send_as(0, receiver, "direct", ("ebc-echo", 0, "x", "EVIL"))
                for receiver in (4, 5, 6):
                    api.send_as(0, receiver, "direct", ("ebc-val", 0, "x", "GOOD"))
                    api.send_as(0, receiver, "direct", ("ebc-echo", 0, "x", "GOOD"))

    _, runner = run(7, 2, {}, adversary=EquivocatingBroadcaster())
    values = [runner.nodes[i].program.delivered.get((0, "x")) for i in range(1, 7)]
    non_bottom = {repr(v) for v in values if v is not None and v != BOTTOM}
    assert len(non_bottom) <= 1


def test_equivocation_splits_at_n_2t_plus_1():
    """AL model, n = 5 = 2t + 1 with t = 2: the same attack CAN split the
    honest nodes — demonstrating why the paper's PARTIAL-AGREEMENT needs
    its signed second-round cross-check at this resilience."""

    class EquivocatingBroadcaster(Adversary):
        def on_round(self, api, info, traffic):
            if info.round == 2:
                api.break_into(0)
                for receiver in (1, 2):
                    api.send_as(0, receiver, "direct", ("ebc-val", 0, "x", "EVIL"))
                    api.send_as(0, receiver, "direct", ("ebc-echo", 0, "x", "EVIL"))
                for receiver in (3, 4):
                    api.send_as(0, receiver, "direct", ("ebc-val", 0, "x", "GOOD"))
                    api.send_as(0, receiver, "direct", ("ebc-echo", 0, "x", "GOOD"))

    _, runner = run(5, 2, {}, adversary=EquivocatingBroadcaster())
    values = [runner.nodes[i].program.delivered.get((0, "x")) for i in range(1, 5)]
    non_bottom = {repr(v) for v in values if v is not None and v != BOTTOM}
    assert len(non_bottom) == 2  # the split actually happens


def test_duplicate_broadcast_tag_rejected():
    import pytest

    _, runner = run(4, 1, {0: {(2, "x"): "v"}})
    # direct re-use of the same tag must raise
    host = runner.nodes[0].program
    ctx = NodeContext(0, 4, SCHED.info(9), None, runner.nodes[0].rom, [])
    with pytest.raises(ValueError):
        host.ebc.broadcast(ctx, "x", "again")
