"""Thin setup.py shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (which need bdist_wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
