"""The §1.3 strawman: "sign the new key with the old key" — and its attack.

The paper motivates PDS certificates by first knocking down the natural
approach: let each node simply announce its fresh per-unit key signed with
the previous unit's key, chaining trust unit to unit.  This module
implements that strawman faithfully so the E5 experiment can demonstrate
the attack the paper describes:

    "consider a node N that is just recovering from a break-in.  N's old
    signing key is compromised.  Thus, the adversary can successfully
    impersonate N by forging N's signature and sending a fake new
    verification key in the name of N.  Furthermore, N will not be aware
    of this impersonation."

:class:`NaiveProgram` is the scheme; :class:`NaiveImpersonator` is the
attack payload for :class:`~repro.adversary.strategies.CutOffAdversary`:
with one stolen key it hijacks the victim's entire future key chain,
silently and forever.  Run the same adversary against ULS/Λ and it gets
one stale unit at most, plus an alert (see ``benchmarks/bench_e5``).
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.hashing import encode_for_hash
from repro.crypto.signature import SignatureScheme
from repro.sim.adversary_api import AdversaryApi
from repro.sim.clock import Phase, RoundInfo
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram

__all__ = ["NaiveProgram", "NaiveImpersonator", "NAIVE_APP", "NAIVE_REKEY"]

NAIVE_APP = "naive-app"
NAIVE_REKEY = "naive-rekey"
_KEY_CHANNEL = "naive-key"


def _rekey_bytes(scheme: SignatureScheme, node: int, unit: int, new_key: Any) -> bytes:
    return encode_for_hash(("naive-rekey", node, unit, scheme.key_repr(new_key)))


def _message_bytes(node: int, dst: int, unit: int, round_w: int, message: Any) -> bytes:
    return encode_for_hash(("naive-msg", node, dst, unit, round_w, message))


class NaiveProgram(NodeProgram):
    """Chained per-unit keys without distributed certificates.

    External inputs ``("send", dst, m)`` send authenticated application
    messages; outputs mirror the Λ convention (``app-sent``/``app-recv``)
    so :mod:`repro.core.views` analyses both schemes identically.
    """

    def __init__(self, scheme: SignatureScheme) -> None:
        super().__init__()
        self.scheme = scheme
        self.keypair = None
        self.unit = 0
        self.peer_keys: dict[int, Any] = {}  # ordinary RAM: corruptible
        self._rekeyed: dict[int, set[int]] = {}  # unit -> peers already re-keyed

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if self.keypair is None:
                self.keypair = self.scheme.generate(ctx.rng)
                ctx.broadcast(_KEY_CHANNEL, ("key", self.keypair.verify_key))
            for envelope in inbox:
                if envelope.channel == _KEY_CHANNEL:
                    self.peer_keys.setdefault(envelope.sender, envelope.payload[1])
            return

        # learn keys still in flight from the final set-up round
        for envelope in inbox:
            if envelope.channel == _KEY_CHANNEL:
                self.peer_keys.setdefault(envelope.sender, envelope.payload[1])

        if ctx.info.phase is Phase.REFRESH and ctx.info.is_phase_start:
            self._rekey(ctx)

        self._process_rekeys(ctx, inbox)
        self._process_app(ctx, inbox)

        for value in ctx.external_inputs:
            if isinstance(value, tuple) and len(value) == 3 and value[0] == "send":
                self._app_send(ctx, value[1], value[2])

    # -- key chaining ----------------------------------------------------------

    def _rekey(self, ctx: NodeContext) -> None:
        new_pair = self.scheme.generate(ctx.rng)
        unit = ctx.info.time_unit
        signature = self.scheme.sign(
            self.keypair.signing_key,
            _rekey_bytes(self.scheme, self.node_id, unit, new_pair.verify_key),
        )
        ctx.broadcast(NAIVE_REKEY, ("rekey", unit, new_pair.verify_key, signature))
        self.keypair = new_pair
        self.unit = unit

    def _process_rekeys(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            if envelope.channel != NAIVE_REKEY:
                continue
            payload = envelope.payload
            if not (isinstance(payload, tuple) and len(payload) == 4 and payload[0] == "rekey"):
                continue
            _, unit, new_key, signature = payload
            sender = envelope.sender
            if sender in self._rekeyed.setdefault(unit, set()):
                continue  # first valid rekey per unit wins
            old_key = self.peer_keys.get(sender)
            if old_key is None:
                continue
            try:
                body = _rekey_bytes(self.scheme, sender, unit, new_key)
            except TypeError:
                continue
            if self.scheme.verify(old_key, body, signature):
                self.peer_keys[sender] = new_key
                self._rekeyed[unit].add(sender)

    # -- application traffic -----------------------------------------------------

    def _app_send(self, ctx: NodeContext, receiver: int, message: Any) -> None:
        unit = ctx.info.time_unit
        signature = self.scheme.sign(
            self.keypair.signing_key,
            _message_bytes(self.node_id, receiver, unit, ctx.info.round, message),
        )
        ctx.send(receiver, NAIVE_APP, ("msg", unit, ctx.info.round, message, signature))
        ctx.output(("app-sent", receiver, NAIVE_APP, message))

    def _process_app(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            if envelope.channel != NAIVE_APP:
                continue
            payload = envelope.payload
            if not (isinstance(payload, tuple) and len(payload) == 5 and payload[0] == "msg"):
                continue
            _, unit, round_w, message, signature = payload
            if round_w != ctx.info.round - 1:
                continue  # stale or replayed
            key = self.peer_keys.get(envelope.sender)
            if key is None:
                continue
            try:
                body = _message_bytes(envelope.sender, ctx.node_id, unit, round_w, message)
            except TypeError:
                continue
            if self.scheme.verify(key, body, signature):
                ctx.output(("app-recv", envelope.sender, NAIVE_APP, message))


class NaiveImpersonator:
    """The attack: hijack the victim's key chain with one stolen key.

    Plug into :class:`~repro.adversary.strategies.CutOffAdversary` as the
    ``impersonator`` callback.  At each refreshment phase it issues a
    rekey for the victim signed with the key *it* controls (initially the
    stolen one), and during normal rounds it sends ``("imp", unit)``
    application messages in the victim's name to every node.
    """

    def __init__(self, scheme: SignatureScheme, victim: int, rng_seed: int = 0) -> None:
        self.scheme = scheme
        self.victim = victim
        self.rng = random.Random(rng_seed)
        self.chain_key = None  # the signing keypair we currently control
        self.injected: list[tuple[int, Any]] = []

    def __call__(self, stolen_program: Any, api: AdversaryApi, info: RoundInfo) -> list[Envelope]:
        if self.chain_key is None:
            self.chain_key = stolen_program.keypair  # stolen at break-in time
        forged: list[Envelope] = []
        if info.phase is Phase.REFRESH and info.is_phase_start:
            new_pair = self.scheme.generate(self.rng)
            unit = info.time_unit
            signature = self.scheme.sign(
                self.chain_key.signing_key,
                _rekey_bytes(self.scheme, self.victim, unit, new_pair.verify_key),
            )
            payload = ("rekey", unit, new_pair.verify_key, signature)
            for receiver in range(api.n):
                if receiver != self.victim:
                    forged.append(api.forge_envelope(self.victim, receiver, NAIVE_REKEY, payload))
            self.chain_key = new_pair
        elif info.phase is Phase.NORMAL:
            message = ("imp", info.time_unit)
            for receiver in range(api.n):
                if receiver == self.victim:
                    continue
                signature = self.scheme.sign(
                    self.chain_key.signing_key,
                    _message_bytes(self.victim, receiver, info.time_unit, info.round, message),
                )
                payload = ("msg", info.time_unit, info.round, message, signature)
                forged.append(api.forge_envelope(self.victim, receiver, NAIVE_APP, payload))
            self.injected.append((info.round, message))
        return forged
