"""Echo broadcast: weak consistent broadcast over any transport.

The AL model gives authenticated reliable *point-to-point* links but no
broadcast channel (§1.4); distributed-signature sub-protocols need their
dealings and control messages to be *consistent* across receivers.  This
module provides the standard two-step echo ("crusader") broadcast:

1. the broadcaster sends its value to everyone;
2. every receiver echoes the value it received to everyone;
3. a receiver delivers value ``v`` if at least ``n - t`` distinct nodes
   (its own echo included) echoed ``v``; otherwise it delivers ``⊥``.

Guarantees over authenticated reliable links with at most ``t`` corrupted
nodes:

- *validity* (``n >= 2t + 1``): an honest, well-connected broadcaster's
  value is delivered by every honest node;
- *consistency* (``n >= 3t + 1``): no two honest nodes deliver different
  non-⊥ values.  Two values with ``n - t`` echoes each share at least
  ``n - 2t > t`` echoers, hence an *honest* one — who echoes only once.
  With only ``n = 2t + 1`` the quorums may intersect solely in corrupted
  nodes, so echo broadcast alone cannot give consistency; this is exactly
  why the paper's PARTIAL-AGREEMENT (Fig. 5) adds a second, *signed*
  cross-check round — equivocation by certified senders becomes provable
  and both conflicting values are discarded (Lemma 16).  Full agreement at
  any ``t < n`` needs signature chains
  (:mod:`repro.agreement.dolev_strong`).

An equivocating broadcaster may always cause some honest nodes to deliver
``⊥`` rather than a value.

Sessions are keyed ``(broadcaster, tag)``; a tag is any hashable value
(protocols use e.g. ``("tsig-deal", session_id)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.pds.transport import Transport
from repro.sim.node import NodeContext

__all__ = ["EchoBroadcast", "BOTTOM"]

#: the distinguished "no consistent value" output
BOTTOM = ("<bottom>",)


@dataclass
class _Session:
    start_round: int
    direct_value: Any = None
    have_direct: bool = False
    echoes: dict[int, Any] = field(default_factory=dict)  # echoer -> value
    delivered: bool = False


class EchoBroadcast:
    """Multiplexes echo-broadcast sessions over a :class:`Transport`.

    Owner contract per round, after ``transport.begin_round``:
    call :meth:`on_round` exactly once, then optionally
    :meth:`broadcast`; read :meth:`deliveries`.
    """

    def __init__(self, transport: Transport, n: int, t: int) -> None:
        self.transport = transport
        self.n = n
        self.t = t
        self._sessions: dict[tuple[int, Hashable], _Session] = {}
        self._deliveries: list[tuple[int, Hashable, Any]] = []  # (broadcaster, tag, value)

    # -- sending ---------------------------------------------------------

    def broadcast(self, ctx: NodeContext, tag: Hashable, value: Any) -> None:
        """Start a session as the broadcaster."""
        key = (ctx.node_id, tag)
        if key in self._sessions:
            raise ValueError(f"duplicate broadcast for tag {tag!r}")
        session = _Session(start_round=ctx.info.round)
        session.direct_value = value
        session.have_direct = True
        session.echoes[ctx.node_id] = value
        self._sessions[key] = session
        self.transport.send_to_all(ctx, ("ebc-val", ctx.node_id, tag, value))
        # the broadcaster also echoes its own value so receivers can count it
        self.transport.send_to_all(ctx, ("ebc-echo", ctx.node_id, tag, value))

    # -- per-round processing -------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        """Process this round's accepted transport messages and complete
        any sessions whose echo-collection window has closed."""
        self._deliveries = []
        for accepted in self.transport.accepted_view():
            body = accepted.body
            if not isinstance(body, tuple) or len(body) != 4:
                continue
            kind, broadcaster, tag, value = body
            if kind == "ebc-val":
                if broadcaster != accepted.sender:
                    continue  # value messages must come from the broadcaster
                self._on_value(ctx, broadcaster, tag, value)
            elif kind == "ebc-echo":
                self._on_echo(ctx, accepted.sender, broadcaster, tag, value)

        delay = self.transport.delay
        for (broadcaster, tag), session in self._sessions.items():
            if session.delivered:
                continue
            # echoes triggered at start+delay arrive by start+2*delay
            if ctx.info.round >= session.start_round + 2 * delay:
                session.delivered = True
                self._deliveries.append((broadcaster, tag, self._decide(session)))

    def deliveries(self) -> list[tuple[int, Hashable, Any]]:
        """Sessions completed this round: ``(broadcaster, tag, value-or-BOTTOM)``."""
        return list(self._deliveries)

    # -- internals ---------------------------------------------------------

    def _session(self, key: tuple[int, Hashable], ctx: NodeContext) -> _Session:
        if key not in self._sessions:
            # a receiver first learns of the session when traffic arrives,
            # one transport delay after it started
            self._sessions[key] = _Session(start_round=ctx.info.round - self.transport.delay)
        return self._sessions[key]

    def _on_value(self, ctx: NodeContext, broadcaster: int, tag: Hashable, value: Any) -> None:
        session = self._session((broadcaster, tag), ctx)
        if session.have_direct:
            return  # first value wins; equivocation surfaces via echoes
        session.have_direct = True
        session.direct_value = value
        session.echoes[ctx.node_id] = value
        self.transport.send_to_all(ctx, ("ebc-echo", broadcaster, tag, value))

    def _on_echo(
        self, ctx: NodeContext, echoer: int, broadcaster: int, tag: Hashable, value: Any
    ) -> None:
        session = self._session((broadcaster, tag), ctx)
        # one echo per node per session; first one counts
        session.echoes.setdefault(echoer, value)

    def _decide(self, session: _Session) -> Any:
        counts: dict[Any, int] = {}
        for value in session.echoes.values():
            counts[_key(value)] = counts.get(_key(value), 0) + 1
        for value in session.echoes.values():
            if counts[_key(value)] >= self.n - self.t:
                return value
        return BOTTOM


def _key(value: Any) -> Any:
    """Hashable stand-in for possibly-unhashable echoed values."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
