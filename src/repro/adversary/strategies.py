"""Concrete adversary strategies used by the tests and experiments.

Each class implements one archetypal attack from the paper:

- :class:`MobileBreakInAdversary` — the proactive threat model itself
  (§1, Def. 3): break into up to ``t`` nodes per time unit, a different
  set every unit, optionally corrupting their state on the way out.
- :class:`LinkAttackAdversary` — per-link dropping/modification schedules
  (Def. 4's unreliable links).
- :class:`CutOffAdversary` — the §1.1 impersonation attack: isolate a
  recently-broken node and impersonate it to the rest of the network with
  its stolen keys.
- :class:`InjectionFloodAdversary` — the §5.1 "almost (t,t)-limited"
  adversary: obeys all break-in/link limits but injects arbitrarily many
  bogus messages (used against URfr's clear-text key exchange).
- :class:`ReplayAdversary` — re-delivers previously recorded messages
  (excluded by Def. 4's "another message" clause; VER-CERT's ``(u, w)``
  binding must reject them).
- :class:`ComposedAdversary` — runs several strategies at once.

All strategies are deterministic given the run seed (they draw randomness
only from the rng the runner hands them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.adversary_api import Adversary, AdversaryApi, faithful_delivery
from repro.sim.clock import Phase, RoundInfo, Schedule
from repro.sim.messages import Envelope

__all__ = [
    "BreakinPlan",
    "MobileBreakInAdversary",
    "LinkAttackAdversary",
    "CutOffAdversary",
    "InjectionFloodAdversary",
    "ReplayAdversary",
    "ComposedAdversary",
]


@dataclass(frozen=True)
class BreakinPlan:
    """Which nodes are broken during which time units.

    ``victims[u]`` is the set of nodes held broken during (part of) unit
    ``u``.  With ``during_refresh=False`` (default) break-ins start after
    the unit's refreshment phase and end before the next one begins, so
    the victims can take part in refreshes — the standard proactive
    recovery scenario.  With ``during_refresh=True`` the break-in covers
    the unit's own refreshment phase as well.
    """

    victims: dict[int, frozenset[int]]
    during_refresh: bool = False
    corrupt_memory: bool = False

    @classmethod
    def rotating(
        cls,
        n: int,
        t: int,
        units: int,
        rng: random.Random,
        start_unit: int = 1,
        **kwargs: Any,
    ) -> "BreakinPlan":
        """Random mobile plan: ``t`` fresh victims per unit from ``start_unit``."""
        victims = {
            unit: frozenset(rng.sample(range(n), t))
            for unit in range(start_unit, units)
        }
        return cls(victims=victims, **kwargs)

    def max_victims_per_unit(self) -> int:
        return max((len(v) for v in self.victims.values()), default=0)


class MobileBreakInAdversary(Adversary):
    """Executes a :class:`BreakinPlan`; works in both the AL and UL models.

    While inside a node it records the node's state (``stolen`` maps
    ``(unit, node) -> snapshot callback result``); if the plan says so, it
    corrupts the node's mutable state on entry using ``corruptor``.
    """

    def __init__(
        self,
        plan: BreakinPlan,
        corruptor: Callable[[Any, random.Random], None] | None = None,
        state_snapshot: Callable[[Any], Any] | None = None,
    ) -> None:
        self.plan = plan
        self.corruptor = corruptor
        self.state_snapshot = state_snapshot
        self.stolen: dict[tuple[int, int], Any] = {}
        self._holding: set[int] = set()

    def _want_broken(self, info: RoundInfo) -> frozenset[int]:
        wanted = self.plan.victims.get(info.time_unit, frozenset())
        if not self.plan.during_refresh:
            if info.phase is Phase.REFRESH:
                return frozenset()
            if info.phase is Phase.NORMAL and info.is_phase_end:
                # release one round before the next refreshment phase, so
                # the victim's program steps through the entire phase and
                # can run the recovery protocol (Def. 5.3 likewise demands
                # the node be unbroken throughout the phase)
                return frozenset()
        return wanted

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic) -> None:
        wanted = self._want_broken(info)
        for node_id in sorted(self._holding - set(wanted)):
            api.leave(node_id)
            self._holding.discard(node_id)
        for node_id in sorted(set(wanted) - self._holding):
            program = api.break_into(node_id)
            self._holding.add(node_id)
            if self.state_snapshot is not None:
                self.stolen[(info.time_unit, node_id)] = self.state_snapshot(program)
            if self.plan.corrupt_memory and self.corruptor is not None:
                self.corruptor(program, api.rng)


@dataclass(frozen=True)
class LinkFault:
    """One scheduled link fault: drop or transform traffic on a link
    during an inclusive round interval."""

    link: frozenset[int]
    first_round: int
    last_round: int
    transform: Callable[[Envelope], Envelope | None] | None = None  # None = drop

    def active(self, round_number: int) -> bool:
        return self.first_round <= round_number <= self.last_round


class LinkAttackAdversary(Adversary):
    """UL adversary executing a static schedule of link faults."""

    def __init__(self, faults: list[LinkFault]) -> None:
        self.faults = faults

    def deliver(self, api, info, traffic):
        plan: dict[int, list[Envelope]] = {i: [] for i in range(api.n)}
        for envelope in traffic:
            fault = self._fault_for(envelope, info.round)
            if fault is None:
                plan[envelope.receiver].append(envelope)
                continue
            if fault.transform is None:
                continue  # dropped
            mutated = fault.transform(envelope)
            if mutated is not None:
                plan[mutated.receiver].append(mutated)
        return plan

    def _fault_for(self, envelope: Envelope, round_number: int) -> LinkFault | None:
        link = frozenset((envelope.sender, envelope.receiver))
        for fault in self.faults:
            if fault.link == link and fault.active(round_number):
                return fault
        return None


class CutOffAdversary(Adversary):
    """The §1.1 impersonation attack.

    During time unit ``break_unit`` the adversary breaks into the victim
    and steals its state.  From the next unit on it (1) cuts the victim
    off from every other node — no traffic crosses the victim's links in
    either direction — and (2) impersonates the victim using the stolen
    state: a scheme-specific ``impersonator`` callback fabricates the
    envelopes to inject each round (e.g. re-signing with stolen keys).

    Against the naive strawman of §1.3 this succeeds silently; against
    ULS/Λ the victim cannot obtain a certificate while cut off, so it
    alerts (Prop. 31), and the forged certificates fail VER-CERT.
    """

    def __init__(
        self,
        victim: int,
        break_unit: int,
        impersonator: Callable[[Any, AdversaryApi, RoundInfo], list[Envelope]] | None = None,
        cutoff_units: int | None = None,
    ) -> None:
        self.victim = victim
        self.break_unit = break_unit
        self.impersonator = impersonator
        self.cutoff_units = cutoff_units  # None = forever
        self.stolen_program: Any = None
        self._inside = False

    def _cutting_off(self, info: RoundInfo) -> bool:
        if info.time_unit <= self.break_unit:
            return False
        if self.cutoff_units is None:
            return True
        return info.time_unit <= self.break_unit + self.cutoff_units

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic) -> None:
        if info.time_unit == self.break_unit and info.phase is Phase.NORMAL:
            if not self._inside:
                self.stolen_program = api.break_into(self.victim)
                self._inside = True
        elif self._inside:
            api.leave(self.victim)
            self._inside = False

    def deliver(self, api, info, traffic):
        if not self._cutting_off(info):
            return faithful_delivery(traffic, api.n)
        plan: dict[int, list[Envelope]] = {i: [] for i in range(api.n)}
        for envelope in traffic:
            if self.victim in (envelope.sender, envelope.receiver):
                continue  # the victim is cut off in both directions
            plan[envelope.receiver].append(envelope)
        if self.impersonator is not None and self.stolen_program is not None:
            for forged in self.impersonator(self.stolen_program, api, info):
                if forged.receiver != self.victim:
                    plan[forged.receiver].append(forged)
        return plan


class InjectionFloodAdversary(Adversary):
    """§5.1: an "almost (t,t)-limited" adversary.

    Never breaks a node and never touches genuine traffic, but injects
    ``flood_factor`` bogus messages per (receiver, source) pair during
    chosen rounds — by default the first round of every refreshment phase,
    which is when URfr Part (I) sends fresh public keys in the clear and
    is therefore the only window where injection hurts (see the
    "Stronger adversaries" remark at the end of §4.3.3).

    ``payload_factory(claimed_sender, receiver, rng)`` fabricates the
    bogus payloads (e.g. fake public keys).
    """

    def __init__(
        self,
        payload_factory: Callable[[int, int, random.Random], Any],
        channel: str,
        flood_factor: int = 1,
        rounds: Callable[[RoundInfo], bool] | None = None,
    ) -> None:
        self.payload_factory = payload_factory
        self.channel = channel
        self.flood_factor = flood_factor
        self.rounds = rounds or (
            lambda info: info.phase is Phase.REFRESH and info.is_phase_start
        )
        self.injected_count = 0

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        if not self.rounds(info):
            return plan
        for receiver in range(api.n):
            injected: list[Envelope] = []
            for claimed in range(api.n):
                if claimed == receiver:
                    continue
                for _ in range(self.flood_factor):
                    payload = self.payload_factory(claimed, receiver, api.rng)
                    injected.append(
                        api.forge_envelope(claimed, receiver, self.channel, payload)
                    )
                    self.injected_count += 1
            # the adversary controls delivery order: the forgeries arrive
            # *before* the genuine announcements, so "first value received"
            # (URfr Part I step 3) picks the fake one
            plan[receiver] = injected + plan[receiver]
        return plan


class ReplayAdversary(Adversary):
    """Records all traffic and re-delivers it ``delay`` rounds later.

    Definition 4 counts a replayed message as "another message", making
    the link unreliable; protocol-level protection comes from the
    ``(u, w)`` stamps in VER-CERT.
    """

    def __init__(self, delay: int = 2, channels: set[str] | None = None) -> None:
        self.delay = delay
        self.channels = channels
        self._recorded: dict[int, list[Envelope]] = {}
        self.replayed_count = 0

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        for envelope in traffic:
            if self.channels is None or envelope.channel in self.channels:
                self._recorded.setdefault(info.round + self.delay, []).append(envelope)
        for envelope in self._recorded.pop(info.round, []):
            plan[envelope.receiver].append(envelope)
            self.replayed_count += 1
        return plan


class ComposedAdversary(Adversary):
    """Runs several strategies: all observe, the *last* one's delivery plan
    is refined by the earlier ones in reverse order.

    Composition semantics are intentionally simple: ``on_round`` hooks all
    run (so break-in plans compose), while delivery plans chain — each
    strategy's ``deliver`` is fed the traffic that survived the previous
    one, expressed as envelopes.
    """

    def __init__(self, strategies: list[Adversary]) -> None:
        if not strategies:
            raise ValueError("need at least one strategy")
        self.strategies = strategies

    def begin(self, n: int, schedule: Schedule, rng: random.Random) -> None:
        super().begin(n, schedule, rng)
        for strategy in self.strategies:
            strategy.begin(n, schedule, rng)

    def on_round(self, api, info, traffic) -> None:
        for strategy in self.strategies:
            strategy.on_round(api, info, traffic)

    def deliver(self, api, info, traffic):
        current = tuple(traffic)
        plan: dict[int, list[Envelope]] = {i: [] for i in range(api.n)}
        for strategy in self.strategies:
            plan = strategy.deliver(api, info, current)
            current = tuple(env for envelopes in plan.values() for env in envelopes)
        return plan

    def finish(self) -> list[Any]:
        entries: list[Any] = []
        for strategy in self.strategies:
            entries.extend(strategy.finish())
        return entries
