"""Protocol AUTH-SEND (paper Fig. 4), packaged as a Transport.

AUTH-SEND = CERTIFY + DISPERSE: the sender wraps its message with
:func:`~repro.core.certify.certify` and floods it with
:class:`~repro.core.disperse.DisperseService`; the receiver runs
``VER-CERT`` on every DISPERSE receipt and *accepts* exactly the properly
certified ones (with ``w`` pinned to two rounds before the current one —
when the message must have been sent).

Because this class implements :class:`~repro.pds.transport.Transport`
(with ``delay = 2``), every AL-model sub-protocol in this package —
threshold signing, share refresh, echo broadcast — runs over it
unchanged.  That substitution is the entire §4 transformation of the
paper: ``ULS = ALS where each message is sent via AUTH-SEND``.
"""

from __future__ import annotations

from typing import Any

from repro.core.certify import CertifiedMessage, certify, prime_parsed, ver_cert_many
from repro.core.disperse import DisperseService
from repro.core.keystore import KeyStore
from repro.pds.keys import PdsPublic
from repro.pds.transport import Accepted, Transport
from repro.perf.config import perf_config
from repro.perf.volume import BROADCAST
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext

__all__ = ["AuthSendTransport", "AcceptedCertified"]


class AcceptedCertified(Accepted):
    """An accepted message plus the raw certified tuple it arrived in
    (PARTIAL-AGREEMENT step 3 re-disperses those raw tuples)."""

    __slots__ = ("raw",)

    def __init__(self, sender: int, body: Any, raw: CertifiedMessage) -> None:
        super().__init__(sender, body)
        self.raw = raw


class AuthSendTransport(Transport):
    """See module docstring.

    Args:
        keystore: the node's per-unit local keys (signing side and the
            expected unit on the verifying side).
        public: the PDS public parameters; ``public.public_key`` is the
            ROM-anchored global verification key ``v_cert``.
        disperse: the node's shared DISPERSE engine.
        tag: DISPERSE tag separating this transport's traffic.
    """

    delay = 2

    def __init__(
        self,
        keystore: KeyStore,
        public: PdsPublic,
        disperse: DisperseService,
        tag: str = "auth",
    ) -> None:
        self.keystore = keystore
        self.public = public
        self.disperse = disperse
        self.tag = tag
        self._accepted: list[AcceptedCertified] = []
        #: statistics + analysis logs
        self.sent_count = 0
        self.rejected_count = 0
        self.accepted_log: list[tuple[int, int, Any]] = []  # (round, src, body)
        # first round seen per time unit; the acceptance log keeps the
        # current and previous unit only (it used to grow one entry per
        # acceptance for the whole run — unbounded across units)
        self._unit_first_round: dict[int, int] = {}

    def begin_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Run VER-CERT over this round's DISPERSE receipts.

        The owner must have called ``disperse.on_round`` already (the
        DISPERSE engine is shared among several consumers); this method
        only consumes the receipts under its tag.
        """
        self._accepted = []
        unit = ctx.info.time_unit
        if unit not in self._unit_first_round:
            self._unit_first_round[unit] = ctx.info.round
            floor = self._unit_first_round.get(unit - 1, ctx.info.round)
            self.accepted_log = [
                entry for entry in self.accepted_log if entry[0] >= floor
            ]
            for old in [u for u in self._unit_first_round if u < unit - 1]:
                del self._unit_first_round[old]
        expected_round = ctx.info.round - self.delay
        expected_unit = self.keystore.unit
        receipts = self.disperse.receipts(self.tag)
        if not receipts:
            return
        # batched VER-CERT: one round's receipts resolve their signature
        # checks together (cache + random-linear-combination batch); the
        # accept/reject outcome per receipt is identical to sequential
        # ver_cert — see repro.core.certify.ver_cert_many.
        for msg in ver_cert_many(
            self.keystore.scheme,
            self.public,
            receiver=ctx.node_id,
            expected_unit=expected_unit,
            expected_round=expected_round,
            items=receipts,
        ):
            if msg is None:
                self.rejected_count += 1
                continue
            self._accepted.append(AcceptedCertified(msg.source, msg.message, msg))
            self.accepted_log.append((ctx.info.round, msg.source, msg.message))

    def send(self, ctx: NodeContext, receiver: int, body: Any) -> None:
        """CERTIFY + DISPERSE.  Silently a no-op when the local keys are
        ``φ`` — a node without keys cannot authenticate (it has already
        alerted; its peers simply won't hear from it)."""
        msg = certify(
            self.keystore.scheme,
            self.keystore.current,
            message=body,
            source=ctx.node_id,
            destination=receiver,
            round_w=ctx.info.round,
        )
        if msg is None:
            return
        self.sent_count += 1
        wire = tuple(msg)
        prime_parsed(wire, msg)  # receivers parse the same object we flood
        self.disperse.send(ctx, receiver, wire, tag=self.tag)

    def send_broadcast(self, ctx: NodeContext, body: Any) -> None:
        """One certificate, one flood, every node accepts.

        The message is certified with the :data:`~repro.perf.volume.BROADCAST`
        destination sentinel — VER-CERT accepts it for any receiver — and
        carried by a single DISPERSE broadcast flood instead of ``n-1``
        per-destination dispersals.  Same no-op-on-φ contract as
        :meth:`send`.
        """
        msg = certify(
            self.keystore.scheme,
            self.keystore.current,
            message=body,
            source=ctx.node_id,
            destination=BROADCAST,
            round_w=ctx.info.round,
        )
        if msg is None:
            return
        self.sent_count += 1
        wire = tuple(msg)
        prime_parsed(wire, msg)
        self.disperse.broadcast(ctx, wire, tag=self.tag)

    def send_to_all(self, ctx: NodeContext, body: Any) -> None:
        """Round-wide send; under the volume layer a single broadcast
        certificate replaces the ``n-1`` per-destination ones."""
        if perf_config().flag("msg_volume"):
            self.send_broadcast(ctx, body)
        else:
            super().send_to_all(ctx, body)

    def accepted(self) -> list[Accepted]:
        return list(self._accepted)

    def accepted_view(self) -> list[Accepted]:
        return self._accepted

    def accepted_certified(self) -> list[AcceptedCertified]:
        """Accepted messages with raw certified tuples (for PA step 3)."""
        return list(self._accepted)

    def accepted_certified_view(self) -> list[AcceptedCertified]:
        """Read-only variant of :meth:`accepted_certified` (the internal
        list is replaced, never mutated, each ``begin_round``)."""
        return self._accepted
