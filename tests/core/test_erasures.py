"""The §6 erasure discipline, checked the hard way.

"A basic assumption underlying the proactive approach is that the nodes
successfully and completely erase certain pieces of sensitive data in
each refreshment phase."  A break-in *after* a refresh must not find the
previous unit's share or signing key anywhere in the node's mutable
state.  These tests snapshot the sensitive values, run a refresh, then
walk the entire reachable object graph of the program (exactly what the
simulator hands an intruder) and assert the old values are gone.
"""

from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def reachable_values(root, max_items=200_000):
    """Every int/bytes value reachable from ``root``'s attributes —
    what a memory-scraping intruder would search."""
    seen = set()
    found = set()
    stack = [root]
    while stack and len(seen) < max_items:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, (int, float, complex)) and not isinstance(obj, bool):
            found.add(obj)
            continue
        if isinstance(obj, (bytes, str)):
            found.add(obj)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__"):
            stack.extend(vars(obj).values())
        elif hasattr(obj, "__slots__"):
            for slot in obj.__slots__:
                try:
                    stack.append(getattr(obj, slot))
                except AttributeError:
                    pass
    return found


def run_network(units):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=21)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=21)
    return programs, runner


def test_old_share_not_reachable_after_refresh():
    programs, runner = run_network(units=2)
    old_shares = [p.state.share.value for p in programs]
    runner.run(units=2)
    for program, old_value in zip(programs, old_shares):
        assert program.state.share.value != old_value
        values = reachable_values(program)
        assert old_value not in values, (
            "the pre-refresh share survives in the node's memory — a "
            "break-in now would retroactively compromise the old unit"
        )


def test_old_local_signing_key_not_reachable_after_refresh():
    programs, runner = run_network(units=2)
    old_keys = [p.keystore.current.keypair.signing_key.x for p in programs]
    runner.run(units=2)
    for program, old_x in zip(programs, old_keys):
        values = reachable_values(program)
        assert old_x not in values, "the unit-0 signing key was not erased"


def test_current_secrets_are_present():
    """Sanity check on the scanner itself: the *current* secrets must be
    found (otherwise the negative assertions above prove nothing)."""
    programs, runner = run_network(units=2)
    runner.run(units=2)
    for program in programs:
        values = reachable_values(program)
        assert program.state.share.value in values
        assert program.keystore.current.keypair.signing_key.x in values
