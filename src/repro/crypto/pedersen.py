"""Pedersen commitments and Pedersen VSS.

Feldman commitments (:mod:`repro.crypto.feldman`) are computationally
hiding only — they publish ``g^secret``.  Pedersen's scheme commits with
two generators, ``C(m, r) = g^m · h^r``, and is *information-theoretically*
hiding (every commitment is consistent with every message) while binding
under discrete log.  The proactive-security literature that grew out of
this paper (notably the robust DKGs of Gennaro et al.) uses Pedersen VSS
wherever the dealt secret must stay hidden even from unbounded observers;
we provide it as substrate for such extensions.

The second generator is derived by hashing into the group (a random
quadratic residue), so *nobody* knows ``log_g(h)`` — which is exactly the
binding assumption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.field import Polynomial
from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.shamir import Share

__all__ = [
    "derive_second_generator",
    "PedersenParams",
    "PedersenCommitment",
    "PedersenVssDealing",
    "PedersenVssDealer",
]

_H_TAG = "repro/pedersen/second-generator"


def derive_second_generator(group: SchnorrGroup, label: str = "default") -> int:
    """A generator ``h`` of the order-q subgroup with unknown ``log_g h``:
    hash to ``Z_p*`` and square (every square generates the subgroup,
    bar the identity)."""
    counter = 0
    while True:
        candidate = hash_to_int(_H_TAG, group.p, label, counter)
        h = pow(candidate, 2, group.p)
        if h != group.identity and h != group.g:
            return h
        counter += 1


@dataclass(frozen=True)
class PedersenParams:
    """Group plus the two generators."""

    group: SchnorrGroup
    h: int

    @classmethod
    def for_group(cls, group: SchnorrGroup, label: str = "default") -> "PedersenParams":
        return cls(group=group, h=derive_second_generator(group, label))

    def commit(self, message: int, randomness: int) -> int:
        """``C(m, r) = g^m · h^r``."""
        group = self.group
        return group.multiply(group.base_power(message), group.power(self.h, randomness))

    def verify_opening(self, commitment: int, message: int, randomness: int) -> bool:
        return self.commit(message, randomness) == commitment


@dataclass(frozen=True)
class PedersenCommitment:
    """Commitment vector ``E_k = g^{a_k} h^{b_k}`` to a polynomial pair."""

    elements: tuple[int, ...]

    def share_image(self, params: PedersenParams, x: int) -> int:
        group = params.group
        acc = group.identity
        power_of_x = 1
        for element in self.elements:
            acc = group.multiply(acc, group.power(element, power_of_x))
            power_of_x = (power_of_x * x) % group.q
        return acc

    def verify_share(self, params: PedersenParams, share: Share, blinding: int) -> bool:
        """Check ``g^{f(x)} h^{f'(x)} == Π E_k^{x^k}``."""
        lhs = params.commit(share.value, blinding)
        return lhs == self.share_image(params, share.x)

    def combine(self, params: PedersenParams, other: "PedersenCommitment") -> "PedersenCommitment":
        group = params.group
        length = max(len(self.elements), len(other.elements))
        mine = self.elements + (group.identity,) * (length - len(self.elements))
        theirs = other.elements + (group.identity,) * (length - len(other.elements))
        return PedersenCommitment(
            elements=tuple(group.multiply(a, b) for a, b in zip(mine, theirs))
        )


@dataclass(frozen=True)
class PedersenVssDealing:
    """Shares of the secret, matching blinding shares, and the commitment."""

    shares: list[Share]
    blindings: list[int]
    commitment: PedersenCommitment


class PedersenVssDealer:
    """Deals Pedersen-verifiable sharings (information-theoretic hiding)."""

    def __init__(self, params: PedersenParams, n: int, threshold: int) -> None:
        if not (0 <= threshold < n):
            raise ValueError(f"threshold must be in [0, n), got t={threshold}, n={n}")
        self.params = params
        self.n = n
        self.threshold = threshold

    def deal(self, secret: int, rng: random.Random) -> PedersenVssDealing:
        field = self.params.group.scalar_field
        f = field.random_polynomial(self.threshold, rng, constant=secret)
        f_prime = field.random_polynomial(self.threshold, rng)
        elements = tuple(
            self.params.commit(a, b)
            for a, b in zip(f.coefficients, f_prime.coefficients)
        )
        shares = [Share(x=i, value=f.evaluate(i)) for i in range(1, self.n + 1)]
        blindings = [f_prime.evaluate(i) for i in range(1, self.n + 1)]
        return PedersenVssDealing(
            shares=shares, blindings=blindings,
            commitment=PedersenCommitment(elements=elements),
        )
