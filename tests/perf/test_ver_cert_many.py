"""ver_cert_many must accept/reject exactly like sequential ver_cert.

The batched entry point is the transport hot path; these tests drive it
with mixed batches — valid messages, forgeries, replays, garbage — and
compare index-by-index against the sequential reference, under every
perf-flag combination that changes its code path.
"""

import random

import pytest

from repro.core.certify import certify, ver_cert, ver_cert_many
from repro.core.uls import build_uls_states
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme, SchnorrSignature
from repro.perf import clear_all_caches, configure

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2


@pytest.fixture(scope="module")
def setup():
    return build_uls_states(GROUP, SCHEME, N, T, seed=11)


def _mixed_items(setup):
    """(alleged_source, raw) pairs spanning accept and every reject path."""
    _, _, keys = setup
    rng = random.Random(42)

    def make(source, destination=1, message=("body",), round_w=7):
        return certify(SCHEME, keys[source], message, source, destination, round_w)

    good0 = make(0)
    good2 = make(2, message=("other", 17))
    good3 = make(3)

    tampered = list(make(4))
    tampered[0] = ("tampered",)

    bad_sig = list(make(0, message=("forged target",)))
    sig = bad_sig[5]
    bad_sig[5] = SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % GROUP.q)

    swapped_cert = list(make(2, message=("swap",)))
    swapped_cert[7] = keys[3].certificate

    foreign_pair = SCHEME.generate(rng)
    foreign = list(make(3, message=("foreign",)))
    foreign[5] = SCHEME.sign(foreign_pair.signing_key, b"whatever")
    foreign[6] = foreign_pair.verify_key

    return [
        (0, tuple(good0)),
        (0, tuple(good0)),            # duplicate receipt (cache hit path)
        (2, tuple(good2)),
        (4, tuple(tampered)),         # signature over different body
        (0, tuple(bad_sig)),          # corrupted signature
        (3, tuple(good3)),
        (1, tuple(good3)),            # wrong alleged source
        (2, tuple(swapped_cert)),     # certificate of another node
        (3, tuple(foreign)),          # uncertified key
        (0, "not even a tuple"),      # unparseable
        (0, tuple(make(0, round_w=5))),  # replay (wrong round)
    ]


def _sequential(setup, items):
    public, _, _ = setup
    return [
        ver_cert(SCHEME, public, receiver=1, alleged_source=src,
                 expected_unit=0, expected_round=7, raw=raw)
        for src, raw in items
    ]


FLAG_SETS = [
    pytest.param(dict(enabled=False), id="perf-off"),
    pytest.param(dict(enabled=True), id="perf-on"),
    pytest.param(dict(enabled=True, batch_verify=False), id="cache-only"),
    pytest.param(dict(enabled=True, verify_cache=False), id="batch-only"),
]


@pytest.mark.parametrize("flags", FLAG_SETS)
def test_matches_sequential(perf, setup, flags):
    public, _, _ = setup
    items = _mixed_items(setup)

    configure(enabled=False)  # reference pass: plain verifier, no caches
    expected = _sequential(setup, items)

    configure(**flags)
    batched = ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                            expected_round=7, items=items)

    assert len(batched) == len(expected)
    for got, want in zip(batched, expected):
        if want is None:
            assert got is None
        else:
            assert got == want


@pytest.mark.parametrize("flags", FLAG_SETS)
def test_matches_sequential_warm_cache(perf, setup, flags):
    """Same comparison with a pre-warmed cache (second identical round)."""
    public, _, _ = setup
    items = _mixed_items(setup)
    configure(enabled=False)
    expected = _sequential(setup, items)
    configure(**flags)
    first = ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                          expected_round=7, items=items)
    second = ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                           expected_round=7, items=items)
    for got_1, got_2, want in zip(first, second, expected):
        assert (got_1 is None) == (want is None)
        assert (got_2 is None) == (want is None)


def test_all_good_batch(perf, setup):
    public, _, keys = setup
    items = [
        (i, tuple(certify(SCHEME, keys[i], ("m", i), i, 1, 7)))
        for i in range(N) if i != 1
    ]
    results = ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                            expected_round=7, items=items)
    assert all(msg is not None for msg in results)


def test_empty_items(perf, setup):
    public, _, _ = setup
    assert ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                         expected_round=7, items=[]) == []


def test_blame_attribution_on_failing_batch(perf, setup):
    """One bad signature in the round must reject only that message; the
    batch fails and the fallback attributes blame individually."""
    public, _, keys = setup
    good = [(i, tuple(certify(SCHEME, keys[i], ("m", i), i, 1, 7)))
            for i in (0, 2, 3)]
    bad = list(certify(SCHEME, keys[4], ("bad",), 4, 1, 7))
    sig = bad[5]
    bad[5] = SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % GROUP.q)
    items = good[:2] + [(4, tuple(bad))] + good[2:]
    clear_all_caches()
    results = ver_cert_many(SCHEME, public, receiver=1, expected_unit=0,
                            expected_round=7, items=items)
    assert results[0] is not None
    assert results[1] is not None
    assert results[2] is None
    assert results[3] is not None
