"""Wire-level message representation.

An :class:`Envelope` is one message on one link in one round.  The
``sender`` field is the *claimed* source: in the UL model the adversary
can inject envelopes with any claimed sender, so receiving programs must
never treat it as authenticated — that is exactly what the paper's
CERTIFY/VER-CERT layer is for.

``channel`` is a routing tag (e.g. ``"disperse"``, ``"pa/3"``) that lets a
node multiplex many concurrent sub-protocols over the same link, mirroring
the paper's parallel protocol copies (§4.2.3 step 3).
"""

from __future__ import annotations

from typing import Any

__all__ = ["Envelope"]


class Envelope:
    """One message on one link.

    A plain ``__slots__`` class rather than a dataclass: full floods
    create one envelope per (sender, relay hop, receiver) per round —
    hundreds of thousands at E8 scale — so per-instance ``__dict__``
    allocation and generated-dataclass dispatch are measurable.  The
    class keeps dataclass semantics (positional/keyword construction,
    field-tuple equality, memoized hash) and is immutable by convention:
    every mutation site in the codebase goes through :meth:`redirect` /
    :meth:`with_payload`, which copy.
    """

    __slots__ = ("sender", "receiver", "channel", "payload", "round_sent", "_hash")

    def __init__(
        self, sender: int, receiver: int, channel: str, payload: Any, round_sent: int
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.channel = channel
        self.payload = payload
        self.round_sent = round_sent
        # The runner's linear-time link accounting (Definition 4) may put
        # an envelope in a Counter twice per round; payloads are deep
        # tuples, so the hash is memoized on first use.  Raises TypeError
        # for unhashable payloads — the runner falls back to multiset
        # comparison then.
        self._hash: int | None = None

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(
                (self.sender, self.receiver, self.channel, self.payload, self.round_sent)
            )
        return cached

    def __eq__(self, other: object) -> Any:
        if other.__class__ is Envelope:
            return (
                self.sender == other.sender
                and self.receiver == other.receiver
                and self.channel == other.channel
                and self.round_sent == other.round_sent
                and self.payload == other.payload
            )
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"Envelope(sender={self.sender!r}, receiver={self.receiver!r}, "
            f"channel={self.channel!r}, payload={self.payload!r}, "
            f"round_sent={self.round_sent!r})"
        )

    def redirect(self, receiver: int) -> "Envelope":
        """Copy of this envelope addressed to a different node (used by
        adversaries that duplicate or misroute traffic)."""
        return Envelope(self.sender, receiver, self.channel, self.payload, self.round_sent)

    def with_payload(self, payload: Any) -> "Envelope":
        """Copy with a modified payload (adversarial tampering)."""
        return Envelope(self.sender, self.receiver, self.channel, payload, self.round_sent)

    def describe(self) -> str:
        """Short human-readable form for logs."""
        return f"[r{self.round_sent} {self.sender}->{self.receiver} {self.channel}]"
