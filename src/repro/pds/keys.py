"""Key material and per-node state of the threshold Schnorr PDS.

:class:`PdsPublic` is the *unchanging* public side — in the paper's UL
construction it is exactly what goes into each node's ROM (``v_cert``).
:class:`PdsNodeState` is the mutable per-node secret state: the current
share of the signing key and the current Feldman commitment to the
sharing polynomial.  Shares and commitments change at every refreshment;
the public key never does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer
from repro.crypto.group import SchnorrGroup
from repro.crypto.shamir import Share
from repro.perf.share_image import invalidate_share_images

__all__ = ["PdsPublic", "PdsNodeState", "deal_initial_states"]


@dataclass(frozen=True)
class PdsPublic:
    """The PDS scheme's public parameters: group, verification key, sizes."""

    group: SchnorrGroup
    public_key: int  # y = g^x, the paper's v_cert
    n: int
    threshold: int  # the paper's t: t+1 signers needed

    def __post_init__(self) -> None:
        if self.n < 2 * self.threshold + 1:
            raise ValueError(
                f"PDS needs n >= 2t + 1, got n={self.n}, t={self.threshold}"
            )


@dataclass
class PdsNodeState:
    """One node's mutable PDS state.

    ``erasure_log`` records every share erasure (unit, kind) so tests can
    assert the §6 erasure discipline; the erased values themselves are
    gone.
    """

    public: PdsPublic
    node_id: int
    share: Share | None
    key_commitment: FeldmanCommitment
    unit: int = 0
    erasure_log: list[tuple[int, str]] = field(default_factory=list)

    @property
    def share_index(self) -> int:
        """Shamir evaluation point of this node (node_id + 1)."""
        return self.node_id + 1

    def share_is_valid(self) -> bool:
        """Check the held share against the held commitment.

        Both live in RAM, so after a break-in either may be corrupted;
        the refresh protocol first re-syncs the commitment against the
        majority (anchored at the ROM public key) and then applies this
        check to decide whether share recovery is needed.
        """
        if self.share is None:
            return False
        if self.share.x != self.share_index:
            return False
        return self.key_commitment.verify_share(self.public.group, self.share)

    def install_share(self, share: Share | None, commitment: FeldmanCommitment,
                      unit: int, kind: str = "refresh") -> None:
        """Replace share + commitment, erasing the old share (§6).

        Also drops the superseded commitment's rotation bucket from the
        share-image cache — its memoized images and fixed-base windows
        belong to the pre-refresh sharing and must never serve the
        refreshed key.
        """
        old = self.key_commitment
        self.share = share
        self.key_commitment = commitment
        self.unit = unit
        self.erasure_log.append((unit, kind))
        if old is not commitment and old.elements != commitment.elements:
            invalidate_share_images(self.public.group, old.elements)


def deal_initial_states(
    group: SchnorrGroup, n: int, threshold: int, rng: random.Random
) -> tuple[PdsPublic, list[PdsNodeState]]:
    """The key-generation protocol ``Gen``, run in the adversary-free
    set-up phase (the paper notes it "can be replaced by an execution of a
    centralized set-up algorithm" — this is that algorithm).

    Returns the public parameters and one state per node.  The dealing
    polynomial is discarded; only shares and the Feldman commitment
    survive.
    """
    secret = group.random_scalar(rng)
    dealer = FeldmanDealer(group, n=n, threshold=threshold)
    dealing = dealer.deal(secret, rng)
    public = PdsPublic(
        group=group,
        public_key=group.base_power(secret),
        n=n,
        threshold=threshold,
    )
    states = [
        PdsNodeState(
            public=public,
            node_id=i,
            share=dealing.shares[i],
            key_commitment=dealing.commitment,
        )
        for i in range(n)
    ]
    return public, states
