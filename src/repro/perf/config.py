"""Global configuration of the performance layer.

Every optimization in :mod:`repro.perf` is *semantics-preserving*: with a
flag on or off, every protocol produces bit-identical transcripts (the
caches memoize pure functions under exact keys; fixed-base windows compute
the same group element; batch verification falls back to individual
verification whenever a batch fails).  The switches exist so that

* the E14 benchmark can measure the optimized layer against the
  unoptimized baseline in the same process, and
* a debugging session can rule the caches out with ``REPRO_PERF=0``.

The configuration is process-global (the simulator is single-threaded);
worker processes of the parallel benchmark harness each carry their own.
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "PerfConfig",
    "perf_config",
    "configure",
    "register_cache_clearer",
    "clear_all_caches",
]


@dataclass
class PerfConfig:
    """Feature switches of the performance layer.

    ``enabled`` is the master switch: when False every other flag reads as
    off.  ``fixed_base_min_bits`` gates the fixed-base windows — below
    that modulus size CPython's C ``pow`` beats any Python-level window
    walk, so the windows only engage for realistically-sized groups.
    """

    enabled: bool = True
    verify_cache: bool = True
    canonical_cache: bool = True
    challenge_cache: bool = True
    fixed_base: bool = True
    batch_verify: bool = True
    feldman_batch: bool = True
    partial_batch: bool = True
    share_image_cache: bool = True
    gc_tuning: bool = True
    fixed_base_min_bits: int = 192
    # -- the simulation-floor layer (crypto-free hot paths) ------------------
    #: per-round channel-binned inbox views and tag-binned DISPERSE receipts
    inbox_demux: bool = True
    #: derive per-node-round randomness only when a program touches ctx.rng
    lazy_rng: bool = True
    #: trust FaithfulPlan provenance to skip the regroup-and-compare of
    #: _plan_is_faithful and the per-envelope plan sanitation
    faithful_fastpath: bool = True
    #: RoundRecord.delivered shares the delivery plan's lists instead of
    #: re-materializing per-receiver tuples every round
    zero_copy_records: bool = True
    #: FaultInjectionAdversary indexes round-active faults and passes
    #: faithful plans through untouched on fault-free rounds
    fault_index: bool = True
    #: benchmark-sweep mode: round records keep counts, not envelopes
    #: (off by default — analyses that read record.sent need full records)
    compact_records: bool = False
    # -- the message-volume layer (refresh/DKG wire traffic) -----------------
    #: receipt aggregation (broadcast-certified round-wide messages, batched
    #: PA step-3 re-dispersal, plural threshold-signer bodies) and sampled
    #: need/help responders with deterministic escalation.  Unlike every
    #: other flag this one changes *which* envelopes cross the wire, so it
    #: is parity-checked at the protocol-outcome level (rejected sets, key
    #: histories, ``outcome_digest``) rather than by transcript digest —
    #: and it defaults to off.
    msg_volume: bool = False

    def flag(self, name: str) -> bool:
        return self.enabled and bool(getattr(self, name))


_CONFIG = PerfConfig(
    enabled=os.environ.get("REPRO_PERF", "1") != "0",
    msg_volume=os.environ.get("REPRO_MSG_VOLUME", "0") == "1",
)

_CLEARERS: list[Callable[[], None]] = []

# Flood-style rounds allocate hundreds of thousands of envelopes and wire
# tuples per run; nearly all die by refcount, but every generation-0 pass
# still walks the live tail of that churn, and at E8 scale the walks cost
# more than the protocol's own Python work.  ``gc_tuning`` widens the
# gen-0 threshold so cycle collection runs ~300x less often — collection
# never affects semantics, only when the (rare, long-lived) cycles are
# reclaimed, so the flag is transcript-neutral like every other one.
_GC_DEFAULT_THRESHOLD = gc.get_threshold()
_GC_TUNED_THRESHOLD = (200_000, 50, 25)


def _apply_gc_policy() -> None:
    if _CONFIG.enabled and _CONFIG.gc_tuning:
        gc.set_threshold(*_GC_TUNED_THRESHOLD)
    else:
        gc.set_threshold(*_GC_DEFAULT_THRESHOLD)


def perf_config() -> PerfConfig:
    """The process-global performance configuration."""
    return _CONFIG


def register_cache_clearer(fn: Callable[[], None]) -> Callable[[], None]:
    """Register a callable that drops one cache's entries; returns it so
    the call can be used as a decorator."""
    _CLEARERS.append(fn)
    return fn


def clear_all_caches() -> None:
    """Empty every registered cache (verification, canonical keys,
    challenges, fixed-base windows).  Never changes results — only makes
    the next operations cold."""
    for fn in _CLEARERS:
        fn()


def configure(enabled: bool | None = None, **flags: bool | int) -> PerfConfig:
    """Flip performance flags at runtime; clears all caches so that a
    newly disabled flag leaves no warm state behind (and a benchmark's
    "off" measurement is genuinely cold)."""
    if enabled is not None:
        _CONFIG.enabled = bool(enabled)
    for name, value in flags.items():
        if not hasattr(_CONFIG, name):
            raise AttributeError(f"unknown perf flag {name!r}")
        setattr(_CONFIG, name, value)
    _apply_gc_policy()
    clear_all_caches()
    return _CONFIG


_apply_gc_policy()
