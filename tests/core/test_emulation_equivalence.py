"""Functional emulation (Theorem 30), tested by differential execution.

Run the same protocol π twice: natively in the AL model (reliable
authenticated links) and compiled with Λ in the UL model.  With a passive
adversary the *functionality* must coincide: every node must receive
exactly the same multiset of application payloads from every peer —
including payloads sent during refreshment phases (the switch-boundary
buffering makes those survive the per-unit key rotation).
"""

from collections import Counter

from repro.core.authenticator import compile_protocol
from repro.core.uls import build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ALRunner, ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T, UNITS = 5, 2, 3
SCHED = uls_schedule()


class TalkativeProtocol(NodeProgram):
    """π: sends a unique stamped payload to its successor *every* round
    (normal and refresh alike) and records everything received."""

    def __init__(self):
        super().__init__()
        self.received: list[tuple[int, object]] = []  # (sender, payload)

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            if envelope.channel == "talk":
                self.received.append((envelope.sender, envelope.payload))
        if ctx.info.phase is not Phase.SETUP:
            successor = (self.node_id + 1) % self.n
            ctx.send(successor, "talk", ("msg", self.node_id, ctx.info.round))


def run_al():
    inners = [TalkativeProtocol() for _ in range(N)]
    runner = ALRunner(inners, PassiveAdversary(), SCHED, seed=4)
    runner.run(units=UNITS)
    return inners


def run_ul_compiled():
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=4)
    inners = [TalkativeProtocol() for _ in range(N)]
    programs = compile_protocol(inners, states, SCHEME, keys)
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=4)
    runner.run(units=UNITS)
    return inners


def test_compiled_protocol_delivers_identical_payload_multisets():
    al_inners = run_al()
    ul_inners = run_ul_compiled()
    total_rounds = SCHED.total_rounds(UNITS)
    for node in range(N):
        def deliveries(inner):
            # ignore the tail: payloads sent near the end of the run are
            # still in flight in the slower (delay-2) compiled network
            return Counter(
                (sender, payload) for sender, payload in inner.received
                if payload[2] < total_rounds - 2 * 2
            )

        al = deliveries(al_inners[node])
        ul = deliveries(ul_inners[node])
        missing = al - ul
        extra = ul - al
        assert not missing, f"node {node} lost payloads under Λ: {sorted(missing)[:5]}"
        assert not extra, f"node {node} gained payloads under Λ: {sorted(extra)[:5]}"


def test_refresh_phase_payloads_survive_the_key_switch():
    """Specifically the switch-boundary payloads: every payload π sent
    during refreshment phases (except the in-flight tail) arrives."""
    ul_inners = run_ul_compiled()
    refresh_rounds = set()
    for unit in range(1, UNITS):
        start = SCHED.refresh_start(unit)
        refresh_rounds.update(range(start, start + SCHED.refresh_rounds))
    receiver = ul_inners[1]  # successor of node 0
    got_rounds = {payload[2] for sender, payload in receiver.received if sender == 0}
    expected = {r for r in refresh_rounds if r < SCHED.total_rounds(UNITS) - 4}
    missing = expected - got_rounds
    assert not missing, f"refresh-phase payloads lost: {sorted(missing)}"
