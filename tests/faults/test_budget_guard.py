"""StBudgetGuard: online projection onto the (s,t)-legal fault space.

The unit tests pin each admission/clamping rule; the property fuzz at the
bottom is the PR's safety contract — *no* adaptive strategy, at *any*
aggressiveness, can drive a guarded run outside Definition 7's budget
(both the instantaneous Def. 7 audit and the Def. 3 union audit must
pass on every fuzzed run).
"""

import pytest

from tests.helpers import EchoProgram
from repro.adversary.limits import audit_st_limited, audit_t_limited
from repro.analysis.monitor import RuntimeInvariantMonitor
from repro.faults import (
    AdaptiveAdversary,
    FaultRequest,
    StBudgetGuard,
    make_strategy,
    requests_to_faults,
)
from repro.sim.clock import Schedule
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N, T = 5, 2
FIRST_NORMAL_1 = SCHED.first_normal_round(1)
LAST_NORMAL_1 = FIRST_NORMAL_1 + SCHED.normal_rounds - 1


def guard(**kwargs):
    kwargs.setdefault("s", T)
    return StBudgetGuard(N, T, SCHED, **kwargs)


# ------------------------------------------------------------- victim budget

def test_victim_budget_caps_at_t():
    report = guard().project(1, [FaultRequest(kind="crash", victim=v) for v in range(4)])
    assert len(report.crashes) == T
    assert report.denied == {"victim-budget": 2}
    assert report.victims == frozenset({0, 1})


def test_max_victims_per_unit_tightens_the_cap():
    report = guard(max_victims_per_unit=1).project(
        1, [FaultRequest(kind="crash", victim=v) for v in range(3)])
    assert len(report.crashes) == 1
    assert report.denied["victim-budget"] == 2


def test_repeat_faults_on_one_victim_cost_one_budget_slot():
    report = guard().project(1, [
        FaultRequest(kind="crash", victim=0),
        FaultRequest(kind="corrupt", victim=0),
        FaultRequest(kind="crash", victim=1),
    ])
    assert report.denied_total == 0
    assert report.victims == frozenset({0, 1})


def test_reserved_victims_consume_the_budget():
    g = guard()
    g.reserve_victims(1, {0, 1})  # e.g. a composed base adversary's break-ins
    report = g.project(1, [FaultRequest(kind="crash", victim=2)])
    assert report.denied == {"victim-budget": 1}
    assert not report.crashes


# ------------------------------------------------------------ window clamping

def test_windows_are_clamped_into_the_recovery_margins():
    report = guard().project(1, [
        # spans the refresh phase and the unit end: both ends must clamp
        FaultRequest(kind="crash", victim=0,
                     first_round=SCHED.refresh_start(1), last_round=10**6),
        FaultRequest(kind="corrupt", victim=1, first_round=10**6),
    ])
    (crash,) = report.crashes
    assert crash.first_round == FIRST_NORMAL_1
    assert crash.last_round == LAST_NORMAL_1 - 1      # margin for recovery
    (corrupt,) = report.corruptions
    assert corrupt.round == LAST_NORMAL_1 - 1
    assert report.clamped >= 3


def test_default_windows_span_the_legal_maximum():
    report = guard().project(1, [FaultRequest(kind="drop", victim=0, peer=2)])
    (drop,) = report.drops
    assert drop.first_round == FIRST_NORMAL_1
    assert drop.last_round == LAST_NORMAL_1 - 1
    assert report.clamped == 0


def test_short_units_admit_no_faults():
    tight = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)
    report = StBudgetGuard(N, T, tight, s=T).project(1, [
        FaultRequest(kind="crash", victim=0),
        FaultRequest(kind="drop", victim=1, peer=2),
    ])
    assert report.approved == 0
    assert report.denied == {"unit-too-short": 2}


# --------------------------------------------------------------- link faults

def test_link_faults_denied_when_s_is_1():
    report = StBudgetGuard(N, T, SCHED, s=1).project(
        1, [FaultRequest(kind="drop", victim=0, peer=1)])
    assert report.denied == {"s-too-small": 1}


def test_collateral_cap_is_s_minus_1_per_nonvictim():
    # both victims aim a drop at the same non-victim peer: the second
    # would give peer 4 its s-th faulted link, so it must be denied
    report = guard().project(1, [
        FaultRequest(kind="drop", victim=0, peer=4),
        FaultRequest(kind="drop", victim=1, peer=4),
    ])
    assert len(report.drops) == 1
    assert report.denied == {"collateral-budget": 1}


def test_victim_victim_links_cost_no_collateral():
    report = guard().project(1, [
        FaultRequest(kind="drop", victim=0, peer=1),
        FaultRequest(kind="drop", victim=1, peer=0),
        FaultRequest(kind="delay", victim=0, peer=1),
    ])
    assert report.denied_total == 0
    assert report.victims == frozenset({0, 1})


def test_bad_peers_are_denied():
    report = guard().project(1, [
        FaultRequest(kind="drop", victim=0),                 # no peer at all
        FaultRequest(kind="drop", victim=0, peer=0),         # self-link
        FaultRequest(kind="drop", victim=0, peer=99),        # out of range
    ])
    assert report.denied == {"bad-peer": 3}


def test_duplicate_and_delay_parameters_are_bounded():
    report = guard().project(1, [
        FaultRequest(kind="duplicate", victim=0, peer=2, copies=99),
        FaultRequest(kind="delay", victim=1, peer=3, delay=99, probability=1.5),
    ])
    (dup,) = report.duplications
    assert dup.copies == 3
    (delay,) = report.delays
    assert delay.delay == 3
    assert delay.probability == 1.0


# ---------------------------------------------------- refreshment-phase rules

def test_node_faults_never_touch_the_refresh_phase():
    report = guard().project(1, [FaultRequest(kind="crash", victim=0, phase="refresh")])
    assert report.denied == {"refresh-node-fault": 1}


def test_unit_0_has_no_refresh_phase_to_attack():
    report = guard().project(0, [
        FaultRequest(kind="drop", victim=0, peer=2, phase="refresh")])
    assert report.denied == {"no-refresh-phase": 1}


def test_refresh_drops_are_confined_to_the_refresh_window():
    report = guard().project(1, [
        FaultRequest(kind="drop", victim=0, peer=2, phase="refresh",
                     first_round=0, last_round=10**6)])
    (drop,) = report.drops
    start = SCHED.refresh_start(1)
    assert drop.first_round == start
    assert drop.last_round == start + SCHED.refresh_rounds - 1


def test_refresh_budget_charges_previous_units_victims():
    """A victim of unit u-1 is still disconnected during unit u's refresh
    phase (it recovers only at the phase's end), so refresh victims of
    unit u are charged against min(t, s) *jointly* with them."""
    g = guard()
    g.project(1, [FaultRequest(kind="crash", victim=0),
                  FaultRequest(kind="crash", victim=1)])
    report = g.project(2, [
        # a fresh refresh victim would make 3 impaired nodes mid-refresh
        FaultRequest(kind="drop", victim=2, peer=3, phase="refresh"),
        # re-starving a recovering victim adds nobody: admissible
        FaultRequest(kind="drop", victim=0, peer=3, phase="refresh"),
    ])
    assert report.denied == {"victim-budget": 1}
    assert len(report.drops) == 1
    assert report.drops[0].link == frozenset({0, 3})


def test_refresh_peers_must_not_be_recovering():
    """Faulting a recovering node's link during the refresh phase would
    make it miss its own re-admission — denied even as collateral."""
    g = guard()
    g.project(1, [FaultRequest(kind="crash", victim=0)])
    report = g.project(2, [
        FaultRequest(kind="drop", victim=1, peer=0, phase="refresh")])
    assert report.denied == {"peer-recovering": 1}


# ----------------------------------------------------------------- mechanics

def test_units_must_be_projected_in_order():
    g = guard()
    g.project(2, [])
    with pytest.raises(ValueError, match="order"):
        g.project(1, [])


def test_unknown_kinds_and_bad_victims_are_denied():
    report = guard().project(1, [
        FaultRequest(kind="nuke", victim=0),
        FaultRequest(kind="crash", victim=-1),
        FaultRequest(kind="crash", victim=N),
    ])
    assert report.denied == {"unknown-kind": 1, "victim-out-of-range": 2}


def test_zero_t_denies_everything():
    report = StBudgetGuard(N, 0, SCHED, s=2).project(
        1, [FaultRequest(kind="crash", victim=0),
            FaultRequest(kind="drop", victim=1, peer=2)])
    assert report.approved == 0
    assert report.denied_total == 2


def test_report_as_dict_is_json_ready():
    import json

    report = guard().project(1, [FaultRequest(kind="crash", victim=0)])
    data = report.as_dict()
    assert json.loads(json.dumps(data)) == data
    assert data["approved"] == 1 and data["victims"] == [0]


def test_requests_to_faults_is_the_unguarded_twin():
    requests = [FaultRequest(kind="crash", victim=v) for v in range(N)]
    report = requests_to_faults(1, requests, SCHED)
    assert len(report.crashes) == N            # nothing denied…
    assert report.denied_total == 0
    st = StBudgetGuard(N, T, SCHED, s=T).project(1, requests)
    assert len(st.crashes) == T                # …unlike the guarded path


# ---------------------------------------------------------- the property fuzz

def test_guarded_adaptive_runs_never_exceed_the_budget():
    """S2: fuzz 200 seeded adaptive runs across every strategy and an
    over-budget knob range; every run must pass both post-hoc audits and
    keep the runtime monitor silent."""
    runs = 0
    for strategy_name in ("recovery-chaser", "traffic-targeter", "certificate-starver"):
        for aggressiveness in (0.7, 1.0):
            for seed in range(34):
                adversary = AdaptiveAdversary(
                    make_strategy(strategy_name), T, seed=seed,
                    aggressiveness=aggressiveness)
                monitor = RuntimeInvariantMonitor(T, fail_fast=False)
                runner = ULRunner([EchoProgram() for _ in range(N)], adversary,
                                  SCHED, s=T, seed=seed,
                                  observers=[adversary.lens, monitor])
                execution = runner.run(units=3)
                st = audit_st_limited(execution, T)
                union = audit_t_limited(execution, T)
                assert st.within_limits, (strategy_name, aggressiveness, seed,
                                          st.violations)
                assert union.within_limits, (strategy_name, aggressiveness, seed,
                                             union.violations)
                assert monitor.ok, (strategy_name, aggressiveness, seed,
                                    monitor.violation_tuples())
                runs += 1
    assert runs >= 200
