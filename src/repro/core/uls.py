"""ULS — the UL-model proactive distributed signature scheme (§4.2).

``ULS = ⟨UGen, USign, UVer, URfr⟩`` is the paper's central construction
(Theorem 14): run the AL-model scheme unchanged, but send every protocol
message through AUTH-SEND, and bootstrap each time unit's authentication
keys through the refreshment protocol ``URfr``:

**Part (I)** (authenticated with the *previous* unit's keys):

1. generate fresh local keys ``(s_i^u, v_i^u)`` — with fresh randomness;
2. send the new verification key to everyone *in the clear* (a node
   recovering from a break-in has nothing to authenticate with);
3. run PARTIAL-AGREEMENT on each node's announced key;
4. jointly sign a certificate for every agreed key with the threshold
   (PDS) signer;
5. DISPERSE each certificate to its owner; a node that obtains no valid
   certificate sets its keys to ``φ`` and outputs **alert**.

**Part (II)** (authenticated with the *new* keys): run the PDS share
refresh ``Rfr`` — renewal, commitment sync and share recovery — and erase
the old shares.  A node that fails to refresh its share also alerts.

The round offsets within a refreshment phase are fixed and public (all
nodes move in lockstep, as the synchronous model prescribes); see
:func:`uls_refresh_rounds` for the required phase length.

:class:`UlsCore` packages the machinery for embedding (the authenticator
Λ of §5 reuses it wholesale); :class:`UlsProgram` is the stand-alone PDS
node program with the §3.2 signing interface.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.auth_send import AuthSendTransport
from repro.core.certify import certificate_assertion
from repro.core.disperse import DisperseService
from repro.core.keystore import KeyStore, LocalKeys
from repro.crypto.schnorr import SchnorrScheme, SchnorrSigningKey
from repro.crypto.shamir import reconstruct_secret
from repro.crypto.signature import SignatureScheme
from repro.pds.keys import PdsNodeState, PdsPublic, deal_initial_states
from repro.pds.refresh import RefreshService
from repro.pds.threshold_schnorr import (
    ThresholdSigner,
    pds_message_bytes,
    verify_pds_signature,
)
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram

__all__ = [
    "UlsCore",
    "UlsProgram",
    "uls_refresh_rounds",
    "uls_schedule",
    "build_uls_states",
    "verify_user_signature",
    "NEWKEY_CHANNEL",
]

NEWKEY_CHANNEL = "newkey"
_CERT_TAG = "cert"

# Part (I) offsets within a refreshment phase (AUTH-SEND delay = 2)
_O_ANNOUNCE = 0
_O_PA_START = 1
_O_PA_DECIDE = _O_PA_START + 4
_O_SIGN = _O_PA_DECIDE  # request certificates right after PA decides
_O_CERT_SEND = _O_SIGN + 8  # threshold signing completes 4 steps * delay later
_O_SWITCH = _O_CERT_SEND + 2  # certificates disperse in 2 rounds
_O_PART2 = _O_SWITCH + 1


def uls_refresh_rounds() -> int:
    """Refresh-phase length the ULS protocol requires (Part I + Part II)."""
    return _O_PART2 + 4 * 2 + 1  # Part II: RefreshService over delay-2 transport


def uls_schedule(normal_rounds: int = 12, setup_rounds: int = 1) -> Schedule:
    """A schedule with refresh phases long enough for URfr.

    ``normal_rounds`` must leave room for threshold signing sessions
    (8 rounds + slack over AUTH-SEND); 12 is a comfortable default.
    """
    return Schedule(
        setup_rounds=setup_rounds,
        refresh_rounds=uls_refresh_rounds(),
        normal_rounds=normal_rounds,
    )


def build_uls_states(
    group,
    scheme: SignatureScheme,
    n: int,
    t: int,
    seed: int | str = 0,
) -> tuple[PdsPublic, list[PdsNodeState], list[LocalKeys]]:
    """``UGen`` (§4.2.1), as the centralized set-up algorithm the paper
    allows: deal the PDS states, generate every node's unit-0 local keys,
    and certify them by signing with the (momentarily reconstructed, then
    discarded) global secret.  Runs before the simulation starts, i.e.
    inside the adversary-free set-up phase.
    """
    rng = random.Random(seed if isinstance(seed, int) else hash(seed))
    public, states = deal_initial_states(group, n=n, threshold=t, rng=rng)
    # reconstruct x once, inside set-up, to issue the unit-0 certificates
    secret = reconstruct_secret(
        group.scalar_field, [s.share for s in states[: t + 1]]
    )
    signer_key = SchnorrSigningKey(x=secret, y=public.public_key)
    pds_scheme = SchnorrScheme(group)
    initial_keys = []
    for i in range(n):
        keypair = scheme.generate(rng)
        assertion = certificate_assertion(i, 0, scheme.key_repr(keypair.verify_key))
        certificate = pds_scheme.sign(signer_key, pds_message_bytes(assertion, 0))
        initial_keys.append(LocalKeys(unit=0, keypair=keypair, certificate=certificate))
    del secret, signer_key
    return public, states, initial_keys


def verify_user_signature(public: PdsPublic, message: Any, unit: int, signature: Any) -> bool:
    """``UVer`` for user messages signed through :meth:`UlsProgram` /
    :meth:`UlsCore.request_signature` (user messages live in their own
    domain so they can never collide with certificate assertions)."""
    return verify_pds_signature(public, ("user-msg", message), unit, signature)


class UlsCore:
    """The ULS machinery for one node, embeddable in any program.

    Call :meth:`on_round` exactly once per non-set-up round, *before* any
    application sends; then use :meth:`app_send` / :meth:`app_accepted`
    for authenticated application traffic (this is the surface the Λ
    authenticator builds on) and :meth:`request_signature` for USign.
    """

    def __init__(
        self,
        state: PdsNodeState,
        scheme: SignatureScheme,
        initial_keys: LocalKeys,
        node_id: int,
        relay_fanout: int | None = None,
        cert_retransmit: int = 0,
        cert_grace_rounds: int = 1,
    ) -> None:
        self.state = state
        self.node_id = node_id
        self.n = state.public.n
        self.keystore = KeyStore(scheme)
        self.keystore.current = initial_keys
        if initial_keys.keypair is not None:
            self.keystore.key_reprs[initial_keys.unit] = scheme.key_repr(
                initial_keys.keypair.verify_key
            )
        self.disperse = DisperseService(relay_fanout=relay_fanout)
        self.transport = AuthSendTransport(self.keystore, state.public, self.disperse)
        self.signer = ThresholdSigner(state, self.transport)
        self.refresher = RefreshService(state, self.transport)
        # Part (II) is started explicitly at its offset; the service must
        # not self-start at the top of the refreshment phase
        self.refresher.auto_start = False
        from repro.core.partial_agreement import PartialAgreementService

        self.pa = PartialAgreementService(self.transport, self.disperse, self.n)
        #: units in which this node raised an alert
        self.alert_units: list[int] = []
        #: structured degradation events (also emitted as node output)
        self.degraded_log: list[dict] = []
        if cert_retransmit < 0:
            raise ValueError(f"cert_retransmit must be >= 0, got {cert_retransmit}")
        if cert_grace_rounds < 0:
            raise ValueError(f"cert_grace_rounds must be >= 0, got {cert_grace_rounds}")
        #: bounded retransmissions for certificate DISPERSE (step 5)
        self.cert_retransmit = cert_retransmit
        #: extra rounds to wait for a late certificate before going to φ
        self.cert_grace_rounds = cert_grace_rounds
        self._alerted_now = False
        self._refresh_unit: int | None = None
        self._announced: dict[int, tuple] = {}  # node -> first announced key repr
        self._cert_wanted: dict[bytes, int] = {}  # assertion bytes -> target node
        self._obtained_cert: Any | None = None
        self._certs_completed: set[int] = set()  # targets whose cert we saw complete
        self._switch_deferred = False
        self._part2_begun = False
        self._app_accepted: list[tuple[int, Any]] = []
        self._completed_signatures: list[tuple[bytes, Any]] = []
        self._held_app_sends: list[tuple[int, Any]] = []

    # -- application surface ----------------------------------------------------

    def app_send(self, ctx: NodeContext, receiver: int, message: Any) -> None:
        """Send an application message via AUTH-SEND.

        Messages sent within one transport delay of the refresh-phase key
        switch would be signed with the outgoing unit's keys but verified
        after the switch — and die in flight.  Those sends are buffered
        and flushed right after the switch (which may itself be deferred
        a few rounds while waiting for a late certificate), preserving
        the AL model's delivery guarantee across unit boundaries.
        """
        info = ctx.info
        if self._switch_deferred or (
            info.phase is Phase.REFRESH
            and _O_SWITCH - self.transport.delay <= info.index_in_phase < _O_SWITCH
        ):
            self._held_app_sends.append((receiver, message))
            return
        self.transport.send(ctx, receiver, ("app", message))

    def app_accepted(self) -> list[tuple[int, Any]]:
        """Application messages accepted this round: ``(source, message)``."""
        return list(self._app_accepted)

    def request_signature(self, ctx: NodeContext, message: Any, unit: int) -> bytes:
        """``USign``: join the threshold signing of a user message."""
        message_bytes = pds_message_bytes(("user-msg", message), unit)
        self.signer.request(ctx, message_bytes)
        return message_bytes

    def completed_signatures(self) -> list[tuple[bytes, Any]]:
        """User/certificate signatures completed this round."""
        return list(self._completed_signatures)

    def alerted_this_round(self) -> bool:
        return self._alerted_now

    # -- the per-round engine ------------------------------------------------------

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self._alerted_now = False
        self.disperse.on_round(ctx, inbox)
        self.transport.begin_round(ctx, inbox)
        self._app_accepted = [
            (accepted.sender, accepted.body[1])
            for accepted in self.transport.accepted_view()
            if isinstance(accepted.body, tuple)
            and len(accepted.body) == 2
            and accepted.body[0] == "app"
        ]
        self.pa.on_round(ctx)
        self.signer.on_round(ctx)
        self.refresher.on_round(ctx)
        self._completed_signatures = self.signer.completed()

        # ingest certificates dispersed to us (must precede the key switch)
        for _src, body in self.disperse.receipts(_CERT_TAG):
            if (
                isinstance(body, tuple)
                and len(body) == 3
                and body[0] == "cert-deliver"
            ):
                self._consider_certificate(body[1], body[2])

        # forward freshly completed certificates to their owners (step 5)
        for message_bytes, signature in self._completed_signatures:
            target = self._cert_wanted.get(message_bytes)
            if target is None:
                continue
            self._certs_completed.add(target)
            if target == self.node_id:
                self._consider_certificate(message_bytes, signature)
            else:
                self.disperse.send(
                    ctx, target, ("cert-deliver", message_bytes, signature),
                    tag=_CERT_TAG, retransmit=self.cert_retransmit,
                )

        if ctx.info.phase is Phase.REFRESH:
            self._refresh_round(ctx, inbox)

        for outcome, unit in self.refresher.events():
            if outcome == "failed":
                self._degrade(ctx, unit, "share-refresh-failed")
                self._alert(ctx, unit)

    # -- URfr orchestration -----------------------------------------------------

    def _refresh_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        offset = ctx.info.index_in_phase
        unit = ctx.info.time_unit
        if offset == _O_ANNOUNCE:
            self._begin_refresh(ctx, unit)
        if self._refresh_unit != unit:
            # joined the phase late (e.g. released from a break-in mid-phase):
            # adopt the phase context so later steps still run
            self._refresh_unit = unit
            self._announced = {}
            self._cert_wanted = {}
            self._obtained_cert = None
            self._certs_completed = set()
            self._switch_deferred = False
            self._part2_begun = False
            if self.keystore.pending is None or self.keystore.pending.unit != unit:
                self.keystore.generate_pending(unit, ctx.rng)
        if offset == _O_PA_START:
            self._start_agreements(ctx, unit, inbox)
        if offset == _O_SIGN:
            self._request_certificates(ctx, unit)
        if offset == _O_SWITCH or (self._switch_deferred and offset > _O_SWITCH):
            # the grace window may never outlive the phase: the last
            # refresh round is an unconditional deadline
            deadline = min(_O_SWITCH + self.cert_grace_rounds, ctx.info.phase_length - 1)
            self._try_switch(ctx, unit, final=offset >= deadline)
        if offset == _O_PART2 and not self._part2_begun:
            self._part2_begun = True
            self.refresher.begin(ctx, unit)

    def _begin_refresh(self, ctx: NodeContext, unit: int) -> None:
        """Part (I) steps 1-2: fresh keys, announced in the clear."""
        self._refresh_unit = unit
        self._announced = {}
        self._cert_wanted = {}
        self._obtained_cert = None
        self._certs_completed = set()
        self._switch_deferred = False
        self._part2_begun = False
        self.keystore.generate_pending(unit, ctx.rng)
        my_repr = self.keystore.pending_key_repr()
        for receiver in range(self.n):
            if receiver != self.node_id:
                ctx.send(receiver, NEWKEY_CHANNEL, ("newkey", unit, my_repr))

    def _start_agreements(self, ctx: NodeContext, unit: int, inbox: list[Envelope]) -> None:
        """Part (I) step 3: one PARTIAL-AGREEMENT per announced key
        (first value received per alleged sender counts)."""
        for envelope in ctx.channel_view(inbox, NEWKEY_CHANNEL):
            payload = envelope.payload
            if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == "newkey"):
                continue
            if payload[1] != unit:
                continue
            self._announced.setdefault(envelope.sender, payload[2])
        my_repr = self.keystore.pending_key_repr()
        if my_repr is not None:
            self._announced[self.node_id] = my_repr
        for target in range(self.n):
            pa_id = ("pa", unit, target)
            self.pa.start(ctx, pa_id, self._announced.get(target))

    def _request_certificates(self, ctx: NodeContext, unit: int) -> None:
        """Part (I) step 4: threshold-sign every agreed key."""
        for pa_id, value in self.pa.outputs():
            if value is None or not (isinstance(pa_id, tuple) and pa_id[0] == "pa"):
                continue
            _, pa_unit, target = pa_id
            if pa_unit != unit:
                continue
            assertion = certificate_assertion(target, unit, tuple(value))
            message_bytes = pds_message_bytes(assertion, unit)
            self._cert_wanted[message_bytes] = target
            self.signer.request(ctx, message_bytes)

    def _consider_certificate(self, message_bytes: Any, signature: Any) -> None:
        """Check a certificate dispersed to us against our pending key."""
        if self.keystore.pending is None or self._obtained_cert is not None:
            return
        my_repr = self.keystore.pending_key_repr()
        if my_repr is None or self._refresh_unit is None:
            return
        assertion = certificate_assertion(self.node_id, self._refresh_unit, my_repr)
        if message_bytes != pds_message_bytes(assertion, self._refresh_unit):
            return
        if verify_pds_signature(self.state.public, assertion, self._refresh_unit, signature):
            self._obtained_cert = signature

    def _try_switch(self, ctx: NodeContext, unit: int, final: bool) -> None:
        """Part (I) step 5: adopt the new keys — with graceful degradation.

        The classic protocol goes straight to ``φ`` + alert when no valid
        certificate has arrived by ``_O_SWITCH``.  With a positive
        ``cert_grace_rounds`` the switch is instead *deferred*: the old
        unit's keys stay in force (so ``_consider_certificate`` keeps
        working on late-dispersed receipts) and the install is retried
        each round until the certificate shows up or the deadline passes.
        A late install emits a structured ``degraded`` event but neither
        alerts nor fails the unit; only the deadline turns the shortfall
        into the paper's ``φ`` + alert, from which the node recovers at
        the next refreshment phase as usual.
        """
        if self._obtained_cert is None and not final:
            self._switch_deferred = True
            return
        was_deferred = self._switch_deferred
        self._switch_deferred = False
        ok = self.keystore.install_pending(self._obtained_cert)
        if ok and was_deferred:
            self._degrade(ctx, unit, "certificate-late",
                          deferred_rounds=ctx.info.index_in_phase - _O_SWITCH)
        if not ok:
            self._degrade(ctx, unit, "no-certificate")
            self._alert(ctx, unit)
        for receiver, message in self._held_app_sends:
            self.transport.send(ctx, receiver, ("app", message))
        self._held_app_sends = []
        required = self.n - self.state.public.threshold
        if len(self._certs_completed) < required:
            self._degrade(
                ctx, unit, "partial-certification",
                certificates_completed=len(self._certs_completed),
                required=required,
                missing=sorted(set(range(self.n)) - self._certs_completed),
            )

    def _degrade(self, ctx: NodeContext, unit: int, reason: str, **details: Any) -> None:
        """Emit a structured degradation event (output + local log).

        Degradation is the protocol *surviving* a fault, not a security
        failure: the emulation invariants ignore these entries (they are
        2-tuples) while analyses and the runtime monitor collect them.
        """
        event = {
            "node": self.node_id,
            "unit": unit,
            "round": ctx.info.round,
            "reason": reason,
            **details,
        }
        self.degraded_log.append(event)
        ctx.output(("degraded", event))

    def _alert(self, ctx: NodeContext, unit: int) -> None:
        self.alert_units.append(unit)
        self._alerted_now = True
        ctx.alert()


class UlsProgram(NodeProgram):
    """Stand-alone ULS node: the §3.2 signing interface over UL links.

    External inputs ``("sign", m)`` trigger USign; outputs follow §3.2
    (``asked-to-sign`` / ``signed``) plus ``alert`` per Definition 11.
    """

    def __init__(
        self,
        state: PdsNodeState,
        scheme: SignatureScheme,
        initial_keys: LocalKeys,
        relay_fanout: int | None = None,
        cert_retransmit: int = 0,
        cert_grace_rounds: int = 1,
    ) -> None:
        super().__init__()
        self.core = UlsCore(
            state, scheme, initial_keys, node_id=state.node_id,
            relay_fanout=relay_fanout, cert_retransmit=cert_retransmit,
            cert_grace_rounds=cert_grace_rounds,
        )
        self._pending: dict[bytes, tuple[Any, int]] = {}
        self.signatures: dict[tuple[Any, int], Any] = {}

    @property
    def state(self) -> PdsNodeState:
        return self.core.state

    @property
    def keystore(self) -> KeyStore:
        return self.core.keystore

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.state.public.public_key)
            return
        self.core.on_round(ctx, inbox)
        for value in ctx.external_inputs:
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "sign":
                message = value[1]
                unit = ctx.info.time_unit
                ctx.output(("asked-to-sign", message, unit))
                message_bytes = self.core.request_signature(ctx, message, unit)
                self._pending[message_bytes] = (message, unit)
        for message_bytes, signature in self.core.completed_signatures():
            if message_bytes in self._pending:
                message, unit = self._pending.pop(message_bytes)
                self.signatures[(message, unit)] = signature
                ctx.output(("signed", message, unit))
        # failed signings used to leave their _pending entries behind for
        # the whole run (unbounded under a request stream); drop them with
        # an explicit outcome instead
        for message_bytes in self.core.signer.failed():
            if message_bytes in self._pending:
                message, unit = self._pending.pop(message_bytes)
                ctx.output(("sign-failed", message, unit))
