"""Adversary interface re-export.

The :class:`Adversary` base class and :class:`AdversaryApi` live in
:mod:`repro.sim.adversary_api` (the runner depends on them, and keeping
them inside the ``sim`` package avoids an import cycle); this module
re-exports them under the package where users naturally look for them.
"""

from repro.sim.adversary_api import (
    Adversary,
    AdversaryApi,
    PassiveAdversary,
    faithful_delivery,
)

__all__ = ["Adversary", "AdversaryApi", "PassiveAdversary", "faithful_delivery"]
