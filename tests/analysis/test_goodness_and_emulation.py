"""Tests for execution classification and emulation invariants."""

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import BreakinPlan, CutOffAdversary, MobileBreakInAdversary
from repro.analysis.emulation import check_emulation_invariants
from repro.analysis.goodness import classify_execution
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def run(adversary=None, units=2, sign_plan=None, seed=4):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    for node_id, round_number, message in sign_plan or []:
        runner.add_external_input(node_id, round_number, ("sign", message))
    execution = runner.run(units=units)
    histories = {i: dict(p.keystore.history) for i, p in enumerate(programs)}
    return execution, programs, histories, public


def test_benign_execution_is_good():
    execution, programs, histories, public = run()
    report = classify_execution(execution, public, SCHEME, histories, T)
    assert report.good
    assert report.classification == "GOOD"


def test_mobile_breakins_still_good():
    plan = BreakinPlan(victims={0: frozenset({0, 1})})
    execution, programs, histories, public = run(
        adversary=MobileBreakInAdversary(plan), units=2
    )
    report = classify_execution(execution, public, SCHEME, histories, T)
    assert report.good


def test_cutoff_with_impersonation_is_not_misclassified():
    """Impersonation attempts with stolen keys during the break unit are
    NOT forgeries (Def. 17(c): the node was broken); afterwards the stale
    certificates are not properly certified for the new unit — so the
    execution stays GOOD, exactly as Theorem 14 predicts."""
    impersonator = UlsImpersonator(victim=4)
    adversary = CutOffAdversary(victim=4, break_unit=1, impersonator=impersonator)
    execution, programs, histories, public = run(adversary=adversary, units=3)
    report = classify_execution(execution, public, SCHEME, histories, T)
    assert impersonator.attempts  # the attack really ran
    assert report.forged == []
    # BAD1 requires an *operational* node with phi keys; the cut-off victim
    # is disconnected, so its failed refresh does not make the run bad
    assert report.good


def test_emulation_invariants_benign_signing():
    r0 = SCHED.first_normal_round(0)
    sign_plan = [(i, r0, "alpha") for i in range(N)]
    execution, programs, histories, public = run(units=1, sign_plan=sign_plan)
    report = check_emulation_invariants(execution, T)
    assert report.ok
    assert (("alpha"), 0) in {(m, u) for (m, u) in report.signed_messages}


def test_emulation_invariant_i1_catches_fabricated_signed_line():
    """Tampering with the global output (a signed line without requests)
    is flagged — the invariant really can distinguish."""
    execution, programs, histories, public = run(units=1)
    execution.node_outputs[0].append((5, ("signed", "phantom", 0)))
    report = check_emulation_invariants(execution, T)
    assert any(kind == "I1-threshold" for kind, _ in report.violations)


def test_emulation_invariant_i2_catches_missing_signature():
    execution, programs, histories, public = run(units=1)
    # fabricate: everyone asked, nobody signed
    for i in range(N):
        execution.node_outputs[i].append((5, ("asked-to-sign", "ghost", 0)))
    report = check_emulation_invariants(execution, T)
    assert any(kind == "I2-liveness" for kind, _ in report.violations)


def test_emulation_invariant_i3_catches_false_alert():
    from repro.sim.node import ALERT

    execution, programs, histories, public = run(units=1)
    execution.node_outputs[2].append((5, ALERT))
    report = check_emulation_invariants(execution, T)
    assert any(kind == "I3-false-alert" for kind, _ in report.violations)


def test_goodness_detects_planted_forgery():
    """Plant a genuinely certified message into the delivered transcript
    that its 'sender' never sent: classified as BAD3 (forgery under the
    genuine key)."""
    from dataclasses import replace

    from repro.core.certify import certify

    execution, programs, histories, public = run(units=1)
    keys = programs[3].keystore.current
    target_record = execution.records[6]
    forged = certify(SCHEME, keys, ("never-sent",), 3, 0, target_record.info.round - 2)
    from repro.sim.messages import Envelope

    env = Envelope(sender=3, receiver=0, channel="disperse",
                   payload=("fwding", "auth", 3, 0, tuple(forged)),
                   round_sent=target_record.info.round)
    patched = replace(
        target_record,
        delivered={**target_record.delivered, 0: tuple(target_record.delivered[0]) + (env,)},
    )
    execution.records[6] = patched
    certified = {i: dict(p.keystore.key_reprs) for i, p in enumerate(programs)}
    report = classify_execution(execution, public, SCHEME, histories, T,
                                certified_keys=certified)
    assert not report.good
    assert report.classification == "BAD3"


def test_goodness_detects_rogue_key_as_bad2():
    """A certified message under a key the sender never used would imply a
    rogue certificate: BAD2.  We simulate it by re-certifying with a
    different node's identity baked in via a hand-built certificate."""
    from dataclasses import replace

    from repro.core.certify import certificate_assertion, certify
    from repro.core.keystore import LocalKeys
    from repro.crypto.schnorr import SchnorrSigningKey
    from repro.crypto.shamir import reconstruct_secret
    from repro.pds.threshold_schnorr import pds_message_bytes

    execution, programs, histories, public = run(units=1)
    # forge a certificate using the reconstructed group secret — this is
    # exactly what "the PDS was broken" means, so the classifier must
    # report BAD2
    secret = reconstruct_secret(
        GROUP.scalar_field, [p.state.share for p in programs[:3]]
    )
    import random

    rogue_pair = SCHEME.generate(random.Random(123))
    assertion = certificate_assertion(3, 0, SCHEME.key_repr(rogue_pair.verify_key))
    from repro.crypto.schnorr import SchnorrScheme as CS

    rogue_cert = CS(GROUP).sign(
        SchnorrSigningKey(x=secret, y=public.public_key),
        pds_message_bytes(assertion, 0),
    )
    rogue_keys = LocalKeys(unit=0, keypair=rogue_pair, certificate=rogue_cert)
    target_record = execution.records[6]
    forged = certify(SCHEME, rogue_keys, ("rogue",), 3, 0, target_record.info.round - 2)
    from repro.sim.messages import Envelope

    env = Envelope(sender=3, receiver=0, channel="disperse",
                   payload=("fwding", "auth", 3, 0, tuple(forged)),
                   round_sent=target_record.info.round)
    from dataclasses import replace as _replace

    execution.records[6] = _replace(
        target_record,
        delivered={**target_record.delivered, 0: tuple(target_record.delivered[0]) + (env,)},
    )
    report = classify_execution(execution, public, SCHEME, histories, T)
    assert report.classification == "BAD2"
