"""The simulation-floor layer: flag-by-flag transcript parity, compact
records, bounded DISPERSE bookkeeping, and the faithfulness fast path.

Every sim-floor flag (inbox demux, lazy rng, faithful fast path,
zero-copy records, fault indexing) must be transcript-neutral: a chaos
run with the flag off digests identically to the same run with it on.
Compact records are covered separately — they intentionally drop the
envelopes, so their parity claim goes through the streaming
:class:`~repro.analysis.digest.RoundsDigest` instead.
"""

from repro.analysis.digest import rounds_digest, transcript_digest
from repro.core.disperse import DisperseService
from repro.faults import FaultInjectionAdversary, FaultPlan
from repro.perf import configure
from repro.sim.adversary_api import FaithfulPlan
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import Runner, ULRunner
from repro.sim.transcript import CompactRoundRecord, RoundRecord

N, T = 5, 2
SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=8)
UNITS = 2

FLOOR_FLAGS = [
    "inbox_demux",
    "lazy_rng",
    "faithful_fastpath",
    "zero_copy_records",
    "fault_index",
]


class Chatter(NodeProgram):
    """Ring-probe DISPERSE chatter — the crypto-free floor workload."""

    def __init__(self) -> None:
        super().__init__()
        self.disperse = DisperseService(retransmit=1)
        self.delivered: list = []
        self.secret = "initial-secret"  # default corruption target

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        self.delivered.extend(self.disperse.receipts(""))
        if ctx.info.phase.value == "normal":
            target = (self.node_id + 1) % ctx.n
            self.disperse.send(ctx, target, ("probe", self.node_id, ctx.info.round))


def _run(seed=3, *, units=UNITS, stream_digest=False):
    plan = FaultPlan.generate(seed=seed, n=N, t=T, schedule=SCHED, units=units)
    programs = [Chatter() for _ in range(N)]
    runner = ULRunner(programs, FaultInjectionAdversary(plan), SCHED,
                      s=T, seed=seed, stream_digest=stream_digest)
    execution = runner.run(units=units)
    return execution, programs


# ------------------------------------------------- flag-by-flag parity

def test_each_floor_flag_is_transcript_neutral(perf):
    configure(enabled=True)
    reference = transcript_digest(_run()[0])
    for flag in FLOOR_FLAGS:
        configure(enabled=True, **{flag: False})
        assert transcript_digest(_run()[0]) == reference, f"{flag}=False diverged"
        configure(enabled=True, **{flag: True})
    configure(enabled=False)
    assert transcript_digest(_run()[0]) == reference, "enabled=False diverged"


def test_floor_layer_neutral_across_seeds(perf):
    for seed in (0, 7, 11):
        configure(enabled=True)
        optimized = transcript_digest(_run(seed)[0])
        configure(enabled=False)
        baseline = transcript_digest(_run(seed)[0])
        assert optimized == baseline, f"seed {seed} diverged"


# ------------------------------------------------------ compact records

def test_compact_records_keep_rounds_digest_parity(perf):
    configure(enabled=True, compact_records=False)
    full, _ = _run(stream_digest=True)
    expected = rounds_digest(full)
    # streaming digest over full records equals the post-hoc one
    assert full.rounds_digest == expected
    assert all(isinstance(record, RoundRecord) for record in full.records)

    configure(enabled=True, compact_records=True)
    compact, _ = _run(stream_digest=True)
    assert compact.rounds_digest == expected
    assert all(isinstance(record, CompactRoundRecord) for record in compact.records)
    # count-level views survive compaction
    assert compact.messages_sent() == full.messages_sent()
    assert [r.broken for r in compact.records] == [r.broken for r in full.records]
    assert [r.operational for r in compact.records] == [r.operational for r in full.records]
    assert ([r.delivered_count for r in compact.records]
            == [r.delivered_count for r in full.records])
    assert compact.system_log == full.system_log


# ------------------------------------- bounded DISPERSE state (bugfix)

def test_disperse_relay_dedup_stays_bounded_across_units(perf):
    execution, programs = _run(seed=5, units=4)
    for program in programs:
        service = program.disperse
        # before the fix _relayed accumulated one key per relayed flood
        # for the whole run; now it holds at most the last round's keys
        assert service.messages_relayed > 4 * N
        assert len(service._relayed) <= 4 * N
        assert len(service._fanout_targets) <= N


def test_disperse_relay_dedup_bounded_with_layer_off(perf):
    # the pruning is an unconditional bugfix, not a perf flag
    configure(enabled=False)
    execution, programs = _run(seed=5, units=4)
    for program in programs:
        service = program.disperse
        assert service.messages_relayed > 4 * N
        assert len(service._relayed) <= 4 * N


# ----------------------------------------------- faithful-plan proving

def test_faithful_plan_build_marks_and_mutation_unmarks():
    traffic = (Envelope(0, 1, "c", "x", 4), Envelope(2, 1, "c", "y", 4))
    plan = FaithfulPlan.build(traffic, 3)
    assert plan.source is traffic
    assert sorted(plan) == [0, 1, 2]
    assert plan[1] == list(traffic)
    plan[0] = []  # key-level mutation drops the provenance
    assert plan.source is None


def test_faithful_plan_pickle_roundtrip_drops_marker():
    import pickle

    traffic = (Envelope(0, 1, "c", "x", 4),)
    plan = FaithfulPlan.build(traffic, 2)
    clone = pickle.loads(pickle.dumps(plan))
    assert type(clone) is dict
    assert clone == {0: [], 1: list(traffic)}


# ------------------------------------------- _plan_is_faithful edges

def _env(sender, receiver, payload="x", round_sent=1):
    return Envelope(sender, receiver, "c", payload, round_sent)


def test_plan_is_faithful_accepts_equal_copy_substitution():
    original = _env(0, 1)
    copy = _env(0, 1)  # distinct object, equal content
    assert copy is not original
    assert Runner._plan_is_faithful((original,), {0: [], 1: [copy], 2: []})


def test_plan_is_faithful_rejects_receiver_missing_from_plan():
    # traffic for node 1 but the plan has no inbox for it at all
    assert not Runner._plan_is_faithful((_env(0, 1),), {0: [], 2: []})


def test_plan_is_faithful_rejects_extra_traffic_in_plan():
    sent = _env(0, 1)
    injected = _env(0, 2)
    assert not Runner._plan_is_faithful((sent,), {1: [sent], 2: [injected]})


def test_plan_is_faithful_allows_empty_inbox_receivers():
    sent = _env(0, 1)
    assert Runner._plan_is_faithful((sent,), {0: [], 1: [sent], 2: [], 3: []})
    # a plan-only receiver with an empty inbox is fine; a non-empty one is not
    assert not Runner._plan_is_faithful((), {0: [_env(1, 0)]})
    assert Runner._plan_is_faithful((), {0: [], 1: []})


# --------------------------------------- Envelope hashing fallback

def test_envelope_hash_raises_for_unhashable_payload_and_stays_usable():
    import pytest

    hashable = _env(0, 1, payload=("t", 1))
    assert hash(hashable) == hash(hashable)  # memoized, stable

    unhashable = _env(0, 1, payload=["list", "payload"])
    with pytest.raises(TypeError):
        hash(unhashable)
    with pytest.raises(TypeError):
        hash(unhashable)  # the failed attempt must not cache garbage
    # equality is unaffected
    assert unhashable == _env(0, 1, payload=["list", "payload"])


def test_unreliable_links_fall_back_on_unhashable_payloads(perf):
    """A direction carrying unhashable payloads goes through the legacy
    multiset comparison and still classifies drops correctly."""

    class Dropper:
        pass

    runner = object.__new__(ULRunner)
    runner.n = 3

    sent_ok = _env(0, 1, payload=["unhashable"])
    sent_dropped = _env(1, 2, payload=["also-unhashable"], round_sent=1)
    traffic = (sent_ok, sent_dropped)
    # equal-content copy delivered on 0->1 (id-counts differ, content equal);
    # 1->2 dropped entirely
    plan = {0: [], 1: [_env(0, 1, payload=["unhashable"])], 2: []}
    unreliable = Runner._unreliable_links(runner, traffic, plan, frozenset())
    assert unreliable == frozenset({frozenset({1, 2})})
