"""Shared test fixtures: tiny node programs and adversaries.

These are deliberately trivial protocols used to exercise the *simulator*
semantics (delivery, break-ins, rushing, connectivity) independently of
the real cryptographic protocols.
"""

from __future__ import annotations

from repro.adversary.base import Adversary, AdversaryApi, faithful_delivery
from repro.sim.clock import Phase, RoundInfo
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram


class EchoProgram(NodeProgram):
    """Every round, broadcast a counter and record everything received."""

    def __init__(self) -> None:
        super().__init__()
        self.counter = 0
        self.received: list[tuple[int, int, object]] = []  # (round, sender, payload)
        self.secret = "initial-secret"

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            self.received.append((ctx.info.round, envelope.sender, envelope.payload))
        ctx.broadcast("echo", ("tick", self.node_id, self.counter))
        self.counter += 1


class RomWriterProgram(NodeProgram):
    """Writes a value to ROM during set-up; reports it every normal round."""

    def __init__(self) -> None:
        super().__init__()

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP and ctx.info.is_phase_end:
            ctx.write_rom("anchor", f"anchor-{self.node_id}")
        if ctx.info.phase is Phase.NORMAL:
            ctx.output(("anchor", ctx.rom.get("anchor")))


class InputEchoProgram(NodeProgram):
    """Outputs every external input it receives, stamped with the round."""

    def __init__(self) -> None:
        super().__init__()

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for value in ctx.external_inputs:
            ctx.output(("input", ctx.info.round, value))


class BreakOnceAdversary(Adversary):
    """Breaks one node at a given round, optionally corrupts its state,
    and leaves it some rounds later."""

    def __init__(self, victim: int, break_round: int, leave_round: int,
                 corrupt: bool = False) -> None:
        self.victim = victim
        self.break_round = break_round
        self.leave_round = leave_round
        self.corrupt = corrupt
        self.stolen_state: object = None

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic) -> None:
        if info.round == self.break_round:
            program = api.break_into(self.victim)
            self.stolen_state = getattr(program, "secret", None)
            if self.corrupt and hasattr(program, "secret"):
                program.secret = "corrupted"
        if info.round == self.leave_round:
            api.leave(self.victim)


class LinkDropAdversary(Adversary):
    """UL adversary that silently drops all traffic on chosen links."""

    def __init__(self, dead_links: set[frozenset[int]]) -> None:
        self.dead_links = dead_links

    def deliver(self, api, info, traffic):
        plan = {i: [] for i in range(api.n)}
        for envelope in traffic:
            if frozenset((envelope.sender, envelope.receiver)) in self.dead_links:
                continue
            plan[envelope.receiver].append(envelope)
        return plan


class InjectingAdversary(Adversary):
    """UL adversary that injects one forged message per round to node 0,
    claiming to come from node 1."""

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        forged = api.forge_envelope(1, 0, "echo", ("forged", info.round))
        plan[0].append(forged)
        return plan
