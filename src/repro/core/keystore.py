"""Per-time-unit local keys and certificates (§4.1 items (a)–(c)).

Each node holds, in ordinary (corruptible) RAM:

- its *local keys* for the current time unit: a signing/verification key
  pair of the centralized scheme ``CS``, denoted ``s_i^u, v_i^u``;
- the *certificate* ``cert_i^u``: a PDS signature, verifiable with the
  global verification key in ROM, on the assertion
  "the public key of ``N_i`` in time unit ``u`` is ``v_i^u``".

During Part (I) of a refreshment phase the *next* unit's keys exist in a
pending slot while the previous unit's keys remain in force; the switch
happens when Part (I) completes.  Any component may be ``None`` — the
paper's ``φ`` — meaning the node currently cannot authenticate itself
(and must alert).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.signature import KeyPair, SignatureScheme
from repro.perf.cache import invalidate_verify_key

__all__ = ["LocalKeys", "KeyStore", "certificate_assertion"]


def certificate_assertion(node_id: int, unit: int, key_repr: tuple) -> tuple:
    """The assertion the PDS signs: "the public key of N_i in time unit u
    is v" — as a canonical tuple."""
    return ("cert", node_id, unit, key_repr)


@dataclass
class LocalKeys:
    """One unit's local key material (any part may be ``φ`` = None)."""

    unit: int
    keypair: KeyPair | None = None
    certificate: Any | None = None

    @property
    def usable(self) -> bool:
        """True iff the node can CERTIFY messages with these keys."""
        return self.keypair is not None and self.certificate is not None


class KeyStore:
    """Holds the current (in force) and pending local keys."""

    def __init__(self, scheme: SignatureScheme) -> None:
        self.scheme = scheme
        self.current = LocalKeys(unit=0)
        self.pending: LocalKeys | None = None
        #: per-unit history of whether keys were obtained ("ok"/"failed")
        self.history: list[tuple[int, str]] = []
        #: per-unit canonical repr of the certified verification key —
        #: public data, kept for the BAD2/BAD3 analysis (Defs. 23-24)
        self.key_reprs: dict[int, tuple] = {}

    # -- Part (I) lifecycle --------------------------------------------------

    def generate_pending(self, unit: int, rng: random.Random) -> Any:
        """URfr Part (I) step 1: fresh local keys for ``unit``; returns the
        new verification key."""
        self.pending = LocalKeys(unit=unit, keypair=self.scheme.generate(rng))
        return self.pending.keypair.verify_key

    def pending_key_repr(self) -> tuple | None:
        if self.pending is None or self.pending.keypair is None:
            return None
        return self.scheme.key_repr(self.pending.keypair.verify_key)

    def install_pending(self, certificate: Any | None) -> bool:
        """URfr Part (I) step 5: adopt the pending keys.

        With a certificate, the new keys go into force; without one the
        paper sets ``s = v = cert = φ`` (the caller must alert).  The
        previous unit's signing key is dropped either way (erasure, §6).
        Returns True on success.

        The superseded verification key's bucket in the global
        verification cache is dropped alongside (hygiene, not safety: a
        stale entry could never be consulted for the new unit anyway
        because VER-CERT pins the expected unit before any signature
        check, and fresh keys never repeat).
        """
        if self.current.keypair is not None:
            invalidate_verify_key(self.scheme, self.current.keypair.verify_key)
        if self.pending is None:
            self.current = LocalKeys(unit=self.current.unit + 1)
            self.history.append((self.current.unit, "failed"))
            return False
        unit = self.pending.unit
        if certificate is None:
            self.current = LocalKeys(unit=unit)  # all φ
            self.pending = None
            self.history.append((unit, "failed"))
            return False
        self.pending.certificate = certificate
        self.current = self.pending
        self.pending = None
        self.history.append((unit, "ok"))
        self.key_reprs[unit] = self.scheme.key_repr(self.current.keypair.verify_key)
        return True

    # -- signing-side accessors ---------------------------------------------------

    @property
    def unit(self) -> int:
        """The unit whose keys are currently in force (the ``u`` stamped
        into CERTIFY and checked by VER-CERT)."""
        return self.current.unit

    def can_sign(self) -> bool:
        return self.current.usable
