"""Chaos fault-injection plane: declarative fault schedules + executor.

See :mod:`repro.faults.plan` for the primitives and the safety argument,
:mod:`repro.faults.inject` for execution semantics,
:mod:`repro.faults.budget` + :mod:`repro.faults.adaptive` for
traffic-reactive adversaries under online budget enforcement, and
:mod:`repro.faults.campaign` for escalation / frontier-search campaigns.
"""

from repro.faults.adaptive import (
    STRATEGIES,
    AdaptiveAdversary,
    AdaptiveStrategy,
    CertificateStarverStrategy,
    ExecutionLens,
    RecoveryChaserStrategy,
    StrategyContext,
    TrafficTargeterStrategy,
    make_strategy,
)
from repro.faults.budget import (
    FaultRequest,
    ProjectionReport,
    StBudgetGuard,
    requests_to_faults,
)
from repro.faults.campaign import (
    DEFAULT_LADDER,
    CampaignResult,
    CampaignState,
    CampaignTimeout,
    Probe,
    ProbeOutcome,
    WallClockBudget,
    escalate,
    run_probe,
)
from repro.faults.inject import FaultInjectionAdversary
from repro.faults.plan import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    MemoryCorruptionFault,
    ReorderFault,
    burst,
    default_corruptor,
    mix_seed,
)

__all__ = [
    "AdaptiveAdversary",
    "AdaptiveStrategy",
    "CampaignResult",
    "CampaignState",
    "CampaignTimeout",
    "CertificateStarverStrategy",
    "CrashFault",
    "DEFAULT_LADDER",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "ExecutionLens",
    "FaultInjectionAdversary",
    "FaultPlan",
    "FaultRequest",
    "MemoryCorruptionFault",
    "Probe",
    "ProbeOutcome",
    "ProjectionReport",
    "RecoveryChaserStrategy",
    "ReorderFault",
    "STRATEGIES",
    "StBudgetGuard",
    "StrategyContext",
    "TrafficTargeterStrategy",
    "WallClockBudget",
    "burst",
    "default_corruptor",
    "escalate",
    "make_strategy",
    "mix_seed",
    "requests_to_faults",
    "run_probe",
]
