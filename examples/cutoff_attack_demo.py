#!/usr/bin/env python3
"""The paper's motivating attack, side by side (§1.1 vs §1.3 vs §4).

Scenario: the adversary briefly breaks into node 4 during time unit 1,
steals every key it holds, then *cuts the node off* from the network and
impersonates it with the stolen keys for the rest of the run.

Two key-management schemes face the identical adversary:

1. the **naive strawman** (§1.3): each node signs its next per-unit key
   with its previous one — the adversary forges one "rekey", hijacks the
   victim's key chain, and impersonates it silently, forever;
2. **ULS / the proactive authenticator** (§4–5): fresh keys must be
   certified by a threshold of nodes under the ROM-anchored distributed
   key — the stolen keys die at the next refresh, the forgeries bounce
   off VER-CERT, and the victim raises an alert in every affected unit.

Run:  python examples/cutoff_attack_demo.py
"""

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import CutOffAdversary
from repro.core.authenticator import compile_protocol
from repro.core.naive import NaiveImpersonator, NaiveProgram
from repro.core.uls import build_uls_states, uls_schedule
from repro.core.views import impersonations
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

N, T, UNITS, VICTIM, SEED = 5, 2, 4, 4, 7
GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


class Heartbeat(NodeProgram):
    """The protocol being protected: periodic authenticated heartbeats."""

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.NORMAL:
            ctx.broadcast("heartbeat", ("alive", self.node_id, ctx.info.round))


def attack_naive():
    programs = [NaiveProgram(SCHEME) for _ in range(N)]
    impersonator = NaiveImpersonator(SCHEME, victim=VICTIM, rng_seed=SEED)
    adversary = CutOffAdversary(victim=VICTIM, break_unit=1, impersonator=impersonator)
    schedule = Schedule(setup_rounds=2, refresh_rounds=3, normal_rounds=8)
    runner = ULRunner(programs, adversary, schedule, s=T, seed=SEED)
    return runner.run(units=UNITS)


def attack_uls():
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=SEED)
    programs = compile_protocol([Heartbeat() for _ in range(N)], states, SCHEME, keys)
    impersonator = UlsImpersonator(victim=VICTIM)
    adversary = CutOffAdversary(victim=VICTIM, break_unit=1, impersonator=impersonator)
    runner = ULRunner(programs, adversary, uls_schedule(), s=T, seed=SEED)
    return runner.run(units=UNITS)


def report(name: str, execution) -> None:
    print(f"-- {name}")
    for unit in range(2, UNITS):
        forged = impersonations(execution, VICTIM, unit)
        alerts = execution.alerts_in_unit(VICTIM, unit)
        print(f"   unit {unit}: forged messages accepted as node {VICTIM}'s: "
              f"{len(forged):3d}   victim alerts: {alerts}")


def main() -> None:
    print(f"adversary: break into node {VICTIM} during unit 1, steal its keys,")
    print("cut it off from every other node, impersonate it from unit 2 on.\n")

    naive_execution = attack_naive()
    report("naive strawman (sign new key with old key, §1.3)", naive_execution)
    print("   -> hijacked: the forged rekey chained trust to the adversary's key;")
    print("      the victim has no idea.\n")

    uls_execution = attack_uls()
    report("ULS + proactive authenticator (§4-5)", uls_execution)
    print("   -> protected: stolen keys expired at the refresh, certificates")
    print("      cannot be forged, and the victim alerted every affected unit.")

    # machine-checkable summary
    assert any(impersonations(naive_execution, VICTIM, u) for u in range(2, UNITS))
    assert all(not impersonations(uls_execution, VICTIM, u) for u in range(2, UNITS))
    assert all(uls_execution.alerts_in_unit(VICTIM, u) >= 1 for u in range(2, UNITS))
    assert all(naive_execution.alerts_in_unit(VICTIM, u) == 0 for u in range(UNITS))
    print("\nOK: the paper's comparison reproduced.")


if __name__ == "__main__":
    main()
