"""Tests for CERTIFY / VER-CERT (Fig. 3)."""

import random

import pytest

from repro.core.certify import certify, ver_cert, verify_certified_body
from repro.core.keystore import KeyStore, LocalKeys, certificate_assertion
from repro.core.uls import build_uls_states
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2


@pytest.fixture(scope="module")
def setup():
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=11)
    return public, states, keys


def make_msg(setup, message=("hi",), source=0, destination=1, round_w=7):
    _, _, keys = setup
    return certify(SCHEME, keys[source], message, source, destination, round_w)


def test_round_trip(setup):
    public, _, _ = setup
    msg = make_msg(setup)
    accepted = ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                        expected_unit=0, expected_round=7, raw=tuple(msg))
    assert accepted is not None
    assert accepted.message == ("hi",)
    assert accepted.source == 0


def test_reject_wrong_destination(setup):
    public, _, _ = setup
    msg = make_msg(setup, destination=1)
    assert ver_cert(SCHEME, public, receiver=2, alleged_source=0,
                    expected_unit=0, expected_round=7, raw=tuple(msg)) is None


def test_reject_wrong_alleged_source(setup):
    public, _, _ = setup
    msg = make_msg(setup, source=0)
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=3,
                    expected_unit=0, expected_round=7, raw=tuple(msg)) is None


def test_reject_wrong_round_replay(setup):
    """A replayed message fails the w check (Definition 4's replay
    exclusion is enforced here at the protocol level)."""
    public, _, _ = setup
    msg = make_msg(setup, round_w=7)
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                    expected_unit=0, expected_round=9, raw=tuple(msg)) is None


def test_reject_wrong_unit(setup):
    public, _, _ = setup
    msg = make_msg(setup)
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                    expected_unit=1, expected_round=7, raw=tuple(msg)) is None


def test_reject_tampered_message(setup):
    public, _, _ = setup
    msg = list(make_msg(setup))
    msg[0] = ("tampered",)
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                    expected_unit=0, expected_round=7, raw=tuple(msg)) is None


def test_reject_swapped_certificate(setup):
    """Node 3's certificate does not certify node 0's key."""
    public, _, keys = setup
    msg = list(make_msg(setup))
    msg[7] = keys[3].certificate
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                    expected_unit=0, expected_round=7, raw=tuple(msg)) is None


def test_reject_foreign_key_with_own_signature(setup):
    """Adversary signs with its own fresh key and attaches it: the
    certificate check fails (the key is not certified for the source)."""
    public, _, keys = setup
    rng = random.Random(5)
    adversary_pair = SCHEME.generate(rng)
    fake_keys = LocalKeys(unit=0, keypair=adversary_pair,
                          certificate=keys[0].certificate)
    msg = certify(SCHEME, fake_keys, ("forged",), 0, 1, 7)
    assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                    expected_unit=0, expected_round=7, raw=tuple(msg)) is None


def test_phi_keys_cannot_certify():
    empty = LocalKeys(unit=3)
    assert certify(SCHEME, empty, ("m",), 0, 1, 5) is None


def test_malformed_raw_rejected(setup):
    public, _, _ = setup
    for raw in (None, "junk", (1, 2, 3), tuple(range(8))):
        assert ver_cert(SCHEME, public, receiver=1, alleged_source=0,
                        expected_unit=0, expected_round=7, raw=raw) is None


def test_verify_certified_body_ignores_destination(setup):
    """The PA step-4 variant accepts a message addressed to someone else,
    but still pins author authenticity and time."""
    public, _, _ = setup
    msg = make_msg(setup, destination=3)
    accepted = verify_certified_body(SCHEME, public, expected_unit=0,
                                     expected_round=7, raw=tuple(msg))
    assert accepted is not None
    assert accepted.destination == 3
    # time still pinned
    assert verify_certified_body(SCHEME, public, expected_unit=0,
                                 expected_round=8, raw=tuple(msg)) is None


def test_certificate_assertion_format():
    assertion = certificate_assertion(2, 5, ("schnorr", 1, 2))
    assert assertion == ("cert", 2, 5, ("schnorr", 1, 2))


def test_keystore_lifecycle():
    rng = random.Random(1)
    store = KeyStore(SCHEME)
    assert store.unit == 0
    assert not store.can_sign()
    vk = store.generate_pending(1, rng)
    assert store.pending_key_repr() == SCHEME.key_repr(vk)
    # without a certificate the switch fails and keys become phi
    assert not store.install_pending(None)
    assert store.unit == 1
    assert not store.can_sign()
    assert store.history == [(1, "failed")]
    # next unit succeeds
    store.generate_pending(2, rng)
    assert store.install_pending("some-cert")
    assert store.unit == 2
    assert store.can_sign()
    assert store.history == [(1, "failed"), (2, "ok")]


def test_keystore_install_without_pending():
    store = KeyStore(SCHEME)
    assert not store.install_pending("cert")
    assert store.history == [(1, "failed")]
