"""Input guards inside the threshold signer.

``_share_at`` must reject evaluation points that are not positive ints —
``x = 0`` is the secret's own point, and a stringly-typed index off the
wire must never reach polynomial evaluation.  ``_group_nonce`` must
reject qualified sets with duplicate dealers, which would double-count a
dealer's nonce contribution.
"""

import random

import pytest

from repro.crypto.feldman import FeldmanDealer
from repro.crypto.group import named_group
from repro.crypto.shamir import Share
from repro.pds.keys import deal_initial_states
from repro.pds.threshold_schnorr import ThresholdSigner, _Dealing, _Session, _share_at
from repro.pds.transport import DirectTransport

GROUP = named_group("toy64")


def test_share_at_accepts_positive_points():
    share = _share_at(1, 42)
    assert isinstance(share, Share)
    assert (share.x, share.value) == (1, 42)
    assert _share_at(7, 0).x == 7


@pytest.mark.parametrize("x", [0, -1, -7, "2", 2.0, None])
def test_share_at_rejects_non_positive_or_non_int_points(x):
    with pytest.raises(ValueError, match="share evaluation point"):
        _share_at(x, 42)


def _signer_with_session(seed=0):
    rng = random.Random(seed)
    public, states = deal_initial_states(GROUP, n=5, threshold=2, rng=rng)
    signer = ThresholdSigner(states[0], DirectTransport())
    session = _Session(message_bytes=b"m", start_round=0)
    dealer = FeldmanDealer(GROUP, n=5, threshold=2)
    for d in range(1, 4):
        dealing = dealer.deal(rng.randrange(GROUP.q), rng)
        session.dealings[d] = _Dealing(
            commitment=dealing.commitment,
            my_share_value=dealing.shares[0].value,
        )
    return signer, session


def test_group_nonce_rejects_duplicate_dealers():
    signer, session = _signer_with_session()
    with pytest.raises(ValueError, match="duplicate dealers"):
        signer._group_nonce(session, (1, 1))
    with pytest.raises(ValueError, match="duplicate dealers"):
        signer._group_nonce(session, (2, 3, 2))


def test_group_nonce_is_product_of_public_constants():
    signer, session = _signer_with_session(seed=1)
    expected = GROUP.multiply(
        session.dealings[1].commitment.public_constant,
        session.dealings[2].commitment.public_constant,
    )
    assert signer._group_nonce(session, (1, 2)) == expected
    # empty qualified set is the group identity (vacuous product)
    assert signer._group_nonce(session, ()) == GROUP.identity
