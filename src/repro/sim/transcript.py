"""Execution transcripts and global outputs (§2.1–2.2).

The transcript of an execution records, per round, everything relevant:
the traffic placed on the links, what was actually delivered, which nodes
were broken, which were s-operational, and which links were unreliable.
The *global output* (the object the paper's emulation definitions compare)
is assembled from the node outputs plus the externally-added system-log
lines ("Node i is compromised/recovered").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.clock import RoundInfo, Schedule
from repro.sim.messages import Envelope

__all__ = [
    "RoundRecord",
    "CompactRoundRecord",
    "Execution",
    "COMPROMISED",
    "RECOVERED",
]

COMPROMISED = "compromised"
RECOVERED = "recovered"


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one round.

    Records are read-only in both letter and spirit: with the zero-copy
    perf flag on, ``delivered`` shares the delivery plan's own lists
    instead of per-receiver tuples, so mutating a record would corrupt
    the transcript.
    """

    info: RoundInfo
    sent: tuple[Envelope, ...]
    delivered: dict[int, tuple[Envelope, ...]]
    broken: frozenset[int]
    operational: frozenset[int]
    unreliable_links: frozenset[frozenset[int]]

    @property
    def sent_count(self) -> int:
        return len(self.sent)

    @property
    def delivered_count(self) -> int:
        return sum(len(envelopes) for envelopes in self.delivered.values())

    @property
    def sent_by_channel(self) -> dict[str, int]:
        """Envelope counts per channel (computed from ``sent``)."""
        counts: dict[str, int] = {}
        for envelope in self.sent:
            counts[envelope.channel] = counts.get(envelope.channel, 0) + 1
        return counts


@dataclass(frozen=True)
class CompactRoundRecord:
    """A round record that keeps counts instead of envelopes.

    Produced when ``PerfConfig.compact_records`` is on (benchmark-sweep
    mode): the status fields analyses need (broken / operational /
    unreliable links, and the traffic *volumes*) survive, while the
    envelopes themselves are dropped the moment the round ends.  Runs in
    this mode remain comparable to full-mode runs through the streaming
    :class:`~repro.analysis.digest.RoundsDigest`
    (``Runner(stream_digest=True)``).
    """

    info: RoundInfo
    sent_count: int
    delivered_count: int
    broken: frozenset[int]
    operational: frozenset[int]
    unreliable_links: frozenset[frozenset[int]]
    #: envelope counts per channel — the message-volume benchmarks read
    #: traffic composition without keeping the envelopes themselves
    sent_by_channel: dict[str, int] = field(default_factory=dict)


@dataclass
class Execution:
    """Transcript + outputs of one run (AL-TRANS / UL-TRANS and the
    corresponding global output, in one object)."""

    n: int
    schedule: Schedule
    seed: Any
    model: str  # "AL" or "UL"
    records: list[RoundRecord] = field(default_factory=list)
    node_outputs: list[list[tuple[int, Any]]] = field(default_factory=list)
    adversary_output: list[Any] = field(default_factory=list)
    system_log: list[tuple[int, int, str]] = field(default_factory=list)  # (round, node, event)
    # set by Runner(stream_digest=True): the streaming per-round canonical
    # digest (see repro.analysis.digest.RoundsDigest)
    rounds_digest: str | None = None

    # -- views ---------------------------------------------------------------

    def outputs_of(self, node_id: int) -> list[Any]:
        """Local output entries of one node, in order (round stamps dropped)."""
        return [entry for _, entry in self.node_outputs[node_id]]

    def outputs_of_in_unit(self, node_id: int, unit: int) -> list[Any]:
        """Entries a node output during a specific time unit."""
        rounds = set(self.schedule.rounds_of_unit(unit))
        return [entry for rnd, entry in self.node_outputs[node_id] if rnd in rounds]

    def global_output(self) -> list[tuple[str, ...]]:
        """The paper's global output: per-node outputs and system-log lines
        merged in round order, plus the adversary output.

        Returned as a flat list of tuples
        ``("node", round, i, entry)`` / ``("system", round, i, event)`` /
        ``("adversary", entry)`` — a canonical, comparable form.
        """
        lines: list[tuple] = []
        events: list[tuple[int, int, tuple]] = []
        for node_id, outputs in enumerate(self.node_outputs):
            for rnd, entry in outputs:
                events.append((rnd, node_id, ("node", rnd, node_id, entry)))
        for rnd, node_id, event in self.system_log:
            events.append((rnd, node_id, ("system", rnd, node_id, event)))
        events.sort(key=lambda item: (item[0], item[1]))
        lines.extend(line for _, _, line in events)
        lines.extend(("adversary", entry) for entry in self.adversary_output)
        return lines

    # -- round/unit accessors ------------------------------------------------

    def record_at(self, round_number: int) -> RoundRecord:
        return self.records[round_number]

    def units(self) -> int:
        """Number of time units covered (0-based last unit + 1)."""
        if not self.records:
            return 0
        return self.records[-1].info.time_unit + 1

    def rounds_in_unit(self, unit: int) -> list[RoundRecord]:
        return [rec for rec in self.records if rec.info.time_unit == unit]

    # -- statistics ------------------------------------------------------------

    def messages_sent(self, rounds: Iterable[int] | None = None) -> int:
        """Total envelopes placed on the links (optionally restricted)."""
        if rounds is None:
            return sum(rec.sent_count for rec in self.records)
        wanted = set(rounds)
        return sum(rec.sent_count for rec in self.records if rec.info.round in wanted)

    def broken_in_unit(self, unit: int) -> frozenset[int]:
        """Union of broken sets over a unit's rounds."""
        nodes: set[int] = set()
        for rec in self.rounds_in_unit(unit):
            nodes |= rec.broken
        return frozenset(nodes)

    def impaired_in_unit(self, unit: int) -> frozenset[int]:
        """Nodes broken *or* non-operational at some round of the unit
        (the quantity bounded by Definition 7)."""
        nodes: set[int] = set()
        for rec in self.rounds_in_unit(unit):
            nodes |= rec.broken
            nodes |= frozenset(range(self.n)) - rec.operational
        return frozenset(nodes)

    def operational_at_end_of_unit(self, unit: int) -> frozenset[int]:
        return self.rounds_in_unit(unit)[-1].operational

    def alerts_in_unit(self, node_id: int, unit: int) -> int:
        from repro.sim.node import ALERT

        return sum(1 for entry in self.outputs_of_in_unit(node_id, unit) if entry == ALERT)
