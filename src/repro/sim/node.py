"""Nodes and node programs.

A :class:`NodeProgram` is the per-node protocol code (the paper's π,
stored in ROM: the simulator never lets an adversary replace it).  All
*mutable* protocol state must live in attributes of the program object —
on a break-in the adversary receives the program object itself and may
read and mutate every attribute, which models the paper's "the adversary
learns the current internal state ... and may also modify it".

A :class:`NodeContext` is handed to the program every round; it carries
the round label, the node's fresh per-round randomness ``r_{i,w}``, the
ROM, any external inputs for this round (the paper's ``x_{i,w}``), and
the send/output effectors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.sim.clock import Phase, RoundInfo
from repro.sim.messages import Envelope
from repro.sim.rom import Rom

__all__ = ["NodeContext", "NodeProgram", "Node", "ALERT"]

#: The distinguished alert output entry (Definition 11).
ALERT = ("alert",)

_NO_INBOX: list[Envelope] = []


class NodeContext:
    """Per-round execution context for one node (see module docstring).

    ``rng`` may be either a ready ``random.Random`` or a zero-arg factory
    for one: deriving the paper's ``r_{i,w}`` costs a PRF evaluation plus
    a ``Random`` construction per node per round, which dominates
    crypto-free workloads whose programs never draw randomness.  The
    factory is invoked (once) on first access, so the stream any program
    actually sees is identical either way.

    ``inbox`` optionally binds the round's delivered messages, enabling
    :meth:`channel_view` — the shared per-channel demultiplexer that lets
    every sub-protocol of a multiplexing program read only its own
    channel instead of re-scanning the whole inbox.
    """

    def __init__(
        self,
        node_id: int,
        n: int,
        info: RoundInfo,
        rng: Any,
        rom: Rom,
        external_inputs: list[Any],
        inbox: list[Envelope] | None = None,
        demux: bool = False,
    ) -> None:
        self.node_id = node_id
        self.n = n
        self.info = info
        if callable(rng):
            self._rng = None
            self._rng_factory = rng
        else:
            self._rng = rng
            self._rng_factory = None
        self.rom = rom
        self.external_inputs = external_inputs
        self.inbox = _NO_INBOX if inbox is None else inbox
        self._demux = demux
        self._bins: dict[str, list[Envelope]] | None = None
        self.outbox: list[Envelope] = []
        self.outputs: list[Any] = []

    @property
    def rng(self) -> Any:
        rng = self._rng
        if rng is None and self._rng_factory is not None:
            rng = self._rng = self._rng_factory()
        return rng

    # -- inbox views -------------------------------------------------------

    def channel_view(self, inbox: list[Envelope], channel: str) -> list[Envelope]:
        """The envelopes of ``inbox`` on ``channel``, in arrival order.

        When ``inbox`` is this round's bound inbox and demultiplexing is
        on, the answer comes from per-channel bins built in one pass on
        first use (every consumer shares them); otherwise it is a plain
        scan.  Either way the result is the exact order-preserving filter
        — callers must treat the returned list as read-only.
        """
        if self._demux and inbox is self.inbox:
            bins = self._bins
            if bins is None:
                bins = self._bins = {}
                for envelope in inbox:
                    bin_ = bins.get(envelope.channel)
                    if bin_ is None:
                        bin_ = bins[envelope.channel] = []
                    bin_.append(envelope)
            return bins.get(channel, _NO_INBOX)
        return [envelope for envelope in inbox if envelope.channel == channel]

    # -- effectors ---------------------------------------------------------

    def send(self, receiver: int, channel: str, payload: Any) -> None:
        """Queue a message for delivery at the start of the next round."""
        if receiver == self.node_id:
            raise ValueError("no self-links; handle local delivery in the program")
        if not (0 <= receiver < self.n):
            raise ValueError(f"receiver {receiver} out of range")
        self.outbox.append(
            Envelope(self.node_id, receiver, channel, payload, self.info.round)
        )

    def fanout(self, receivers: list[int], channel: str, payload: Any) -> None:
        """Queue the same payload for several receivers.

        Semantically identical to calling :meth:`send` once per receiver
        (same validation, same outbox order); exists because flood-style
        protocols queue hundreds of thousands of envelopes per run and the
        per-call attribute traffic of ``send`` is measurable at that scale.
        """
        node_id = self.node_id
        n = self.n
        round_number = self.info.round
        append = self.outbox.append
        for receiver in receivers:
            if receiver == node_id:
                raise ValueError("no self-links; handle local delivery in the program")
            if not (0 <= receiver < n):
                raise ValueError(f"receiver {receiver} out of range")
            append(Envelope(node_id, receiver, channel, payload, round_number))

    def broadcast(self, channel: str, payload: Any) -> None:
        """Send the same payload to every other node (n-1 point-to-point
        messages; *not* a consistent-broadcast primitive).  Delegates to
        the validated :meth:`fanout` fast path — same checks, same outbox
        order as n-1 :meth:`send` calls."""
        node_id = self.node_id
        self.fanout(
            [receiver for receiver in range(self.n) if receiver != node_id],
            channel,
            payload,
        )

    def output(self, entry: Any) -> None:
        """Append an entry to this node's local output (the global output
        of the execution concatenates these, §2.1)."""
        self.outputs.append(entry)

    def alert(self) -> None:
        """Emit the special alert signal (Definition 11)."""
        self.output(ALERT)

    def write_rom(self, key: str, value: Any) -> None:
        """Write to the node's data ROM — only legal during set-up (§2.2)."""
        if self.info.phase is not Phase.SETUP:
            raise PermissionError("ROM writes are only allowed during the set-up phase")
        self.rom.write(key, value)


class NodeProgram(ABC):
    """Abstract per-node protocol.

    Subclasses must call ``super().__init__()`` and keep all mutable state
    on ``self`` so break-ins capture it.
    """

    def __init__(self) -> None:
        self.node_id: int = -1
        self.n: int = 0

    def bind(self, node_id: int, n: int) -> None:
        """Called once by the runner before the first round."""
        self.node_id = node_id
        self.n = n

    @abstractmethod
    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Execute one communication round.

        ``inbox`` holds the messages delivered at the start of this round
        (i.e. sent in the previous round).  Sends and outputs go through
        ``ctx``.
        """


class Node:
    """Runtime wrapper: program + ROM + output log + break-in status."""

    def __init__(self, node_id: int, program: NodeProgram, n: int) -> None:
        self.node_id = node_id
        self.program = program
        self.rom = Rom()
        self.broken = False
        self.outputs: list[tuple[int, Any]] = []  # (round, entry)
        self.pending_inbox: list[Envelope] = []
        program.bind(node_id, n)

    def record_outputs(self, round_number: int, entries: list[Any]) -> list[tuple[int, Any]]:
        """Stamp ``entries`` with the round and append them; returns the
        stamped batch so the runner can mirror it into the execution's
        per-node output log without re-stamping."""
        stamped = [(round_number, entry) for entry in entries]
        self.outputs.extend(stamped)
        return stamped
