"""The performance layer: caches, precomputation and batching.

Everything in this package is *transcript-neutral*: turning any flag on
or off changes wall-clock time, never protocol behaviour.  The E14
benchmark (``benchmarks/bench_e14_perf.py``) measures the layer against
the unoptimized baseline and asserts bit-identical transcripts both ways;
``docs/PROTOCOLS.md`` §12 states the security argument for each piece.

Components:

* :mod:`repro.perf.config` — process-global feature switches
  (``REPRO_PERF=0`` disables the whole layer);
* :mod:`repro.perf.cache` — the signature-verification cache and the
  identity-keyed canonical-encoding cache;
* :mod:`repro.perf.fixed_base` — fixed-base exponentiation windows used
  by :class:`repro.crypto.group.SchnorrGroup` for ``g`` and long-lived
  keys such as ``v_cert``.

Batch Schnorr verification lives with the scheme itself
(:meth:`repro.crypto.schnorr.SchnorrScheme.batch_verify`); the batched
VER-CERT entry point is :func:`repro.core.certify.ver_cert_many`.
"""

from repro.perf.cache import (
    CanonicalKeyCache,
    VerificationCache,
    cached_verify,
    canonical_body_key,
    invalidate_verify_key,
    verification_cache,
)
from repro.perf.config import (
    PerfConfig,
    clear_all_caches,
    configure,
    perf_config,
    register_cache_clearer,
)
from repro.perf.fixed_base import FixedBaseWindow
from repro.perf.volume import BROADCAST, responder_sample, sample_size

__all__ = [
    "BROADCAST",
    "responder_sample",
    "sample_size",
    "PerfConfig",
    "perf_config",
    "configure",
    "register_cache_clearer",
    "clear_all_caches",
    "VerificationCache",
    "verification_cache",
    "cached_verify",
    "invalidate_verify_key",
    "CanonicalKeyCache",
    "canonical_body_key",
    "FixedBaseWindow",
]
