"""The proactive authenticator Λ (paper §5).

Λ is a *compiler*: given any protocol π written for the AL model, Λ(π)
runs in the UL model and t-emulates π (Theorem 30), while being
(t,t)-aware (Proposition 31).  The construction reuses the ULS machinery
wholesale — the paper's observation is that ULS already equips every node
with certified per-unit keys, so π's messages can ride the same AUTH-SEND
channel instead of invoking the threshold signer per message:

- the *top layer* runs π unchanged: its ``send`` calls are intercepted
  and routed through AUTH-SEND, and its inbox is reassembled from the
  accepted (properly certified) messages;
- the *bottom layer* is ULS's URfr: fresh keys + certificates every
  refreshment phase, PDS share refresh, alerts on failure.

The compiled program additionally emits ``("app-sent", dst, channel,
payload)`` and ``("app-recv", src, channel, payload)`` output lines;
these land in the execution's tamper-evident global output and are what
:mod:`repro.core.views` uses to compute the Definition-10 internal and
external views and detect impersonation.
"""

from __future__ import annotations

from typing import Any

from repro.core.keystore import LocalKeys
from repro.core.uls import UlsCore
from repro.crypto.signature import SignatureScheme
from repro.pds.keys import PdsNodeState
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram

__all__ = ["AuthenticatedProgram", "compile_protocol"]


class _TopLayerContext:
    """The NodeContext façade handed to π: identical surface, but sends
    are routed through AUTH-SEND and logged."""

    def __init__(self, real: NodeContext, core: UlsCore) -> None:
        self._real = real
        self._core = core
        self.node_id = real.node_id
        self.n = real.n
        self.info = real.info
        self.rom = real.rom
        self.external_inputs = real.external_inputs
        self.outputs = real.outputs

    @property
    def rng(self) -> Any:
        # forwarded lazily: resolving it here would force the per-round
        # randomness derivation even when π never draws from it
        return self._real.rng

    def channel_view(self, inbox: list[Envelope], channel: str) -> list[Envelope]:
        # π's inbox is reassembled, never the bound one — plain filter
        return [envelope for envelope in inbox if envelope.channel == channel]

    def send(self, receiver: int, channel: str, payload: Any) -> None:
        if receiver == self.node_id or not (0 <= receiver < self.n):
            raise ValueError(f"bad receiver {receiver}")
        self._core.app_send(self._real, receiver, (channel, payload))
        self._real.output(("app-sent", receiver, channel, payload))

    def broadcast(self, channel: str, payload: Any) -> None:
        for receiver in range(self.n):
            if receiver != self.node_id:
                self.send(receiver, channel, payload)

    def output(self, entry: Any) -> None:
        self._real.output(entry)

    def alert(self) -> None:
        self._real.alert()

    def write_rom(self, key: str, value: Any) -> None:
        self._real.write_rom(key, value)


class AuthenticatedProgram(NodeProgram):
    """Λ(π) for one node.

    Args:
        inner: the top-layer protocol π (any :class:`NodeProgram`).
        state / scheme / initial_keys: ULS bootstrap material from
            :func:`~repro.core.uls.build_uls_states`.

    During the set-up phase π runs over the raw (reliable) links; from
    then on its traffic is authenticated.  π's messages are delivered two
    rounds after sending (the AUTH-SEND delay) — the emulated AL adversary
    simply runs the network at half speed.
    """

    def __init__(
        self,
        inner: NodeProgram,
        state: PdsNodeState,
        scheme: SignatureScheme,
        initial_keys: LocalKeys,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.core = UlsCore(state, scheme, initial_keys, node_id=state.node_id)

    def bind(self, node_id: int, n: int) -> None:
        super().bind(node_id, n)
        self.inner.bind(node_id, n)

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.core.state.public.public_key)
            # π runs natively during the adversary-free set-up
            self.inner.step(ctx, inbox)
            return

        self.core.on_round(ctx, inbox)

        top_inbox: list[Envelope] = []
        for source, body in self.core.app_accepted():
            if not (isinstance(body, tuple) and len(body) == 2):
                continue
            channel, payload = body
            ctx.output(("app-recv", source, channel, payload))
            top_inbox.append(
                Envelope(
                    sender=source,
                    receiver=ctx.node_id,
                    channel=channel,
                    payload=payload,
                    round_sent=ctx.info.round - self.core.transport.delay,
                )
            )
        self.inner.step(_TopLayerContext(ctx, self.core), top_inbox)


def compile_protocol(
    inner_programs: list[NodeProgram],
    states: list[PdsNodeState],
    scheme: SignatureScheme,
    initial_keys: list[LocalKeys],
) -> list[AuthenticatedProgram]:
    """Apply Λ to a whole protocol: one compiled program per node."""
    if not (len(inner_programs) == len(states) == len(initial_keys)):
        raise ValueError("one inner program, state and key set per node")
    return [
        AuthenticatedProgram(inner, state, scheme, keys)
        for inner, state, keys in zip(inner_programs, states, initial_keys)
    ]
