"""Tests for the metrics helpers."""

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.analysis.metrics import (
    alert_counts,
    certification_availability,
    delivery_rate,
    message_stats,
    recovery_units,
)
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def run(adversary=None, units=2, seed=12):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    execution = runner.run(units=units)
    return execution, programs


def test_message_stats_totals_consistent():
    execution, _ = run()
    stats = message_stats(execution)
    assert stats.total == execution.messages_sent()
    assert stats.total == sum(stats.by_phase.values())
    assert stats.total == sum(stats.by_channel.values())
    assert stats.per_refresh_phase > 0
    assert "disperse" in stats.by_channel
    assert "newkey" in stats.by_channel


def test_alert_counts_empty_for_benign_run():
    execution, _ = run()
    assert alert_counts(execution) == {}


def test_certification_availability():
    assert certification_availability({0: {1: "ok"}, 1: {1: "failed"}}, units=2) == 0.5
    assert certification_availability({}, units=1) == 1.0


def test_delivery_rate():
    assert delivery_rate(10, 7) == 0.7
    assert delivery_rate(0, 0) == 1.0


def test_recovery_units_tracks_refresh_promotions():
    plan = BreakinPlan(victims={0: frozenset({3})})
    execution, _ = run(adversary=MobileBreakInAdversary(plan), units=2)
    assert recovery_units(execution, 3) == [1]
    assert recovery_units(execution, 0) == []
