"""Randomized composite-adversary fuzzing of the full ULS stack.

Each case composes a random-but-in-limits adversary — rotating break-ins,
scheduled link faults concentrated on at most ``t`` victims per unit, and
replay — runs several units, then asserts the Theorem 14 bundle: the
execution classifies GOOD, the emulation invariants hold, every
connectivity-intact node ends certified with a valid share, and every
node that missed a certificate alerted.
"""

import random

import pytest

from repro.adversary.strategies import (
    BreakinPlan,
    ComposedAdversary,
    LinkAttackAdversary,
    LinkFault,
    MobileBreakInAdversary,
    ReplayAdversary,
)
from repro.analysis.emulation import check_emulation_invariants
from repro.analysis.goodness import classify_execution
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T, UNITS = 5, 2, 3
SCHED = uls_schedule()


def random_adversary(rng: random.Random):
    strategies = []
    # rotating break-ins on a random subset of units
    victims = {}
    for unit in range(1, UNITS):
        if rng.random() < 0.7:
            victims[unit] = frozenset(rng.sample(range(N), rng.randint(1, T)))
    if victims:
        strategies.append(MobileBreakInAdversary(BreakinPlan(victims=victims)))
    # link faults against at most one victim's links during normal rounds
    # (keeping the per-unit impairment within t together with break-ins
    # is the fuzzer's job: it only faults links of already-broken victims
    # or, in break-free units, of one extra node)
    for unit in range(1, UNITS):
        pool = victims.get(unit, None)
        target = rng.choice(sorted(pool)) if pool else rng.randrange(N)
        if rng.random() < 0.5:
            rounds = list(SCHED.rounds_of_unit(unit))
            normal = [r for r in rounds if SCHED.info(r).phase.value == "normal"]
            if not normal:
                continue
            first, last = normal[0], normal[-1]
            peers = rng.sample([j for j in range(N) if j != target],
                               rng.randint(1, N - 1))
            for peer in peers:
                strategies.append(LinkAttackAdversary([
                    LinkFault(link=frozenset({target, peer}),
                              first_round=first, last_round=last)
                ]))
    if rng.random() < 0.5:
        strategies.append(ReplayAdversary(delay=rng.randint(2, 4)))
    if not strategies:
        strategies.append(ReplayAdversary(delay=2))
    return ComposedAdversary(strategies)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_composite_adversaries_stay_good(seed):
    rng = random.Random(1000 + seed)
    adversary = random_adversary(rng)
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=seed)
    execution = runner.run(units=UNITS)

    histories = {i: dict(p.keystore.history) for i, p in enumerate(programs)}
    certified = {i: dict(p.keystore.key_reprs) for i, p in enumerate(programs)}
    goodness = classify_execution(execution, public, SCHEME, histories, T,
                                  certified_keys=certified)
    assert goodness.classification == "GOOD", goodness.forged or goodness.bad1_failures

    invariants = check_emulation_invariants(execution, T)
    assert invariants.ok, invariants.violations

    for i, program in enumerate(programs):
        for unit in range(1, UNITS):
            if histories[i].get(unit) == "failed":
                # a failed refresh must have been alerted
                assert unit in program.core.alert_units
