#!/usr/bin/env python3
"""Quickstart: a proactively-secure 5-node signing network under attack.

Builds the UL-model proactive distributed signature scheme (ULS) from the
paper, runs it for three time units while a mobile adversary breaks into
two different nodes every unit, and shows that:

- threshold signing works in every unit;
- signatures verify against the single, never-changing public key
  (the one each node keeps in ROM);
- broken nodes recover automatically at the next refreshment phase;
- nobody ever raises a false alert.

Run:  python examples/quickstart.py
"""

import random

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.runner import ULRunner

N, T, UNITS, SEED = 5, 2, 3, 2026


def main() -> None:
    group = named_group("toy64")  # swap for "toy512" / "modp1024" for real sizes
    scheme = SchnorrScheme(group)

    print(f"== set-up: dealing a {T}-of-{N} proactive signature scheme")
    public, states, keys = build_uls_states(group, scheme, N, T, seed=SEED)
    print(f"   global verification key (goes in every node's ROM): "
          f"{public.public_key % 10**12:012d}...")

    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(N)]
    schedule = uls_schedule()

    plan = BreakinPlan.rotating(N, T, UNITS, random.Random(SEED))
    print(f"== adversary: mobile break-ins, {T} fresh victims per unit: "
          f"{ {u: sorted(v) for u, v in plan.victims.items()} }")
    adversary = MobileBreakInAdversary(plan)

    runner = ULRunner(programs, adversary, schedule, s=T, seed=SEED)
    for unit in range(UNITS):
        round_number = schedule.first_normal_round(unit)
        for node in range(N):
            runner.add_external_input(node, round_number, ("sign", f"ledger-entry-{unit}"))

    print(f"== running {UNITS} time units "
          f"({schedule.total_rounds(UNITS)} communication rounds)...")
    execution = runner.run(units=UNITS)

    print("== results")
    for unit in range(UNITS):
        message = f"ledger-entry-{unit}"
        # any non-broken node holds the signature; broken ones missed it
        signature = next(
            (p.signatures[(message, unit)] for p in programs
             if (message, unit) in p.signatures),
            None,
        )
        ok = signature is not None and verify_user_signature(public, message, unit, signature)
        broken = str(sorted(execution.broken_in_unit(unit)) or "none")
        print(f"   unit {unit}: broken nodes {broken:<12}  "
              f"'{message}' signed and verified: {ok}")
        assert ok

    for program in programs:
        assert program.state.share_is_valid(), "every share healthy after refreshes"
        assert program.core.alert_units == [], "no false alerts"
    refreshes = {tuple(p.keystore.history) for p in programs}
    print(f"   key refreshes per node: {refreshes.pop()}")
    print(f"   total messages on the wire: {execution.messages_sent()}")
    print("== OK: signing survived repeated break-ins; all nodes recovered.")


if __name__ == "__main__":
    main()
