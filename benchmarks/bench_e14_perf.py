"""E14 — the performance layer: speedup with bit-identical transcripts.

Every sweep point is one full simulated execution — the E13 chaos
workloads (DISPERSE chatter and full ULS under seeded fault plans) and
the E8 refresh at growing ``n`` — run twice in the same process: once
with the perf layer disabled (``configure(enabled=False)``, all caches
cleared) and once enabled (caches cleared first, so the optimized run
starts cold and warms itself, which is the real workload pattern).  For
each point we record

* a deterministic transcript digest of both runs — they must be equal
  (the layer is transcript-neutral, see docs/PROTOCOLS.md §12), and
* the wall-clock of both runs and their ratio.

Sweep points fan out across worker processes (``--jobs N``).  The JSON
report separates the deterministic payload from the ``timing`` section:
stripping ``timing`` must yield byte-identical output for any ``--jobs``
value (the transcripts are replayed, not re-randomized), which
``test_e14_jobs_do_not_change_results`` checks by running the sweep both
serially and in parallel.

Regenerate the committed report with::

    PYTHONPATH=src python benchmarks/bench_e14_perf.py --jobs 8

``BENCH_SMOKE=1`` shrinks the sweep to a CI-sized sanity check (and the
smoke report goes to ``BENCH_E14_smoke.json``, leaving the committed
full-sweep ``BENCH_E14.json`` alone).
"""

import argparse
import json
import os
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

if __name__ == "__main__":  # script mode: make src/ importable without PYTHONPATH
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.perf import configure

from common import build_uls_network, emit_json, format_table, transcript_digest
from bench_e13_chaos import run_disperse_chaos, run_uls_chaos

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

E8_T = 2
E8_UNITS = 2

# the full sweep backs the committed BENCH_E14.json; the smoke sweep is
# the CI sanity check (one point per workload kind)
FULL_POINTS = (
    [("disperse", seed) for seed in range(0, 10)]
    + [("uls", seed) for seed in range(100, 110)]
    + [("e8", n) for n in (9, 13)]
)
SMOKE_POINTS = [("disperse", 0), ("uls", 100), ("e8", 6)]


def sweep_points():
    return SMOKE_POINTS if SMOKE else FULL_POINTS


def point_id(point) -> str:
    kind, param = point
    return f"{kind}-{param}"


# ------------------------------------------------------------ workloads

def _run_e8(n: int):
    public, programs, runner, schedule = build_uls_network(n, E8_T, seed=0)
    execution = runner.run(units=E8_UNITS)
    return execution


def _run_point(point):
    kind, param = point
    if kind == "disperse":
        _, execution, _, _ = run_disperse_chaos(param)
    elif kind == "uls":
        _, execution, _, _ = run_uls_chaos(param)
    elif kind == "e8":
        execution = _run_e8(param)
    else:
        raise ValueError(f"unknown sweep point kind {kind!r}")
    return execution


# ----------------------------------------------------------- measurement

def measure_point(point):
    """Run one sweep point in both modes; return digests and timings."""
    out = {"point": point_id(point)}
    try:
        for mode, enabled in (("baseline", False), ("optimized", True)):
            configure(enabled=enabled)  # also clears every cache (cold start)
            start = time.perf_counter()
            execution = _run_point(point)
            elapsed = time.perf_counter() - start
            out[mode] = {
                "seconds": elapsed,
                "digest": transcript_digest(execution),
            }
    finally:
        configure(enabled=True)
    return out


def run_sweep(points, jobs: int):
    if jobs <= 1:
        return [measure_point(point) for point in points]
    with ProcessPoolExecutor(max_workers=jobs, mp_context=get_context("fork")) as pool:
        return list(pool.map(measure_point, points, chunksize=1))


def _pre_pr_reference() -> dict:
    """Per-point pre-PR wall-clock, measured once at commit 1908fd3 and
    committed as BENCH_E14_prepr.json (the pre-PR tree predates the
    perf layer *and* this PR's ungated improvements, so the in-process
    baseline mode understates the true before/after gap)."""
    path = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_E14_prepr.json"
    try:
        with open(path) as handle:
            return json.load(handle).get("points", {})
    except (OSError, ValueError):
        return {}


def build_report(measurements, jobs: int) -> dict:
    results = {}
    timing_points = {}
    total_baseline = 0.0
    total_optimized = 0.0
    pre_pr = _pre_pr_reference()
    total_pre_pr = 0.0
    pre_pr_complete = True
    for m in measurements:
        pid = m["point"]
        results[pid] = {
            "digest": m["optimized"]["digest"],
            "transcripts_match": m["baseline"]["digest"] == m["optimized"]["digest"],
        }
        baseline_s = m["baseline"]["seconds"]
        optimized_s = m["optimized"]["seconds"]
        total_baseline += baseline_s
        total_optimized += optimized_s
        timing_points[pid] = {
            "baseline_s": round(baseline_s, 4),
            "optimized_s": round(optimized_s, 4),
            "speedup": round(baseline_s / optimized_s, 2),
        }
        if pid in pre_pr:
            total_pre_pr += pre_pr[pid]
            timing_points[pid]["pre_pr_s"] = pre_pr[pid]
            timing_points[pid]["speedup_vs_pre_pr"] = round(pre_pr[pid] / optimized_s, 2)
        else:
            pre_pr_complete = False
    timing_extra = {}
    if pre_pr_complete and total_optimized:
        timing_extra = {
            "total_pre_pr_s": round(total_pre_pr, 4),
            "speedup_vs_pre_pr": round(total_pre_pr / total_optimized, 2),
        }
    return {
        "experiment": "e14_perf",
        "description": "perf layer on vs off: wall-clock and transcript digests "
                       "(E13 chaos workloads + E8 refresh); digests must match "
                       "in both modes and across --jobs values",
        "config": {
            "group": "toy64",
            "smoke": SMOKE,
            "perf_flags_on": ["verify_cache", "canonical_cache", "challenge_cache",
                              "fixed_base", "batch_verify", "feldman_batch",
                              "partial_batch", "share_image_cache", "gc_tuning"],
            "points": [point_id(p) for p in sweep_points()],
        },
        "results": results,
        "timing": {
            "jobs": jobs,
            "points": timing_points,
            "total_baseline_s": round(total_baseline, 4),
            "total_optimized_s": round(total_optimized, 4),
            "speedup": round(total_baseline / total_optimized, 2),
            **timing_extra,
        },
    }


def canonical_payload(report: dict) -> dict:
    """The deterministic part of a report (identical for any --jobs)."""
    return {key: value for key, value in report.items() if key != "timing"}


def report_table(report: dict) -> str:
    timing = report["timing"]
    with_pre_pr = "speedup_vs_pre_pr" in timing
    rows = []
    for pid, point in sorted(timing["points"].items()):
        row = [pid, point["baseline_s"], point["optimized_s"], point["speedup"]]
        if with_pre_pr:
            row.append(point.get("speedup_vs_pre_pr", "-"))
        row.append("yes" if report["results"][pid]["transcripts_match"] else "NO")
        rows.append(tuple(row))
    total = ["TOTAL", timing["total_baseline_s"], timing["total_optimized_s"],
             timing["speedup"]]
    if with_pre_pr:
        total.append(timing["speedup_vs_pre_pr"])
    total.append("")
    rows.append(tuple(total))
    headers = ["point", "baseline s", "optimized s", "speedup"]
    if with_pre_pr:
        headers.append("vs pre-PR")
    headers.append("same transcript")
    return format_table(
        "E14  perf layer: wall-clock with optimizations off vs on (transcripts equal)",
        headers,
        rows,
    )


# ---------------------------------------------------------------- pytest

def test_e14_transcripts_match_and_speedup(benchmark):
    """Every mode flip leaves the transcript bit-identical; the optimized
    runs must not be slower overall (the committed full sweep shows the
    real >=3x margin — smoke points are too small to bound tightly)."""
    measurements = run_sweep(sweep_points(), jobs=1)
    report = build_report(measurements, jobs=1)
    assert all(r["transcripts_match"] for r in report["results"].values()), report
    assert report["timing"]["speedup"] > (1.0 if SMOKE else 3.0)
    stem = "BENCH_E14_smoke" if SMOKE else "BENCH_E14"
    emit_json(stem, report)
    print("\n" + report_table(report) + "\n")
    benchmark(lambda: measure_point(("uls", 100)))


def test_e14_jobs_do_not_change_results():
    """The parallel harness is a pure fan-out: stripping the timing
    section, --jobs 1 and --jobs 2 reports are identical."""
    points = SMOKE_POINTS
    serial = build_report(run_sweep(points, jobs=1), jobs=1)
    parallel = build_report(run_sweep(points, jobs=2), jobs=2)
    assert canonical_payload(serial) == canonical_payload(parallel)


# ---------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="worker processes for the sweep (default: all cores)")
    args = parser.parse_args(argv)
    measurements = run_sweep(sweep_points(), jobs=args.jobs)
    report = build_report(measurements, jobs=args.jobs)
    stem = "BENCH_E14_smoke" if SMOKE else "BENCH_E14"
    path = emit_json(stem, report)
    print(report_table(report))
    print(f"\nwrote {path}")
    mismatched = [pid for pid, r in report["results"].items()
                  if not r["transcripts_match"]]
    if mismatched:
        print(f"TRANSCRIPT MISMATCH: {mismatched}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
