"""E2 — Lemma 16: PARTIAL-AGREEMENT under equivocated key announcements.

The adversary cuts a victim off during the refreshment phase and delivers
*different* fabricated public keys in the victim's name to different
halves of the network (the clear-text announcement step is the only
unauthenticated message in the protocol, so this is the strongest
equivocation available without breaking nodes).

Lemma 16's guarantee, measured: across every honest node, the
PARTIAL-AGREEMENT outputs for the victim's session take at most one
non-``φ`` value — so at most one (fake or real) key can ever be
certified — and the cut-off victim alerts.
"""

import pytest

from repro.core.uls import NEWKEY_CHANNEL
from repro.sim.adversary_api import Adversary, faithful_delivery
from repro.sim.clock import Phase

from common import GROUP, SCHEME, build_uls_network, emit, format_table


class KeySplitAdversary(Adversary):
    """Cut the victim off from the given unit on; at each refresh
    announcement round, deliver fake key A to the first half of the other
    nodes and fake key B to the rest."""

    def __init__(self, victim: int, from_unit: int = 1) -> None:
        self.victim = victim
        self.from_unit = from_unit

    def deliver(self, api, info, traffic):
        if info.time_unit < self.from_unit:
            return faithful_delivery(traffic, api.n)
        plan = {i: [] for i in range(api.n)}
        for envelope in traffic:
            if self.victim in (envelope.sender, envelope.receiver):
                continue
            plan[envelope.receiver].append(envelope)
        if info.phase is Phase.REFRESH and info.is_phase_start:
            fake_a = SCHEME.key_repr(SCHEME.generate(api.rng).verify_key)
            fake_b = SCHEME.key_repr(SCHEME.generate(api.rng).verify_key)
            others = [i for i in range(api.n) if i != self.victim]
            half = len(others) // 2
            for idx, receiver in enumerate(others):
                fake = fake_a if idx < half else fake_b
                plan[receiver].append(api.forge_envelope(
                    self.victim, receiver, NEWKEY_CHANNEL,
                    ("newkey", info.time_unit, fake)))
        return plan


def run_split(n: int, t: int, seed: int):
    victim = n - 1
    adversary = KeySplitAdversary(victim=victim, from_unit=1)
    public, programs, runner, schedule = build_uls_network(n, t, seed, adversary)
    execution = runner.run(units=2)
    # collect every node's PA decision for the victim's unit-1 session
    decisions = set()
    for i, program in enumerate(programs):
        if i == victim:
            continue
        session = program.core.pa.sessions.get(("pa", 1, victim))
        if session is None:
            continue
        value = program.core.pa._step5(session)
        if value is not None:
            decisions.add(tuple(value))
    alerts = execution.alerts_in_unit(victim, 1)
    return decisions, alerts


@pytest.fixture(scope="module")
def table():
    rows = []
    for n, t in ((5, 2), (7, 3), (9, 4)):
        for seed in range(3):
            decisions, alerts = run_split(n, t, seed)
            rows.append((n, t, seed, len(decisions), alerts))
            assert len(decisions) <= 1, "Lemma 16 violated: two non-phi PA outputs"
            assert alerts >= 1, "cut-off victim must alert"
    return rows


def test_e2_partial_agreement_consistency(table, benchmark):
    emit("e2_agreement", format_table(
        "E2  PARTIAL-AGREEMENT under equivocated announcements (Lemma 16)",
        ["n", "t", "seed", "distinct non-phi PA outputs", "victim alerts"],
        table,
    ))
    benchmark(lambda: run_split(5, 2, 99))
