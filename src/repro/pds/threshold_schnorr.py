"""Threshold Schnorr signing — the AL-model PDS signing protocol.

This is the reproduction's instantiation of the paper's Theorem 13 ("if
trapdoor permutations exist ... there exist n-node t-secure PDS schemes in
the AL model"), following the discrete-log construction lineage the paper
cites ([23] HJJKY proactive public-key systems): the signing key ``x`` is
a degree-``t`` Feldman-verified Shamir sharing; a signature is a plain
centralized Schnorr signature assembled from partial signatures.

One signing session (per message) runs in four transport steps:

1. **deal** — every *contributor* (a node that received the "sign m"
   request) deals a fresh Feldman sharing of a random nonce ``d_i`` to
   all nodes;
2. **ack** — every node acknowledges, to all, the dealings it holds valid
   shares of (keyed by a hash of the dealing's commitment, so inconsistent
   dealings cannot be aggregated);
3. **reveal** — dealers publicly reveal the sub-shares of nodes that did
   not acknowledge them; every node then fixes the *qualified set* QUAL =
   dealers acknowledged by at least ``n - t`` nodes under one hash;
4. **partial** — contributors holding all QUAL dealings compute the group
   nonce ``R = Π_{d∈QUAL} g^{d_i}``, the challenge ``e = H(R, y, m)``, and
   broadcast the partial signature ``s_j = k_j + e·x_j`` where
   ``k_j = Σ_{d∈QUAL} f_d(j)``.

Partial signatures are *publicly verifiable* against the Feldman
commitments (``g^{s_j} = nonce_image(j) · key_image(j)^e``), which is what
makes the scheme robust: any ``t + 1`` verified partials interpolate (at
0) to a standard Schnorr signature ``(R, s)`` verifiable by
:class:`~repro.crypto.schnorr.SchnorrScheme` under the unchanging public
key.

Only nodes that were themselves asked to sign contribute nonces and
partials, so fewer than ``t + 1`` requests can never produce a signature
— matching the ideal process (§3.1).

Robustness scope (see DESIGN.md): crashed/silent nodes, dropped or
forged traffic, and corrupted shares are handled; a *protocol-internally
byzantine* dealer that equivocates commitments can abort liveness of a
session (never its safety) — full GJKR-style complaint management is
outside the paper's own scope, which takes AL-model PDS schemes as given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer
from repro.crypto.hashing import encode_for_hash, hash_to_int, tagged_hash
from repro.crypto.schnorr import (
    SchnorrScheme,
    SchnorrSignature,
    SchnorrVerifyKey,
    scheme_for_group,
)
from repro.pds.keys import PdsNodeState
from repro.pds.transport import Transport
from repro.perf.cache import cached_verify
from repro.perf.config import perf_config
from repro.sim.node import NodeContext

__all__ = ["ThresholdSigner", "pds_message_bytes", "verify_pds_signature"]

_SID_TAG = "repro/tsig/session"
_COMMIT_TAG = "repro/tsig/commit"
_PBATCH_TAG = "repro/tsig/pbatch"


def pds_message_bytes(message: Any, unit: int) -> bytes:
    """Canonical bytes of the pair ⟨m, u⟩ that the PDS signs (§3.2 binds
    every signature to the time unit of its requests)."""
    return encode_for_hash(("pds-sign", message, unit))


def verify_pds_signature(public, message: Any, unit: int, signature: Any) -> bool:
    """The scheme's ``Ver`` algorithm: plain centralized Schnorr
    verification under the unchanging public key (usable by anyone,
    including the paper's unbreakable verifier ``V``).

    Served through the verification cache (:mod:`repro.perf`): the same
    certificate is checked by every node that receives it, and ``v_cert``
    never changes, so after the first full verification the rest of the
    network answers from the cache."""
    return cached_verify(
        scheme_for_group(public.group),
        SchnorrVerifyKey(y=public.public_key),
        pds_message_bytes(message, unit),
        signature,
    )


def _commit_hash(elements: tuple[int, ...]) -> bytes:
    return tagged_hash(_COMMIT_TAG, encode_for_hash(tuple(elements)))


def _session_id(message_bytes: bytes) -> str:
    return tagged_hash(_SID_TAG, message_bytes).hex()[:24]


@dataclass
class _Dealing:
    commitment: FeldmanCommitment
    my_share_value: int | None  # f_d(me+1), None until known valid


@dataclass
class _Session:
    message_bytes: bytes
    start_round: int
    contributor: bool = False
    dealt: bool = False
    acked: bool = False
    revealed: bool = False
    partial_sent: bool = False
    done: bool = False
    failed: bool = False
    my_nonce_shares: list[int] | None = None  # f_me(j+1) for all j; erased after use
    dealings: dict[int, _Dealing] = field(default_factory=dict)
    acks: dict[int, dict[int, bytes]] = field(default_factory=dict)  # dealer -> acker -> hash
    qual: tuple[int, ...] | None = None
    partials: dict[int, tuple[tuple[int, ...], int]] = field(default_factory=dict)
    signature: SchnorrSignature | None = None
    #: bumped whenever ``dealings`` changes; a partial's verification
    #: verdict is a pure function of (dealings, key commitment, partial),
    #: so a memoized verdict stays valid while the version and the key
    #: commitment object are unchanged
    version: int = 0
    #: share_index -> (version, key_commitment, verdict).  The commitment
    #: is held by strong reference and compared with ``is`` — an id() key
    #: could be recycled after a refresh drops the old commitment.
    verify_memo: dict[int, tuple[int, Any, bool]] = field(default_factory=dict)
    #: time unit the session was created in (retention bookkeeping)
    unit: int = 0


class ThresholdSigner:
    """Multiplexes threshold-Schnorr signing sessions over a transport.

    Owner contract per round (after ``transport.begin_round``): call
    :meth:`on_round` once, then :meth:`request` for any fresh sign
    requests; read :meth:`completed` / :meth:`failed`.
    """

    def __init__(self, state: PdsNodeState, transport: Transport) -> None:
        self.state = state
        self.transport = transport
        self.scheme = scheme_for_group(state.public.group)
        self.sessions: dict[str, _Session] = {}
        self._completed: list[tuple[bytes, SchnorrSignature]] = []
        self._failed: list[bytes] = []
        #: rounds from session start to declared failure
        self.deadline_steps = 6
        #: blame record: ``(sid, share_index)`` for every received partial
        #: signature that failed cryptographic verification (pre-checks and
        #: the equation itself; *not* the still-waiting-for-dealings case).
        #: Identical with the perf layer on or off — the batch verifier
        #: falls back to per-emitter checks on failure.
        self.rejected_partials: set[tuple[str, int]] = set()
        # sessions used to accumulate for the whole run; finished ones are
        # now retired after the unit following theirs.  The sid -> unit
        # guard keeps a straggling ts-deal from resurrecting a retired
        # session through _get_session (AUTH-SEND's round pinning makes
        # >1-unit-late arrivals impossible; the guard makes it structural).
        self._retired: dict[str, int] = {}
        self._pruned_through = -1
        # round-wide aggregation buffers of the volume layer: one plural
        # body per node per round instead of one send_to_all per session
        self._agg_acks: list[tuple] = []
        self._agg_reveals: list[tuple] = []
        self._agg_partials: list[tuple] = []

    # -- public API -------------------------------------------------------

    def request(self, ctx: NodeContext, message_bytes: bytes) -> str:
        """Join (or start) the signing session for ``message_bytes`` as a
        contributor.  Returns the session id.

        Deals the nonce sharing immediately, so all contributors asked in
        the same round share one step schedule (the ack round counts on
        every dealing having landed one transport delay later).
        """
        sid = _session_id(message_bytes)
        session = self.sessions.get(sid)
        if session is None:
            self._retired.pop(sid, None)  # an explicit request reopens
            session = _Session(
                message_bytes=message_bytes, start_round=ctx.info.round,
                unit=ctx.info.time_unit,
            )
            self.sessions[sid] = session
        session.contributor = True
        if not session.dealt and ctx.info.round == session.start_round:
            self._deal(ctx, sid, session)
        return sid

    def completed(self) -> list[tuple[bytes, SchnorrSignature]]:
        """Sessions that produced a signature this round."""
        return list(self._completed)

    def failed(self) -> list[bytes]:
        """Sessions that hit their deadline without a signature this round."""
        return list(self._failed)

    def signature_for(self, message_bytes: bytes) -> SchnorrSignature | None:
        session = self.sessions.get(_session_id(message_bytes))
        return session.signature if session else None

    # -- round processing ----------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        self._completed = []
        self._failed = []
        self._prune(ctx.info.time_unit)
        self._ingest(ctx)
        delay = self.transport.delay
        for sid, session in list(self.sessions.items()):
            if session.done or session.failed:
                continue
            offset = ctx.info.round - session.start_round
            if session.contributor and not session.dealt and offset >= 0:
                self._deal(ctx, sid, session)
            if not session.acked and offset >= delay:
                self._send_acks(ctx, sid, session)
            if offset >= 2 * delay and session.qual is None:
                self._fix_qual(session)
                if session.contributor and not session.revealed:
                    self._send_reveals(ctx, sid, session)
            if (
                session.contributor
                and not session.partial_sent
                and session.qual is not None
                and offset >= 3 * delay
            ):
                self._send_partial(ctx, sid, session)
            if session.qual is not None and not session.done:
                self._try_combine(sid, session)
            if not session.done and offset >= self.deadline_steps * delay:
                session.failed = True
                self._failed.append(session.message_bytes)
        # volume layer: flush the round's per-session bodies as one plural
        # message each.  request()/_deal run after on_round in the owner's
        # round order, so dealings stay immediate (their shares are
        # per-receiver private values anyway and are never aggregated).
        if self._agg_acks:
            self.transport.send_to_all(ctx, ("ts-acks", tuple(self._agg_acks)))
            self._agg_acks = []
        if self._agg_reveals:
            self.transport.send_to_all(ctx, ("ts-reveals", tuple(self._agg_reveals)))
            self._agg_reveals = []
        if self._agg_partials:
            self.transport.send_to_all(ctx, ("ts-partials", tuple(self._agg_partials)))
            self._agg_partials = []

    def _prune(self, unit: int) -> None:
        """Retire finished sessions older than the previous time unit."""
        if unit == self._pruned_through:
            return
        self._pruned_through = unit
        stale = [
            sid
            for sid, session in self.sessions.items()
            if (session.done or session.failed) and session.unit < unit - 1
        ]
        for sid in stale:
            self._retired[sid] = self.sessions.pop(sid).unit
        for sid in [s for s, u in self._retired.items() if u < unit - 2]:
            del self._retired[sid]

    # -- inbound ------------------------------------------------------------

    def _ingest(self, ctx: NodeContext) -> None:
        for accepted in self.transport.accepted_view():
            body = accepted.body
            if not isinstance(body, tuple) or len(body) < 2:
                continue
            kind = body[0]
            if kind == "ts-deal":
                self._on_deal(ctx, accepted.sender, body)
            elif kind == "ts-ack":
                self._on_ack(accepted.sender, body)
            elif kind == "ts-reveal":
                self._on_reveal(ctx, accepted.sender, body)
            elif kind == "ts-partial":
                self._on_partial(accepted.sender, body)
            elif kind == "ts-acks":
                # plural forms: each item goes through exactly its solo
                # handler, so acceptance/blame behaviour is identical
                for item in body[1] if isinstance(body[1], tuple) else ():
                    if isinstance(item, tuple) and len(item) == 2:
                        self._on_ack(accepted.sender, ("ts-ack",) + item)
            elif kind == "ts-reveals":
                for item in body[1] if isinstance(body[1], tuple) else ():
                    if isinstance(item, tuple) and len(item) == 3:
                        self._on_reveal(ctx, accepted.sender, ("ts-reveal",) + item)
            elif kind == "ts-partials":
                for item in body[1] if isinstance(body[1], tuple) else ():
                    if isinstance(item, tuple) and len(item) == 4:
                        self._on_partial(accepted.sender, ("ts-partial",) + item)

    def _get_session(
        self, ctx: NodeContext, sid: str, message_bytes: bytes
    ) -> _Session | None:
        session = self.sessions.get(sid)
        if session is None:
            if sid in self._retired:
                return None  # finished and pruned; do not resurrect
            # we learn of the session one transport delay after it started
            session = _Session(
                message_bytes=message_bytes,
                start_round=ctx.info.round - self.transport.delay,
                unit=ctx.info.time_unit,
            )
            self.sessions[sid] = session
        return session

    def _on_deal(self, ctx: NodeContext, dealer: int, body: tuple) -> None:
        try:
            _, sid, message_bytes, elements, share_value = body
        except ValueError:
            return
        if not isinstance(message_bytes, bytes) or _session_id(message_bytes) != sid:
            return
        session = self._get_session(ctx, sid, message_bytes)
        if session is None:
            return
        if dealer in session.dealings:
            return  # first dealing wins
        commitment = FeldmanCommitment(elements=tuple(elements))
        if commitment.degree_bound != self.state.public.threshold:
            return
        group = self.state.public.group
        valid = isinstance(share_value, int) and commitment.verify_share(
            group, _share_at(self.state.share_index, share_value)
        )
        session.dealings[dealer] = _Dealing(
            commitment=commitment, my_share_value=share_value if valid else None
        )
        session.version += 1

    def _on_ack(self, acker: int, body: tuple) -> None:
        try:
            _, sid, ack_list = body
        except ValueError:
            return
        session = self.sessions.get(sid)
        if session is None:
            return
        for item in ack_list:
            try:
                dealer, commit_hash = item
            except (TypeError, ValueError):
                continue
            session.acks.setdefault(dealer, {}).setdefault(acker, commit_hash)

    def _on_reveal(self, ctx: NodeContext, dealer: int, body: tuple) -> None:
        try:
            _, sid, revealed, elements = body
        except ValueError:
            return
        session = self.sessions.get(sid)
        if session is None:
            return
        commitment = FeldmanCommitment(elements=tuple(elements))
        group = self.state.public.group
        existing = session.dealings.get(dealer)
        if existing is not None and existing.my_share_value is not None:
            return  # we already hold a valid share from this dealer
        for item in revealed:
            try:
                x, value = item
            except (TypeError, ValueError):
                continue
            if x == self.state.share_index and isinstance(value, int):
                if commitment.verify_share(group, _share_at(x, value)):
                    session.dealings[dealer] = _Dealing(
                        commitment=commitment, my_share_value=value
                    )
                    session.version += 1

    def _on_partial(self, emitter: int, body: tuple) -> None:
        try:
            _, sid, share_index, qual, value = body
        except ValueError:
            return
        session = self.sessions.get(sid)
        if session is None or not isinstance(value, int) or not isinstance(share_index, int):
            return
        try:
            qual_tuple = tuple(qual)
        except TypeError:
            return  # a corrupted body can carry a non-iterable here
        if not all(type(d) is int for d in qual_tuple):
            return  # non-int dealer ids could not name any dealing
        session.partials.setdefault(share_index, (qual_tuple, value))

    # -- outbound steps ----------------------------------------------------------

    def _deal(self, ctx: NodeContext, sid: str, session: _Session) -> None:
        session.dealt = True
        public = self.state.public
        dealer = FeldmanDealer(public.group, n=public.n, threshold=public.threshold)
        nonce = public.group.random_scalar(ctx.rng)
        dealing = dealer.deal(nonce, ctx.rng)
        session.my_nonce_shares = [share.value for share in dealing.shares]
        session.dealings[ctx.node_id] = _Dealing(
            commitment=dealing.commitment,
            my_share_value=dealing.shares[self.state.share_index - 1].value,
        )
        session.version += 1
        for receiver in range(public.n):
            if receiver == ctx.node_id:
                continue
            self.transport.send(
                ctx,
                receiver,
                (
                    "ts-deal",
                    sid,
                    session.message_bytes,
                    tuple(dealing.commitment.elements),
                    dealing.shares[receiver].value,
                ),
            )

    def _send_acks(self, ctx: NodeContext, sid: str, session: _Session) -> None:
        session.acked = True
        ack_list = []
        for dealer, dealing in session.dealings.items():
            if dealing.my_share_value is not None:
                commit_hash = _commit_hash(dealing.commitment.elements)
                ack_list.append((dealer, commit_hash))
                session.acks.setdefault(dealer, {})[ctx.node_id] = commit_hash
        if perf_config().flag("msg_volume"):
            self._agg_acks.append((sid, tuple(ack_list)))
        else:
            self.transport.send_to_all(ctx, ("ts-ack", sid, tuple(ack_list)))

    def _fix_qual(self, session: _Session) -> None:
        threshold = self.state.public.n - self.state.public.threshold
        qual = []
        for dealer, acks in session.acks.items():
            counts: dict[bytes, int] = {}
            for commit_hash in acks.values():
                counts[commit_hash] = counts.get(commit_hash, 0) + 1
            if any(count >= threshold for count in counts.values()):
                qual.append(dealer)
        session.qual = tuple(sorted(qual))

    def _send_reveals(self, ctx: NodeContext, sid: str, session: _Session) -> None:
        session.revealed = True
        if session.my_nonce_shares is None:
            return
        my_acks = session.acks.get(ctx.node_id, {})
        missing = [
            (j + 1, session.my_nonce_shares[j])
            for j in range(self.state.public.n)
            if j != ctx.node_id and (j not in my_acks)
        ]
        if not missing:
            return
        commitment = session.dealings[ctx.node_id].commitment
        if perf_config().flag("msg_volume"):
            self._agg_reveals.append(
                (sid, tuple(missing), tuple(commitment.elements))
            )
        else:
            self.transport.send_to_all(
                ctx, ("ts-reveal", sid, tuple(missing), tuple(commitment.elements))
            )

    def _send_partial(self, ctx: NodeContext, sid: str, session: _Session) -> None:
        session.partial_sent = True
        qual = session.qual or ()
        if not qual:
            return
        if any(
            d not in session.dealings or session.dealings[d].my_share_value is None
            for d in qual
        ):
            return  # missing a QUAL dealing; cannot contribute
        if self.state.share is None:
            return
        group = self.state.public.group
        q = group.q
        nonce_share = sum(session.dealings[d].my_share_value for d in qual) % q
        commitment_r = self._group_nonce(session, qual)
        challenge = self.scheme.challenge(
            commitment_r, self.state.public.public_key, session.message_bytes
        )
        s_value = (nonce_share + challenge * self.state.share.value) % q
        # the nonce shares have served their purpose: erase them (§6)
        session.my_nonce_shares = None
        self.state.erasure_log.append((self.state.unit, f"nonce:{sid}"))
        session.partials.setdefault(self.state.share_index, (qual, s_value))
        if perf_config().flag("msg_volume"):
            self._agg_partials.append((sid, self.state.share_index, qual, s_value))
        else:
            body = ("ts-partial", sid, self.state.share_index, qual, s_value)
            self.transport.send_to_all(ctx, body)

    # -- combination --------------------------------------------------------------

    def _group_nonce(self, session: _Session, qual: tuple[int, ...]) -> int:
        """``R = Π_{d ∈ qual} g^{d_i}`` from the dealers' public constants.

        Raises on duplicate dealers: a repeated entry would double-count
        that dealer's nonce, yielding an ``R`` no honest partial was
        computed against.  Wire-supplied qualified sets are screened in
        :meth:`_verify_partials` before this is reached.
        """
        if len(set(qual)) != len(qual):
            raise ValueError(f"duplicate dealers in qualified set {qual!r}")
        group = self.state.public.group
        acc = group.identity
        for dealer in qual:
            acc = group.multiply(acc, session.dealings[dealer].commitment.public_constant)
        return acc

    def _verify_partial(
        self, session: _Session, share_index: int, qual: tuple[int, ...], value: int
    ) -> bool:
        """Publicly verify one partial: ``g^s == nonce_image(j) · key_image(j)^e``."""
        return self._verify_partials(
            _session_id(session.message_bytes), session, [(share_index, qual, value)]
        )[0]

    def _verify_partials(
        self,
        sid: str,
        session: _Session,
        items: list[tuple[int, tuple[int, ...], int]],
    ) -> list[bool]:
        """Per-item verdicts for a batch of ``(share_index, qual, value)``.

        Pre-checks run per item in order: an out-of-range evaluation point
        (``x ≤ 0`` would be the secret constant itself) or a duplicated
        dealer in the claimed qualified set is rejected with blame; a qual
        naming dealings we have not (yet) received is rejected *without*
        blame — the dealings may still arrive.  The surviving equations
        are checked with one random-linear-combination equation
        (coefficients by Fiat–Shamir over the whole batch, mirroring
        :meth:`~repro.crypto.schnorr.SchnorrScheme.batch_verify`); on
        batch failure the fallback re-checks each emitter individually, so
        blame attribution is identical to the unbatched path.
        """
        if not items:
            return []
        group = self.state.public.group
        n = self.state.public.n
        verdicts = [False] * len(items)
        # (position, share_index, value, rhs = nonce_image * key_image^e)
        checkable: list[tuple[int, int, int, int]] = []
        for position, (share_index, qual, value) in enumerate(items):
            if not isinstance(share_index, int):
                continue  # not attributable to any emitter index
            if not (1 <= share_index <= n):
                self.rejected_partials.add((sid, share_index))
                continue
            if len(set(qual)) != len(qual):
                self.rejected_partials.add((sid, share_index))
                continue
            if any(d not in session.dealings for d in qual):
                continue  # missing dealings: unverifiable for now, no blame
            commitment_r = self._group_nonce(session, qual)
            challenge = self.scheme.challenge(
                commitment_r, self.state.public.public_key, session.message_bytes
            )
            nonce_image = group.identity
            for dealer in qual:
                nonce_image = group.multiply(
                    nonce_image,
                    session.dealings[dealer].commitment.share_image(group, share_index),
                )
            key_image = self.state.key_commitment.share_image(group, share_index)
            rhs = group.multiply(nonce_image, group.power(key_image, challenge))
            checkable.append((position, share_index, value, rhs))
        cfg = perf_config()
        if len(checkable) >= 2 and cfg.enabled and cfg.partial_batch:
            q = group.q
            transcript = tagged_hash(
                _PBATCH_TAG,
                session.message_bytes,
                *(
                    encode_for_hash((share_index, value, rhs))
                    for _, share_index, value, rhs in checkable
                ),
            )
            value_total = 0
            rhs_total = group.identity
            for index, (_, _share_index, value, rhs) in enumerate(checkable):
                c = 1 + hash_to_int(_PBATCH_TAG, q - 1, transcript, index)
                value_total = (value_total + c * value) % q
                rhs_total = group.multiply(rhs_total, group.power(rhs, c))
            if group.base_power(value_total) == rhs_total:
                for position, _, _, _ in checkable:
                    verdicts[position] = True
                return verdicts
        for position, share_index, value, rhs in checkable:
            valid = group.base_power(value) == rhs
            verdicts[position] = valid
            if not valid:
                self.rejected_partials.add((sid, share_index))
        return verdicts

    def _try_combine(self, sid: str, session: _Session) -> None:
        cfg = perf_config()
        use_memo = cfg.enabled and cfg.partial_batch
        key_commitment = self.state.key_commitment
        pending: list[tuple[int, tuple[int, ...], int]] = []
        verdicts: dict[int, bool] = {}
        for share_index, (qual, value) in session.partials.items():
            if use_memo:
                memo = session.verify_memo.get(share_index)
                if (
                    memo is not None
                    and memo[0] == session.version
                    and memo[1] is key_commitment
                ):
                    verdicts[share_index] = memo[2]
                    continue
            pending.append((share_index, qual, value))
        for (share_index, _qual, _value), verdict in zip(
            pending, self._verify_partials(sid, session, pending)
        ):
            verdicts[share_index] = verdict
            if use_memo:
                session.verify_memo[share_index] = (session.version, key_commitment, verdict)
        by_qual: dict[tuple[int, ...], list[tuple[int, int]]] = {}
        for share_index, (qual, value) in session.partials.items():
            if verdicts[share_index]:
                by_qual.setdefault(qual, []).append((share_index, value))
        needed = self.state.public.threshold + 1
        field = self.state.public.group.scalar_field
        for qual, points in by_qual.items():
            if len(points) < needed:
                continue
            subset = sorted(points)[:needed]
            s_value = field.interpolate_at_zero(subset)
            signature = SchnorrSignature(
                commitment=self._group_nonce(session, qual), response=s_value
            )
            if verify_pds_signature_bytes(self.state.public, session.message_bytes, signature):
                session.signature = signature
                session.done = True
                self._completed.append((session.message_bytes, signature))
                return


def verify_pds_signature_bytes(public, message_bytes: bytes, signature: Any) -> bool:
    """``Ver`` on pre-canonicalized bytes (internal fast path)."""
    return cached_verify(
        scheme_for_group(public.group),
        SchnorrVerifyKey(y=public.public_key),
        message_bytes,
        signature,
    )


def _share_at(x: int, value: int):
    from repro.crypto.shamir import Share

    if not isinstance(x, int) or x < 1:
        # f(0) is the shared secret itself; negative points are never valid
        # protocol indices.  Raising here keeps a coding error from quietly
        # evaluating commitments at the secret's own point.
        raise ValueError(f"share evaluation point must be a positive int, got {x!r}")
    return Share(x=x, value=value)
