"""FaultInjectionAdversary execution semantics, fault by fault."""

from tests.helpers import EchoProgram
from repro.faults import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultInjectionAdversary,
    FaultPlan,
    MemoryCorruptionFault,
    ReorderFault,
)
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner, ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
N = 5
LINK01 = frozenset((0, 1))


def run_plan(plan, units=2, seed=42, model=ULRunner):
    programs = [EchoProgram() for _ in range(N)]
    adversary = FaultInjectionAdversary(plan)
    if model is ULRunner:
        runner = ULRunner(programs, adversary, SCHED, s=2, seed=seed)
    else:
        runner = ALRunner(programs, adversary, SCHED, seed=seed)
    execution = runner.run(units=units)
    return execution, programs, adversary


# -------------------------------------------------------------------- crashes

def test_crash_records_broken_interval_and_recovers():
    plan = FaultPlan(seed=1, crashes=(CrashFault(node=2, first_round=4, last_round=6),))
    execution, programs, adversary = run_plan(plan)
    for rnd, record in enumerate(execution.records):
        assert (2 in record.broken) == (4 <= rnd <= 6), rnd
    # the program is silent from the round after the break through the
    # round of the leave, then resumes
    echoed_rounds = {rnd for rnd, sender, _ in programs[0].received if sender == 2}
    for rnd in (6, 7):  # sent at 5,6 (while broken) -> nothing arrives
        assert rnd not in echoed_rounds
    assert 9 in echoed_rounds  # resumed at 8, arrives at 9
    assert adversary.stats["crashes"] == 1


def test_crash_works_in_al_model_too():
    plan = FaultPlan(seed=1, crashes=(CrashFault(node=2, first_round=4, last_round=5),))
    execution, _, adversary = run_plan(plan, model=ALRunner)
    assert 2 in execution.records[4].broken
    assert 2 in execution.records[5].broken
    assert 2 not in execution.records[6].broken
    assert adversary.stats["crashes"] == 1


# ---------------------------------------------------------------- corruptions

def test_memory_corruption_breaks_for_one_round_and_damages_state():
    plan = FaultPlan(seed=1, corruptions=(MemoryCorruptionFault(node=3, round=5),))
    execution, programs, adversary = run_plan(plan)
    assert 3 in execution.records[5].broken
    assert 3 not in execution.records[6].broken
    # EchoProgram has no PDS share; the default corruptor scrambles .secret
    assert programs[3].secret != "initial-secret"
    assert programs[3].secret.startswith("corrupted-")
    assert adversary.stats["corruptions"] == 1


def test_custom_mutator_is_used():
    seen = []

    def mutator(program, rng):
        seen.append(program.node_id)
        program.counter = -100

    plan = FaultPlan(seed=1, corruptions=(
        MemoryCorruptionFault(node=1, round=5, mutator=mutator),))
    _, programs, _ = run_plan(plan)
    assert seen == [1]
    assert programs[1].counter != 0  # resumed counting from the damage


# ---------------------------------------------------------------- link faults

def test_drop_makes_link_unreliable_and_messages_vanish():
    plan = FaultPlan(seed=1, drops=(DropFault(link=LINK01, first_round=4, last_round=5),))
    execution, programs, adversary = run_plan(plan)
    for rnd in (4, 5):
        assert LINK01 in execution.records[rnd].unreliable_links
    assert LINK01 not in execution.records[6].unreliable_links
    # node 1 misses node 0's round-4 and round-5 echoes
    arrivals = {rnd for rnd, sender, _ in programs[1].received if sender == 0}
    assert 5 not in arrivals and 6 not in arrivals
    assert 4 in arrivals and 7 in arrivals
    assert adversary.stats["dropped"] == 4  # both directions, two rounds


def test_duplicate_makes_link_unreliable_but_all_copies_arrive():
    plan = FaultPlan(seed=1, duplications=(
        DuplicateFault(link=LINK01, first_round=4, last_round=4, copies=2),))
    execution, programs, adversary = run_plan(plan)
    assert LINK01 in execution.records[4].unreliable_links
    copies = [payload for rnd, sender, payload in programs[1].received
              if sender == 0 and rnd == 5]
    assert len(copies) == 3  # original + 2 duplicates
    assert adversary.stats["duplicated"] == 4  # 2 copies x both directions


def test_reorder_is_invisible_to_definition_4():
    """Shuffling an inbox preserves the per-link multiset, so no link may
    be classified unreliable (the multiset diff of Def. 4 cannot see it)."""
    plan = FaultPlan(seed=1, reorders=(ReorderFault(receiver=None,
                                                    first_round=2, last_round=11),))
    execution, _, adversary = run_plan(plan)
    assert adversary.stats["reordered"] > 0
    for record in execution.records:
        assert record.unreliable_links == frozenset()
        assert record.operational == frozenset(range(N))


def test_delay_marks_both_rounds_unreliable_and_message_arrives_late():
    plan = FaultPlan(seed=1, delays=(DelayFault(link=LINK01, first_round=4,
                                                last_round=4, delay=2),))
    execution, programs, adversary = run_plan(plan)
    # missing at the send round, surplus at the release round
    assert LINK01 in execution.records[4].unreliable_links
    assert LINK01 in execution.records[6].unreliable_links
    arrivals = [rnd for rnd, sender, payload in programs[1].received
                if sender == 0 and payload[2] == 4]  # counter == send round
    assert arrivals == [7]  # sent round 4, released round 6, stepped round 7
    assert adversary.stats["delayed"] == 2  # both directions


def test_delay_crossing_unit_boundary_expires():
    """Bounded delay with per-unit timeout: traffic held past the end of
    its unit is discarded, never delivered into the refreshment phase."""
    last_normal = SCHED.first_normal_round(0) + SCHED.normal_rounds - 1
    plan = FaultPlan(seed=1, delays=(
        DelayFault(link=LINK01, first_round=last_normal, last_round=last_normal,
                   delay=3),))
    execution, programs, adversary = run_plan(plan)
    assert adversary.stats["expired"] == 2  # both directions died
    assert adversary.stats["delayed"] == 0
    # and the payload never shows up anywhere later
    lost = [entry for rnd, sender, entry in programs[1].received
            if sender == 0 and entry[2] == last_normal]
    assert lost == []


def test_channel_filter_limits_the_blast_radius():
    plan = FaultPlan(seed=1, drops=(
        DropFault(link=LINK01, first_round=4, last_round=5,
                  channels=frozenset({"not-echo"})),))
    execution, _, adversary = run_plan(plan)
    assert adversary.stats["dropped"] == 0
    for record in execution.records:
        assert record.unreliable_links == frozenset()


def test_fault_stats_are_published_in_adversary_output():
    plan = FaultPlan(seed=1, crashes=(CrashFault(node=2, first_round=4, last_round=5),))
    execution, _, _ = run_plan(plan)
    stats_entries = [entry for entry in execution.adversary_output
                     if isinstance(entry, tuple) and entry[0] == "fault-stats"]
    assert len(stats_entries) == 1
    assert stats_entries[0][1]["crashes"] == 1
