"""Delivery-plan edge cases vs. the Definition 4 link classification.

The UL adversary owns delivery and may hand back anything; these tests
pin how the runner's multiset diff and the ConnectivityTracker classify
the edge shapes a naive diff gets wrong: duplicates (surplus), injections
of never-sent envelopes (surplus on a link that saw no sends), empty
plans (deficit on every used link), and exact permutations (no diff at
all).
"""

from tests.helpers import EchoProgram
from repro.sim.adversary_api import Adversary, faithful_delivery
from repro.sim.clock import Schedule
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=2, refresh_rounds=3, normal_rounds=8)
N, S = 4, 2


def run(adversary, units=1, seed=11):
    programs = [EchoProgram() for _ in range(N)]
    runner = ULRunner(programs, adversary, SCHED, s=S, seed=seed)
    execution = runner.run(units=units)
    return execution, programs


def test_duplicate_envelope_marks_the_link_unreliable():
    class Duplicator(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round == 4:
                for envelope in list(plan[1]):
                    if envelope.sender == 0:
                        plan[1].append(envelope)
            return plan

    execution, programs = run(Duplicator())
    record = execution.records[4]
    assert frozenset({0, 1}) in record.unreliable_links
    # only that link: duplication of 0->1 does not implicate other links
    assert record.unreliable_links == frozenset({frozenset({0, 1})})
    # the duplicate is really delivered (Def. 4 counts multiset surplus)
    copies = [p for rnd, sender, p in programs[1].received
              if rnd == 5 and sender == 0]
    assert len(copies) == 2
    # with s=2, one bad link leaves everyone operational
    assert record.operational == frozenset(range(N))


def test_injected_envelope_is_surplus_on_an_otherwise_clean_link():
    class Injector(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round == 4:
                plan[1].append(api.forge_envelope(2, 1, "echo", ("forged",)))
            return plan

    execution, programs = run(Injector())
    record = execution.records[4]
    # the 2->1 link delivered one envelope more than was sent on it
    assert frozenset({1, 2}) in record.unreliable_links
    assert record.unreliable_links == frozenset({frozenset({1, 2})})
    assert ("forged",) in [p for _, _, p in programs[1].received]


def test_injection_on_a_silent_link_is_still_unreliable():
    """Injecting on a link that carried no honest traffic at all: the
    diff must flag it (delivered != sent means surplus too)."""

    class SilentChannelInjector(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round == 4:
                # "quiet" channel never used by EchoProgram
                plan[3].append(api.forge_envelope(0, 3, "quiet", ("ghost",)))
            return plan

    execution, _ = run(SilentChannelInjector())
    assert frozenset({0, 3}) in execution.records[4].unreliable_links


def test_empty_delivery_plan_marks_every_used_link_unreliable():
    class BlackHole(Adversary):
        def deliver(self, api, info, traffic):
            if info.round == 4:
                return {i: [] for i in range(api.n)}
            return faithful_delivery(traffic, api.n)

    execution, _ = run(BlackHole(), units=2)
    record = execution.records[4]
    # every pair exchanged echo traffic, so every link shows a deficit
    all_links = frozenset(frozenset({i, j}) for i in range(N) for j in range(i + 1, N))
    assert record.unreliable_links == all_links
    # with s=2 and every link bad, nobody is operational this round
    assert record.operational == frozenset()
    # links are clean again next round, but operationality does not come
    # back with them (Def. 5 is incremental, not per-round)
    next_round = execution.records[5]
    assert next_round.unreliable_links == frozenset()
    assert next_round.operational == frozenset()
    # and with *everyone* down, Def. 5.3 recovery is impossible: it needs
    # n - s helpers that stayed operational throughout a refreshment
    # phase, and there are none — total collapse is permanent
    assert execution.records[-1].operational == frozenset()


def test_partial_outage_recovers_at_refresh_phase_end():
    """One node's links die for a while; it drops out of the operational
    set and is re-admitted exactly at the end of the next refreshment
    phase (Def. 5.3), not before."""

    class Isolator(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if 4 <= info.round <= 6:
                for receiver in plan:
                    plan[receiver] = [e for e in plan[receiver]
                                      if 3 not in (e.sender, receiver)]
            return plan

    execution, _ = run(Isolator(), units=2)
    assert execution.records[4].operational == frozenset({0, 1, 2})
    refresh_end = SCHED.rounds_of_unit(1)[SCHED.refresh_rounds - 1]
    # disconnected through the outage and beyond, despite clean links
    for rnd in range(4, refresh_end):
        assert 3 not in execution.records[rnd].operational, rnd
    # re-admitted at the refreshment-phase end, and stays in
    for rnd in range(refresh_end, len(execution.records)):
        assert execution.records[rnd].operational == frozenset(range(N)), rnd


def test_permuted_plan_is_fully_reliable():
    """Reordering within an inbox preserves every per-link multiset: the
    classification must stay clean (Def. 4 is order-blind)."""

    class Permuter(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            for receiver in plan:
                plan[receiver] = list(reversed(plan[receiver]))
            return plan

    execution, _ = run(Permuter())
    for record in execution.records:
        assert record.unreliable_links == frozenset()
        assert record.operational == frozenset(range(N))


def test_empty_plan_during_silence_is_clean():
    """An empty plan when nothing was sent is *not* a fault."""

    class MutePrograms(EchoProgram):
        def step(self, ctx, inbox):  # receive but never send
            for envelope in inbox:
                self.received.append((ctx.info.round, envelope.sender, envelope.payload))

    programs = [MutePrograms() for _ in range(N)]

    class AlwaysEmpty(Adversary):
        def deliver(self, api, info, traffic):
            assert not traffic
            return {i: [] for i in range(api.n)}

    runner = ULRunner(programs, AlwaysEmpty(), SCHED, s=S, seed=11)
    execution = runner.run(units=1)
    for record in execution.records:
        assert record.unreliable_links == frozenset()
        assert record.operational == frozenset(range(N))
