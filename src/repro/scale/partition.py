"""Two-level partition scalability (paper §6 "Scalability issues").

For very large networks the paper proposes partitioning the ``n`` nodes
into ``O(√n)`` neighborhoods of ``O(√n)`` nodes, each running its own PDS
instance, with neighborhood verification keys signed at start-up by a
global authority and a higher-level PDS for disaster recovery.

The trade-off the paper quantifies: a flat scheme tolerates break-ins of
up to ``⌊(n-1)/2⌋`` nodes per unit, while the partitioned scheme only
tolerates about ``n/4`` — compromising the system needs a majority of
neighborhoods, each of which costs a majority of its ``√n`` members — in
exchange for per-refresh message complexity dropping from Θ(n³)-ish to
``k`` independent Θ(m³) instances (``k·m = n``, ``m ≈ √n``).

:class:`PartitionPlan` computes the combinatorics exactly for any
partition; :func:`simulate_cluster` runs a *real* ULS instance of one
neighborhood so the message counts in experiment E9 are measured, not
modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.metrics import message_stats
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import SchnorrGroup
from repro.crypto.signature import SignatureScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

__all__ = ["PartitionPlan", "flat_tolerance", "simulate_cluster"]


def flat_tolerance(n: int) -> int:
    """Break-ins per unit a flat n-node scheme tolerates (n >= 2t+1)."""
    return (n - 1) // 2


@dataclass(frozen=True)
class PartitionPlan:
    """A concrete partition of ``n`` nodes into neighborhoods."""

    clusters: tuple[tuple[int, ...], ...]

    @classmethod
    def sqrt_partition(cls, n: int) -> "PartitionPlan":
        """The paper's suggestion: ~√n clusters of ~√n nodes."""
        if n < 4:
            raise ValueError("partitioning needs at least 4 nodes")
        size = max(2, round(math.isqrt(n)))
        clusters = []
        start = 0
        while start < n:
            clusters.append(tuple(range(start, min(n, start + size))))
            start += size
        # fold a trailing undersized cluster into its predecessor
        if len(clusters) > 1 and len(clusters[-1]) < 2:
            clusters[-2] = clusters[-2] + clusters[-1]
            clusters.pop()
        return cls(clusters=tuple(clusters))

    @property
    def n(self) -> int:
        return sum(len(c) for c in self.clusters)

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def cluster_threshold(self, index: int) -> int:
        """The PDS threshold t inside one neighborhood (m >= 2t+1)."""
        return (len(self.clusters[index]) - 1) // 2

    def cluster_compromise_cost(self, index: int) -> int:
        """Break-ins needed to exceed one neighborhood's threshold."""
        return self.cluster_threshold(index) + 1

    def system_compromise_cost(self) -> int:
        """Minimum simultaneous break-ins that compromise the two-level
        system: a majority of neighborhoods, cheapest first."""
        costs = sorted(
            self.cluster_compromise_cost(i) for i in range(self.cluster_count)
        )
        needed_clusters = self.cluster_count // 2 + 1
        return sum(costs[:needed_clusters])

    def tolerance(self) -> int:
        """Break-ins per unit the partitioned system survives."""
        return self.system_compromise_cost() - 1

    def describe(self) -> dict:
        return {
            "n": self.n,
            "clusters": self.cluster_count,
            "cluster_sizes": [len(c) for c in self.clusters],
            "tolerance": self.tolerance(),
            "flat_tolerance": flat_tolerance(self.n),
        }


def simulate_cluster(
    group: SchnorrGroup,
    scheme: SignatureScheme,
    size: int,
    units: int = 2,
    seed: int = 0,
):
    """Run one neighborhood's ULS instance and return (execution, stats).

    Used by E9 to *measure* the per-neighborhood refresh cost that the
    partition trades global tolerance for.
    """
    t = (size - 1) // 2
    public, states, keys = build_uls_states(group, scheme, size, t, seed=seed)
    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(size)]
    runner = ULRunner(programs, PassiveAdversary(), uls_schedule(), s=max(1, t), seed=seed)
    execution = runner.run(units=units)
    return execution, message_stats(execution)
