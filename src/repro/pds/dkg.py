"""Distributed key generation: ``UGen`` as an actual protocol (§4.2.1).

:func:`build_uls_states` realizes the paper's remark that the set-up
"can be replaced by an execution of a centralized set-up algorithm"; this
module provides the *distributed formalization* the paper actually
writes: during the adversary-free set-up the nodes

1. run joint-Feldman DKG — every node deals a Feldman sharing of a random
   scalar; shares are summed and commitments multiplied, so the global
   secret ``x = Σ r_i`` is never held by anyone (not even a dealer);
2. generate their unit-0 local keys of the centralized scheme; and
3. certify every node's key with the freshly-shared threshold signer.

:func:`run_distributed_ugen` executes this as its own AL-model run (the
set-up phase is reliable and adversary-free by assumption) and returns
exactly the triple that :func:`~repro.core.uls.build_uls_states`
produces — drop-in interchangeable, minus the dealer.
"""

from __future__ import annotations

from typing import Any

from repro.core.keystore import LocalKeys, certificate_assertion
from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer, verify_shares_batch
from repro.crypto.group import SchnorrGroup
from repro.crypto.shamir import Share
from repro.crypto.signature import SignatureScheme
from repro.pds.keys import PdsNodeState, PdsPublic
from repro.pds.threshold_schnorr import ThresholdSigner, pds_message_bytes
from repro.pds.transport import DirectTransport
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ALRunner

__all__ = ["DkgUGenProgram", "run_distributed_ugen"]

_DKG_CHANNEL = "dkg"


class DkgUGenProgram(NodeProgram):
    """One node of the distributed UGen (see module docstring).

    After the run, :attr:`state` holds the node's PDS state and
    :attr:`initial_keys` its certified unit-0 local keys.
    """

    def __init__(self, group: SchnorrGroup, n: int, t: int, scheme: SignatureScheme) -> None:
        super().__init__()
        self.group = group
        self.t = t
        self.scheme = scheme
        self.state: PdsNodeState | None = None
        self.initial_keys: LocalKeys | None = None
        self.transport = DirectTransport(channel="pds")
        self.signer: ThresholdSigner | None = None
        self._dealings: dict[int, tuple[FeldmanCommitment, int]] = {}
        self._peer_reprs: dict[int, tuple] = {}
        self._keypair = None
        self._requested = False

    # -- phase 1: joint-Feldman DKG (set-up rounds 0-1) ----------------------

    def _deal(self, ctx: NodeContext) -> None:
        dealer = FeldmanDealer(self.group, n=self.n, threshold=self.t)
        secret = self.group.random_scalar(ctx.rng)
        dealing = dealer.deal(secret, ctx.rng)
        self._dealings[ctx.node_id] = (
            dealing.commitment, dealing.shares[ctx.node_id].value
        )
        for receiver in range(self.n):
            if receiver != ctx.node_id:
                ctx.send(receiver, _DKG_CHANNEL,
                         ("deal", tuple(dealing.commitment.elements),
                          dealing.shares[receiver].value))

    def _combine(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        # all dealings are verified as one batch (random-linear-combination
        # multi-exponentiation); the fallback inside verify_shares_batch
        # keeps per-dealer verdicts identical to checking each in turn
        deals: list[tuple[int, FeldmanCommitment, int]] = []
        for envelope in inbox:
            payload = envelope.payload
            # defensive: the set-up is reliable by assumption, but a
            # malformed payload must not crash the combine step
            if (
                envelope.channel != _DKG_CHANNEL
                or not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != "deal"
            ):
                continue
            _, elements, share_value = payload
            deals.append(
                (envelope.sender, FeldmanCommitment(elements=tuple(elements)), share_value)
            )
        verdicts = verify_shares_batch(
            self.group,
            [
                (commitment, Share(x=ctx.node_id + 1, value=value))
                for _, commitment, value in deals
            ],
        )
        for (sender, commitment, share_value), valid in zip(deals, verdicts):
            if valid:
                self._dealings.setdefault(sender, (commitment, share_value))
        if len(self._dealings) != self.n:
            raise RuntimeError(
                f"DKG expects all {self.n} dealings during the reliable set-up; "
                f"got {len(self._dealings)}"
            )
        total = 0
        combined: FeldmanCommitment | None = None
        for dealer_id in sorted(self._dealings):
            commitment, share_value = self._dealings[dealer_id]
            total = (total + share_value) % self.group.q
            combined = commitment if combined is None else combined.combine(
                self.group, commitment
            )
        public = PdsPublic(
            group=self.group,
            public_key=combined.public_constant,
            n=self.n,
            threshold=self.t,
        )
        self.state = PdsNodeState(
            public=public,
            node_id=ctx.node_id,
            share=Share(x=ctx.node_id + 1, value=total),
            key_commitment=combined,
        )
        self.signer = ThresholdSigner(self.state, self.transport)
        self._dealings.clear()  # the individual sub-shares are erased

    # -- phase 2: local keys + threshold certificates ---------------------------

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        info = ctx.info
        if info.phase is Phase.SETUP:
            if info.index_in_phase == 0:
                self._deal(ctx)
            elif info.index_in_phase == 1:
                self._combine(ctx, inbox)
                if info.is_phase_end and "pds_public_key" not in ctx.rom:
                    ctx.write_rom("pds_public_key", self.state.public.public_key)
            if info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.state.public.public_key)
            return

        self.transport.begin_round(ctx, inbox)
        self.signer.on_round(ctx)

        if info.phase is Phase.NORMAL and info.index_in_phase == 0:
            self._keypair = self.scheme.generate(ctx.rng)
            my_repr = self.scheme.key_repr(self._keypair.verify_key)
            self._peer_reprs[ctx.node_id] = my_repr
            ctx.broadcast(_DKG_CHANNEL, ("key", my_repr))

        for envelope in inbox:
            payload = envelope.payload
            if (
                envelope.channel == _DKG_CHANNEL
                and isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "key"
            ):
                self._peer_reprs.setdefault(envelope.sender, tuple(payload[1]))

        if (
            info.phase is Phase.NORMAL
            and info.index_in_phase == 1
            and not self._requested
        ):
            self._requested = True
            for node, key_repr in sorted(self._peer_reprs.items()):
                assertion = certificate_assertion(node, 0, tuple(key_repr))
                self.signer.request(ctx, pds_message_bytes(assertion, 0))

        for message_bytes, signature in self.signer.completed():
            my_repr = self.scheme.key_repr(self._keypair.verify_key)
            assertion = certificate_assertion(ctx.node_id, 0, tuple(my_repr))
            if message_bytes == pds_message_bytes(assertion, 0):
                self.initial_keys = LocalKeys(
                    unit=0, keypair=self._keypair, certificate=signature
                )


def run_distributed_ugen(
    group: SchnorrGroup,
    scheme: SignatureScheme,
    n: int,
    t: int,
    seed: int | str = 0,
) -> tuple[PdsPublic, list[PdsNodeState], list[LocalKeys]]:
    """Execute the distributed UGen and return ``(public, states, keys)``
    — the same triple as :func:`~repro.core.uls.build_uls_states`, but
    produced by an actual protocol run with no trusted dealer."""
    programs = [DkgUGenProgram(group, n, t, scheme) for _ in range(n)]
    schedule = Schedule(setup_rounds=3, refresh_rounds=1, normal_rounds=8)
    runner = ALRunner(programs, PassiveAdversary(), schedule, seed=seed)
    runner.run(units=1)
    for program in programs:
        if program.state is None or program.initial_keys is None:
            raise RuntimeError(f"distributed UGen incomplete at node {program.node_id}")
    public = programs[0].state.public
    return (
        public,
        [program.state for program in programs],
        [program.initial_keys for program in programs],
    )
