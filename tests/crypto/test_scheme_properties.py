"""Property-based tests over the signature schemes (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feldman import FeldmanDealer
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme, SchnorrSignature
from repro.crypto.shamir import reconstruct_secret

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
PAIR = SCHEME.generate(random.Random(0))
OTHER = SCHEME.generate(random.Random(1))


@given(st.binary(max_size=256))
@settings(max_examples=100)
def test_schnorr_round_trip_any_message(message):
    signature = SCHEME.sign(PAIR.signing_key, message)
    assert SCHEME.verify(PAIR.verify_key, message, signature)
    assert not SCHEME.verify(OTHER.verify_key, message, signature)


@given(st.binary(max_size=64), st.binary(max_size=64))
@settings(max_examples=100)
def test_schnorr_signature_binds_message(m1, m2):
    signature = SCHEME.sign(PAIR.signing_key, m1)
    if m1 != m2:
        assert not SCHEME.verify(PAIR.verify_key, m2, signature)


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=GROUP.q - 1))
@settings(max_examples=100)
def test_schnorr_mangled_response_rejected(message, delta):
    signature = SCHEME.sign(PAIR.signing_key, message)
    mangled = SchnorrSignature(
        commitment=signature.commitment,
        response=(signature.response + delta) % GROUP.q,
    )
    assert not SCHEME.verify(PAIR.verify_key, message, mangled)


@given(
    st.integers(min_value=0, max_value=GROUP.q - 1),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0),
)
@settings(max_examples=60)
def test_feldman_dealing_invariants(secret, t, seed):
    n = 2 * t + 1
    dealer = FeldmanDealer(GROUP, n=n, threshold=t)
    dealing = dealer.deal(secret, random.Random(seed))
    # every share verifies; any t+1 reconstruct; commitment anchors the key
    for share in dealing.shares:
        assert dealing.commitment.verify_share(GROUP, share)
    rng = random.Random(seed + 1)
    subset = rng.sample(dealing.shares, t + 1)
    assert reconstruct_secret(GROUP.scalar_field, subset) == secret
    assert dealing.commitment.public_constant == GROUP.base_power(secret)
