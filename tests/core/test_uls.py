"""End-to-end tests of the ULS scheme (§4.2, Theorem 14)."""

import pytest

from repro.adversary.limits import audit_st_limited
from repro.adversary.strategies import (
    BreakinPlan,
    CutOffAdversary,
    InjectionFloodAdversary,
    LinkAttackAdversary,
    LinkFault,
    MobileBreakInAdversary,
    ReplayAdversary,
)
from repro.adversary.impersonation import UlsImpersonator
from repro.core.uls import (
    UlsProgram,
    build_uls_states,
    uls_schedule,
    verify_user_signature,
)
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.node import ALERT
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def build(seed=7):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    return public, programs


def run(programs, adversary=None, units=3, sign_plan=None, seed=3):
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    for node_id, round_number, message in sign_plan or []:
        runner.add_external_input(node_id, round_number, ("sign", message))
    execution = runner.run(units=units)
    return execution, runner


# ---------------------------------------------------------------- benign runs

def test_benign_run_no_alerts_and_stable_refresh():
    public, programs = build()
    execution, _ = run(programs, units=3)
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok"), (2, "ok")]
        assert program.state.share_is_valid()
    for i in range(N):
        assert ALERT not in execution.outputs_of(i)


def test_signing_in_every_unit():
    public, programs = build()
    sign_plan = []
    for unit in range(3):
        r = SCHED.first_normal_round(unit)
        sign_plan += [(i, r, f"m{unit}") for i in range(N)]
    execution, _ = run(programs, units=3, sign_plan=sign_plan)
    for unit in range(3):
        for i in range(N):
            assert ("signed", f"m{unit}", unit) in execution.outputs_of(i)
        signature = programs[0].signatures[(f"m{unit}", unit)]
        assert verify_user_signature(public, f"m{unit}", unit, signature)


def test_under_threshold_requests_do_not_sign():
    public, programs = build()
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, "under") for i in range(T)]
    execution, _ = run(programs, units=1, sign_plan=sign_plan)
    for i in range(N):
        assert ("signed", "under", 0) not in execution.outputs_of(i)


def test_old_certificates_die_with_their_unit():
    """A unit-0 local key + certificate is useless in unit 1: VER-CERT's
    unit check rejects it (exercised inside the protocol by running two
    units; here we probe directly)."""
    from repro.core.certify import certify, ver_cert

    public, programs = build()
    run(programs, units=2)
    stale_keys_program = programs[0]
    # fabricate a message with current keys but claim the wrong unit: the
    # keystore's unit is now 1, so a unit-0-style check must fail
    keys = stale_keys_program.keystore.current
    msg = certify(SCHEME, keys, ("x",), 0, 1, 50)
    assert ver_cert(SCHEME, public, 1, 0, expected_unit=0,
                    expected_round=50, raw=tuple(msg)) is None


# ------------------------------------------------------------- break-ins

def test_mobile_breakins_with_full_recovery():
    """t nodes broken per unit, rotating; everyone recovers at the next
    refresh, nobody alerts, signing keeps working (Theorem 14's normal
    regime)."""
    public, programs = build()
    plan = BreakinPlan(victims={0: frozenset({0, 1}), 1: frozenset({2, 3})})
    adversary = MobileBreakInAdversary(plan)
    r2 = SCHED.first_normal_round(2)
    sign_plan = [(i, r2, "late") for i in range(N)]
    execution, _ = run(programs, adversary=adversary, units=3, sign_plan=sign_plan)
    report = audit_st_limited(execution, T)
    assert report.within_limits
    for program in programs:
        assert program.state.share_is_valid()
        assert program.keystore.history[-1] == (2, "ok")
    for i in range(N):
        assert ("signed", "late", 2) in execution.outputs_of(i)
        assert ALERT not in execution.outputs_of(i)


def test_stolen_state_is_useless_after_refresh():
    """The proactive property end-to-end: state stolen in unit 0 (share +
    local keys) neither forges signatures nor authenticates messages in
    unit 1+."""
    public, programs = build()
    plan = BreakinPlan(victims={0: frozenset({4})})
    stolen = {}

    def snapshot(program):
        return (program.state.share, program.keystore.current)

    adversary = MobileBreakInAdversary(plan, state_snapshot=snapshot)
    execution, _ = run(programs, adversary=adversary, units=2)
    share, local_keys = adversary.stolen[(0, 4)]
    # the stolen share does not lie on the refreshed polynomial
    assert not programs[0].state.key_commitment.verify_share(GROUP, share)
    # the stolen local keys' certificate is for unit 0; VER-CERT in unit 1
    # rejects it
    from repro.core.certify import certify, ver_cert

    msg = certify(SCHEME, local_keys, ("late-forgery",), 4, 0, 99)
    assert msg is not None
    assert ver_cert(SCHEME, public, 0, 4, expected_unit=1,
                    expected_round=99, raw=tuple(msg)) is None


def test_memory_corruption_recovers_via_refresh():
    from repro.crypto.shamir import Share

    public, programs = build()

    def corrupt(program, rng):
        state = program.state
        state.share = Share(x=state.share_index, value=rng.randrange(GROUP.q))

    plan = BreakinPlan(victims={0: frozenset({1})}, corrupt_memory=True)
    adversary = MobileBreakInAdversary(plan, corruptor=corrupt)
    execution, _ = run(programs, adversary=adversary, units=2)
    assert programs[1].state.share_is_valid()
    assert programs[1].keystore.history == [(1, "ok")]
    assert ALERT not in execution.outputs_of(1)


# ------------------------------------------------------------- active attacks

def test_cutoff_attack_alerts_and_does_not_forge():
    """The §1.1 attack against ULS: the cut-off victim alerts in every
    affected unit (Prop. 31) and the adversary's stale keys produce no
    accepted messages at honest nodes."""
    public, programs = build()
    impersonator = UlsImpersonator(victim=4)
    adversary = CutOffAdversary(victim=4, break_unit=1, impersonator=impersonator)
    execution, runner = run(programs, adversary=adversary, units=3)
    # the victim failed to refresh its keys in unit 2 and alerted
    assert 2 in programs[4].core.alert_units
    assert execution.alerts_in_unit(4, 2) >= 1
    # the impersonator did try
    assert impersonator.attempts
    # and no honest node accepted anything from the victim in unit 2+
    for i in range(4):
        accepted_from_victim = [
            (rnd, src, body)
            for rnd, src, body in programs[i].core.transport.accepted_log
            if src == 4 and rnd >= SCHED.refresh_start(2)
        ]
        assert accepted_from_victim == []


def test_injection_flood_blocks_certification_but_alerts():
    """§5.1: an almost-(t,t)-limited injector floods fake public keys at
    the start of every refreshment phase.  Emulation may fail (nodes can
    lose their certificates) but every affected node alerts."""

    def fake_key(claimed, receiver, rng):
        fake = SCHEME.generate(rng).verify_key
        return ("newkey", None, SCHEME.key_repr(fake))

    public, programs = build()
    adversary = InjectionFloodAdversary(
        payload_factory=lambda c, r, rng: ("newkey", 1, SCHEME.key_repr(SCHEME.generate(rng).verify_key)),
        channel="newkey",
        flood_factor=3,
    )
    execution, _ = run(programs, adversary=adversary, units=2)
    assert adversary.injected_count > 0
    for program in programs:
        status = dict(program.keystore.history)
        if status.get(1) == "failed":
            assert 1 in program.core.alert_units


def test_replay_is_rejected():
    """Replayed certified traffic fails VER-CERT's (u, w) binding: the run
    completes exactly as a benign one."""
    public, programs = build()
    adversary = ReplayAdversary(delay=3, channels={"disperse"})
    execution, _ = run(programs, adversary=adversary, units=2)
    assert adversary.replayed_count > 0
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok")]


def test_link_faults_within_limits_are_tolerated():
    """Killing all links of one node (t=2 allows it) during a whole unit:
    the victim misses its certificate and alerts; everyone else proceeds;
    the victim recovers at the following refresh once links return."""
    public, programs = build()
    unit1 = SCHED.rounds_of_unit(1)
    faults = [
        LinkFault(link=frozenset({0, j}), first_round=unit1[0], last_round=unit1[-1])
        for j in range(1, N)
    ]
    execution, _ = run(programs, adversary=LinkAttackAdversary(faults), units=3)
    assert dict(programs[0].keystore.history)[1] == "failed"
    assert 1 in programs[0].core.alert_units
    # recovery in unit 2
    assert dict(programs[0].keystore.history)[2] == "ok"
    assert programs[0].state.share_is_valid()
    for i in range(1, N):
        assert dict(programs[i].keystore.history) == {1: "ok", 2: "ok"}
