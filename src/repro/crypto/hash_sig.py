"""Many-time hash-based signatures: a Merkle tree of Lamport keys.

This instantiates the paper's centralized scheme ``CS`` from nothing but a
hash function, mirroring the generic feasibility argument behind
Theorem 13 ("... or even any one-way function [34]").  A signing key is a
batch of Lamport one-time keys committed under a single Merkle root; each
signature reveals one Lamport signature plus the authentication path of
its verification key.

The scheme is *stateful*: the signing key tracks the next unused leaf.
In the proactive-authentication protocol each local key only ever signs a
bounded number of messages per time unit, so a modest capacity suffices;
exhaustion raises :class:`~repro.crypto.signature.SignatureError` rather
than silently reusing a one-time key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.lamport import (
    LamportScheme,
    LamportSignature,
    LamportSigningKey,
    LamportVerifyKey,
)
from repro.crypto.merkle import MerklePath, MerkleTree
from repro.crypto.signature import KeyPair, SignatureError, SignatureScheme

__all__ = ["MerkleVerifyKey", "MerkleSigningKey", "MerkleSignature", "MerkleSignatureScheme"]


@dataclass(frozen=True)
class MerkleVerifyKey:
    """The Merkle root committing to all one-time verification keys."""

    root: bytes
    capacity: int


@dataclass
class MerkleSigningKey:
    """All one-time keys, the tree, and the next-free-leaf counter.

    Mutable on purpose: consuming a leaf advances ``next_leaf``.  The
    simulator copies node memory on break-ins, so a stolen key carries its
    counter with it — exactly the state an attacker would obtain.
    """

    ots_signing: list[LamportSigningKey]
    ots_verify: list[LamportVerifyKey]
    tree: MerkleTree
    next_leaf: int = 0
    used: set[int] = field(default_factory=set)

    @property
    def remaining(self) -> int:
        return len(self.ots_signing) - self.next_leaf


@dataclass(frozen=True)
class MerkleSignature:
    """A one-time signature + its verification key + the Merkle path."""

    leaf_index: int
    ots_signature: LamportSignature
    ots_verify_key: LamportVerifyKey
    path: MerklePath


class MerkleSignatureScheme(SignatureScheme):
    """Many-time hash-based signatures (Merkle/Lamport).

    Args:
        capacity: number of one-time keys per key pair (messages signable).
    """

    name = "merkle-lamport"

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ots = LamportScheme()

    def key_repr(self, verify_key: MerkleVerifyKey) -> tuple:
        if not isinstance(verify_key, MerkleVerifyKey):
            raise TypeError("not a Merkle verify key")
        return ("merkle-lamport", verify_key.root, verify_key.capacity)

    def generate(self, rng: random.Random) -> KeyPair:
        signing_keys = []
        verify_keys = []
        for _ in range(self.capacity):
            pair = self._ots.generate(rng)
            verify_keys.append(pair.verify_key)
            signing_keys.append(pair.signing_key)
        tree = MerkleTree([vk.fingerprint() for vk in verify_keys])
        verify = MerkleVerifyKey(root=tree.root, capacity=self.capacity)
        signing = MerkleSigningKey(ots_signing=signing_keys, ots_verify=verify_keys, tree=tree)
        return KeyPair(verify, signing)

    def sign(self, signing_key: MerkleSigningKey, message: bytes) -> MerkleSignature:
        if signing_key.next_leaf >= len(signing_key.ots_signing):
            raise SignatureError(
                f"hash-based key exhausted after {len(signing_key.ots_signing)} signatures"
            )
        leaf = signing_key.next_leaf
        signing_key.next_leaf += 1
        signing_key.used.add(leaf)
        ots_signature = self._ots.sign(signing_key.ots_signing[leaf], message)
        return MerkleSignature(
            leaf_index=leaf,
            ots_signature=ots_signature,
            ots_verify_key=signing_key.ots_verify[leaf],
            path=signing_key.tree.path(leaf),
        )

    def verify(self, verify_key: MerkleVerifyKey, message: bytes, signature: object) -> bool:
        if not isinstance(signature, MerkleSignature):
            return False
        if not isinstance(verify_key, MerkleVerifyKey):
            return False
        if not (0 <= signature.leaf_index < verify_key.capacity):
            return False
        if signature.path.leaf_index != signature.leaf_index:
            return False
        if not MerkleTree.verify_path(
            verify_key.root, signature.ots_verify_key.fingerprint(), signature.path
        ):
            return False
        return self._ots.verify(signature.ots_verify_key, message, signature.ots_signature)
