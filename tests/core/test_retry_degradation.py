"""Bounded retransmission (DISPERSE) and graceful degradation (ULS URfr).

The resilience layer on top of the fault plane: retries buy delivery
through transiently-bad links, the certificate grace window turns a late
certificate into a structured ``degraded`` event instead of a lost unit,
and a genuinely failed unit still ends in the paper's ``φ`` + alert with
recovery at the next refreshment phase.
"""

from repro.adversary.strategies import LinkAttackAdversary, LinkFault
from repro.core.disperse import DisperseService
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.faults import DelayFault, FaultInjectionAdversary, FaultPlan
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import ALERT, NodeContext, NodeProgram
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


# ------------------------------------------------------- DISPERSE retransmission

DISP_SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=12)
SEND_ROUND = 2


class RetryingSender(NodeProgram):
    def __init__(self, retransmit=0, send_round=SEND_ROUND):
        super().__init__()
        self.disperse = DisperseService(retransmit=retransmit)
        self.send_round = send_round
        self.delivered = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        self.delivered.extend(self.disperse.receipts(""))
        if ctx.info.round == self.send_round and self.node_id == 0:
            self.disperse.send(ctx, 1, ("probe",), tag="")


def run_disperse(retransmit, faults, send_round=SEND_ROUND, units=1):
    programs = [RetryingSender(retransmit, send_round) for _ in range(N)]
    adversary = LinkAttackAdversary(faults) if faults else PassiveAdversary()
    runner = ULRunner(programs, adversary, DISP_SCHED, s=T, seed=7)
    runner.run(units=units)
    received = any(body == ("probe",) for _, body in programs[1].delivered)
    return received, programs[0].disperse


def total_blackout(first_round, last_round):
    """Every link of the sender dead over the window."""
    return [LinkFault(link=frozenset({0, j}), first_round=first_round,
                      last_round=last_round) for j in range(1, N)]


def test_one_round_blackout_defeats_classic_disperse():
    received, disperse = run_disperse(0, total_blackout(SEND_ROUND, SEND_ROUND))
    assert not received
    assert disperse.retransmissions_sent == 0


def test_one_retransmission_survives_the_same_blackout():
    received, disperse = run_disperse(1, total_blackout(SEND_ROUND, SEND_ROUND))
    assert received
    assert disperse.retransmissions_sent == 1


def test_retransmissions_are_bounded():
    """A blackout outlasting the retry budget still loses the message —
    retransmission is bounded, not reliable-channel emulation."""
    received, disperse = run_disperse(
        2, total_blackout(SEND_ROUND, SEND_ROUND + 2 * DisperseService.RETX_INTERVAL))
    assert not received
    assert disperse.retransmissions_sent == 2


def test_retransmission_expires_at_the_unit_boundary():
    """The per-unit timeout: a retry whose turn comes in the next time
    unit is discarded, not sent."""
    last_normal = DISP_SCHED.first_normal_round(0) + DISP_SCHED.normal_rounds - 1
    received, disperse = run_disperse(
        3, total_blackout(last_normal - 1, last_normal + 2),
        send_round=last_normal - 1, units=2)
    assert not received
    assert disperse.retransmissions_expired >= 1
    assert disperse.retransmissions_sent <= 1  # at most the one still in-unit


def test_retransmit_zero_is_the_classic_protocol():
    received, disperse = run_disperse(0, [])
    assert received
    assert disperse.retransmissions_sent == 0
    assert disperse.retransmissions_expired == 0


# ----------------------------------------------------------- ULS degraded mode

def build_programs(cert_retransmit=0, cert_grace_rounds=1, seed=7):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i],
                   cert_retransmit=cert_retransmit,
                   cert_grace_rounds=cert_grace_rounds)
        for i in range(N)
    ]
    return public, programs


def run_uls(programs, adversary=None, units=3, seed=3):
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    return runner.run(units=units), runner


def test_benign_run_emits_no_degraded_events():
    _, programs = build_programs()
    execution, _ = run_uls(programs)
    for program in programs:
        assert program.core.degraded_log == []
        assert program.keystore.history == [(1, "ok"), (2, "ok")]


def test_no_certificate_degrades_alerts_and_recovers():
    """Full blackout of one node across unit 1: structured "no-certificate"
    degraded event + the paper's φ + alert, then recovery in unit 2."""
    _, programs = build_programs()
    unit1 = SCHED.rounds_of_unit(1)
    faults = [LinkFault(link=frozenset({0, j}), first_round=unit1[0],
                        last_round=unit1[-1]) for j in range(1, N)]
    execution, _ = run_uls(programs, adversary=LinkAttackAdversary(faults))
    victim = programs[0].core
    reasons = [event["reason"] for event in victim.degraded_log]
    assert "no-certificate" in reasons
    event = next(e for e in victim.degraded_log if e["reason"] == "no-certificate")
    assert event["node"] == 0 and event["unit"] == 1
    # the structured event also lands in the global output as a 2-tuple
    assert ("degraded", event) in execution.outputs_of(0)
    # paper behavior preserved: φ keys, alert, recovery next refresh
    assert dict(programs[0].keystore.history)[1] == "failed"
    assert 1 in victim.alert_units
    assert dict(programs[0].keystore.history)[2] == "ok"
    # other nodes degraded nothing
    for program in programs[1:]:
        assert all(e["reason"] != "no-certificate" for e in program.core.degraded_log)


def late_certificate_attack():
    """Knock node 0 out of unit 1's signing window, then delay the
    dispersed certificate by one round.

    Every node normally completes the threshold signing *locally* at
    offset 13, so the DISPERSE of certificates only matters for a node
    that missed the signing session.  Blacking out the victim's links for
    offsets 5..12 (after PARTIAL-AGREEMENT has decided, before
    certificates complete) stalls its signer, so its certificate must
    come through DISPERSE: flood at 13, relay at 14, receipt at the
    switch round 15.  Delaying the victim's links at rounds 13..14 pushes
    the receipt to offset 16 — exactly one round late.
    """
    start = SCHED.refresh_start(1)
    blackout = [LinkFault(link=frozenset({0, j}), first_round=start + 5,
                          last_round=start + 12) for j in range(1, N)]
    delays = tuple(
        DelayFault(link=frozenset({0, j}), first_round=start + 13,
                   last_round=start + 14, delay=1)
        for j in range(1, N)
    )
    plan = FaultPlan(seed=1, delays=delays)
    return FaultInjectionAdversary(plan, base=LinkAttackAdversary(blackout))


def test_late_certificate_installs_in_grace_window_without_alert():
    _, programs = build_programs()
    execution, _ = run_uls(programs, adversary=late_certificate_attack())
    victim = programs[0].core
    reasons = [event["reason"] for event in victim.degraded_log]
    assert "certificate-late" in reasons
    event = next(e for e in victim.degraded_log if e["reason"] == "certificate-late")
    assert event["unit"] == 1 and event["deferred_rounds"] >= 1
    # no alert, no failed unit: the grace window absorbed the fault
    assert victim.alert_units == []
    assert programs[0].keystore.history == [(1, "ok"), (2, "ok")]
    assert ALERT not in execution.outputs_of(0)


def test_without_grace_the_same_delay_fails_the_unit():
    """Control: cert_grace_rounds=0 reproduces the classic protocol, which
    loses the unit to the very same one-round delay."""
    _, programs = build_programs(cert_grace_rounds=0)
    run_uls(programs, adversary=late_certificate_attack())
    victim = programs[0].core
    assert 1 in victim.alert_units
    assert dict(programs[0].keystore.history)[1] == "failed"
    assert dict(programs[0].keystore.history)[2] == "ok"  # recovery unchanged


def test_partial_certification_is_reported_structurally():
    """Suppressing three nodes' key announcements at unit 1's refresh
    start means PARTIAL-AGREEMENT decides φ for them and only 2 < n - t
    certificates are ever requested: every node reports
    "partial-certification" naming the missing owners — a structured
    event, not an exception — while the certificate-less victims degrade
    and alert per the paper.  (Losing more than t nodes' certificates is
    beyond the Theorem 14 budget, so no recovery is asserted.)"""
    from repro.core.uls import NEWKEY_CHANNEL
    from repro.sim.adversary_api import Adversary, faithful_delivery

    class AnnouncementSuppressor(Adversary):
        """Drops the unit-1 key announcements of nodes 0..2 (directional:
        the victims' other traffic and everyone else's announcements pass)."""

        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.round != SCHED.refresh_start(1):
                return plan
            for receiver in plan:
                plan[receiver] = [
                    envelope for envelope in plan[receiver]
                    if not (envelope.channel == NEWKEY_CHANNEL
                            and envelope.sender in (0, 1, 2))
                ]
            return plan

    _, programs = build_programs()
    execution, _ = run_uls(programs, adversary=AnnouncementSuppressor(), units=2)
    for node, program in enumerate(programs):
        events = {e["reason"]: e for e in program.core.degraded_log
                  if e["unit"] == 1}
        assert "partial-certification" in events, node
        partial = events["partial-certification"]
        assert partial["certificates_completed"] == 2 < N - T
        assert partial["required"] == N - T
        assert partial["missing"] == [0, 1, 2]
    for victim in (0, 1, 2):
        assert 1 in programs[victim].core.alert_units
        assert dict(programs[victim].keystore.history)[1] == "failed"
    for healthy in (3, 4):
        # their certificates went through fine...
        assert dict(programs[healthy].keystore.history)[1] == "ok"
        # ...but Part II's share refresh cannot proceed with 3 > t peers
        # at φ keys — reported structurally, then alerted (awareness)
        reasons = {e["reason"] for e in programs[healthy].core.degraded_log}
        assert "share-refresh-failed" in reasons
        assert 1 in programs[healthy].core.alert_units


def test_cert_retransmit_flows_through_to_disperse():
    _, programs = build_programs(cert_retransmit=2)
    run_uls(programs, units=2)
    # benign run: retransmissions fire (cert sends are retried blindly)
    # but change nothing — dedup at the receiver absorbs them
    assert any(p.core.disperse.retransmissions_sent > 0 for p in programs)
    for program in programs:
        assert program.keystore.history == [(1, "ok")]
        assert program.core.alert_units == []
