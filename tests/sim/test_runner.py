"""Tests for the AL/UL execution engine."""

import pytest

from repro.adversary.base import PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.rom import RomViolation
from repro.sim.runner import ALRunner, ULRunner
from repro.sim.transcript import COMPROMISED, RECOVERED

from tests.helpers import (
    BreakOnceAdversary,
    EchoProgram,
    InjectingAdversary,
    InputEchoProgram,
    LinkDropAdversary,
    RomWriterProgram,
)

SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)


def make_al(n=4, adversary=None, programs=None, seed=7):
    programs = programs or [EchoProgram() for _ in range(n)]
    return ALRunner(programs, adversary or PassiveAdversary(), SCHED, seed=seed)


def make_ul(n=4, adversary=None, s=1, programs=None, seed=7):
    programs = programs or [EchoProgram() for _ in range(n)]
    return ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=s, seed=seed)


def test_needs_two_nodes():
    with pytest.raises(ValueError):
        make_al(n=1, programs=[EchoProgram()])


def test_faithful_delivery_in_al():
    runner = make_al()
    execution = runner.run(units=2)
    # every node receives every broadcast of the previous round
    for node in runner.nodes:
        received_from = {sender for _, sender, _ in node.program.received}
        assert received_from == set(range(4)) - {node.node_id}
    # sent == delivered in every round
    for record in execution.records:
        delivered = sum(len(v) for v in record.delivered.values())
        assert delivered == len(record.sent)
        assert not record.unreliable_links


def test_messages_arrive_next_round():
    runner = make_al()
    runner.run(units=1)
    program = runner.nodes[0].program
    for received_round, _, payload in program.received:
        assert payload[0] == "tick"
        # counter c was sent at round c (program sends from round 0)
        assert received_round == payload[2] + 1


def test_deterministic_given_seed():
    e1 = make_al(seed=5).run(units=2)
    e2 = make_al(seed=5).run(units=2)
    assert e1.global_output() == e2.global_output()
    assert [r.sent for r in e1.records] == [r.sent for r in e2.records]


def test_different_seeds_allowed():
    # Echo programs are deterministic, so transcripts agree; this just
    # checks that distinct seeds do not crash anything.
    make_al(seed=1).run(units=1)
    make_al(seed=2).run(units=1)


def test_rom_written_in_setup_and_frozen_after():
    runner = make_al(programs=[RomWriterProgram() for _ in range(4)])
    runner.run(units=1)
    for node in runner.nodes:
        assert node.rom.frozen
        assert node.rom.read("anchor") == f"anchor-{node.node_id}"
        with pytest.raises(RomViolation):
            node.rom.write("x", 1)


class _LateRomWriter(NodeProgram):
    def step(self, ctx: NodeContext, inbox) -> None:
        if ctx.info.phase is Phase.NORMAL:
            ctx.write_rom("late", 1)


def test_rom_write_outside_setup_rejected():
    runner = make_al(programs=[_LateRomWriter() for _ in range(4)])
    with pytest.raises(PermissionError):
        runner.run(units=1)


def test_external_inputs_delivered_at_round():
    programs = [InputEchoProgram() for _ in range(4)]
    runner = make_al(programs=programs)
    runner.add_external_input(2, 3, "hello")
    execution = runner.run(units=1)
    assert ("input", 3, "hello") in execution.outputs_of(2)
    assert all(("input", 3, "hello") not in execution.outputs_of(i) for i in (0, 1, 3))


def test_break_in_exposes_and_corrupts_state():
    adversary = BreakOnceAdversary(victim=1, break_round=2, leave_round=4, corrupt=True)
    runner = make_al(adversary=adversary)
    runner.run(units=2)
    assert adversary.stolen_state == "initial-secret"
    assert runner.nodes[1].program.secret == "corrupted"


def test_broken_node_does_not_step():
    adversary = BreakOnceAdversary(victim=1, break_round=2, leave_round=4)
    runner = make_al(adversary=adversary)
    runner.run(units=2)
    victim = runner.nodes[1].program
    other = runner.nodes[0].program
    # victim skipped rounds 3 and 4 (broken during them)
    assert victim.counter == other.counter - 2


def test_al_status_log_matches_breaks():
    adversary = BreakOnceAdversary(victim=1, break_round=2, leave_round=4)
    runner = make_al(adversary=adversary)
    execution = runner.run(units=2)
    events = [(r, i, e) for r, i, e in execution.system_log if i == 1]
    assert (2, 1, COMPROMISED) in events
    assert (4, 1, RECOVERED) in events


def test_broken_in_unit_accounting():
    adversary = BreakOnceAdversary(victim=1, break_round=2, leave_round=4)
    runner = make_al(adversary=adversary)
    execution = runner.run(units=2)
    assert 1 in execution.broken_in_unit(0)


def test_ul_link_drop_marks_unreliable_and_disconnects():
    dead = {frozenset((0, 1)), frozenset((0, 2)), frozenset((0, 3))}
    runner = make_ul(adversary=LinkDropAdversary(dead), s=2)
    execution = runner.run(units=2)
    post_setup = [rec for rec in execution.records if rec.info.phase is not Phase.SETUP]
    for record in post_setup:
        assert frozenset((0, 1)) in record.unreliable_links
    # node 0 lost all its links: not 2-operational after the first unit round
    assert 0 not in post_setup[-1].operational
    # the other nodes keep a full clique among themselves (each has only one
    # unreliable link, which is < s = 2)
    assert {1, 2, 3} <= post_setup[-1].operational


def test_ul_s1_single_dead_link_disconnects_both_endpoints():
    """With s = 1 even one unreliable link makes a node non-operational
    (Def. 6: "a node is s-disconnected if it has s or more unreliable
    links") — the paper's 1-operational node has good links to ALL others."""
    dead = {frozenset((0, 1))}
    runner = make_ul(adversary=LinkDropAdversary(dead), s=1)
    execution = runner.run(units=1)
    final = execution.records[-1].operational
    assert 0 not in final
    assert 1 not in final
    assert {2, 3} <= final


def test_ul_compromised_line_for_disconnected_node():
    dead = {frozenset((0, j)) for j in (1, 2, 3)}
    runner = make_ul(adversary=LinkDropAdversary(dead), s=2)
    execution = runner.run(units=2)
    assert any(i == 0 and e == COMPROMISED for _, i, e in execution.system_log)


def test_ul_injection_reaches_inbox_and_marks_link():
    runner = make_ul(adversary=InjectingAdversary(), s=2)
    execution = runner.run(units=1)
    program = runner.nodes[0].program
    assert any(payload[0] == "forged" for _, _, payload in program.received)
    post_setup = [rec for rec in execution.records if rec.info.phase is not Phase.SETUP]
    for record in post_setup[:-1]:
        assert frozenset((0, 1)) in record.unreliable_links


def test_ul_passive_keeps_everyone_operational():
    runner = make_ul(s=1)
    execution = runner.run(units=3)
    for record in execution.records:
        assert record.operational == frozenset(range(4))
    assert execution.impaired_in_unit(1) == frozenset()


def test_execution_units_and_stats():
    runner = make_al()
    execution = runner.run(units=3)
    assert execution.units() == 3
    assert execution.messages_sent() > 0
    assert execution.messages_sent(rounds=[0]) == 12  # 4 nodes broadcast to 3
