"""Tests for the §6 scalability extensions."""

import pytest

from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.scale.partition import PartitionPlan, flat_tolerance, simulate_cluster
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


# ------------------------------------------------------------- partition

def test_sqrt_partition_shapes():
    plan = PartitionPlan.sqrt_partition(16)
    assert plan.n == 16
    assert plan.cluster_count == 4
    assert all(len(c) == 4 for c in plan.clusters)


def test_sqrt_partition_nonsquare():
    plan = PartitionPlan.sqrt_partition(23)
    assert plan.n == 23
    assert all(len(c) >= 2 for c in plan.clusters)


def test_partition_rejects_tiny_network():
    with pytest.raises(ValueError):
        PartitionPlan.sqrt_partition(3)


def test_tolerance_drops_to_about_quarter():
    """The paper's claim: flat tolerance ~ n/2, partitioned ~ n/4."""
    for n in (16, 25, 36, 64, 100):
        plan = PartitionPlan.sqrt_partition(n)
        flat = flat_tolerance(n)
        part = plan.tolerance()
        assert part < flat
        # partitioned tolerance sits in the n/4 ballpark
        assert n / 8 <= part + 1 <= n / 2


def test_tolerance_16_exact():
    # 4 clusters of 4; cluster threshold t=1, compromise cost 2;
    # majority = 3 clusters -> system compromise at 6, tolerance 5
    plan = PartitionPlan.sqrt_partition(16)
    assert plan.cluster_compromise_cost(0) == 2
    assert plan.system_compromise_cost() == 6
    assert plan.tolerance() == 5
    assert flat_tolerance(16) == 7


def test_describe_fields():
    info = PartitionPlan.sqrt_partition(25).describe()
    assert info["n"] == 25
    assert info["clusters"] == 5
    assert info["tolerance"] < info["flat_tolerance"]


@pytest.mark.slow
def test_simulate_cluster_runs_real_uls():
    execution, stats = simulate_cluster(GROUP, SCHEME, size=5, units=2, seed=1)
    assert execution.units() == 2
    assert stats.per_refresh_phase > 0


# ------------------------------------------------------------- sparse DISPERSE

def run_uls(relay_fanout, units=2, seed=9, n=7, t=2):
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i], relay_fanout=relay_fanout)
        for i in range(n)
    ]
    runner = ULRunner(programs, PassiveAdversary(), uls_schedule(), s=t, seed=seed)
    execution = runner.run(units=units)
    return execution, programs


@pytest.mark.slow
def test_sparse_disperse_preserves_refresh_correctness():
    n, t = 7, 2
    execution, programs = run_uls(relay_fanout=2 * t + 1, n=n, t=t)
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok")]
        assert program.state.share_is_valid()


@pytest.mark.slow
def test_sparse_disperse_cuts_message_complexity():
    n, t = 7, 2
    full_execution, _ = run_uls(relay_fanout=None, n=n, t=t)
    sparse_execution, _ = run_uls(relay_fanout=2 * t + 1, n=n, t=t)
    full = full_execution.messages_sent()
    sparse = sparse_execution.messages_sent()
    assert sparse < full
    # fanout 5 instead of 6 of an n=7 network: expect a visible cut
    assert sparse / full < 0.95


def test_disperse_fanout_targets_include_destination():
    from repro.core.disperse import DisperseService
    from repro.sim.clock import Schedule
    from repro.sim.node import NodeContext

    service = DisperseService(relay_fanout=3)
    sched = Schedule(1, 1, 2)
    ctx = NodeContext(node_id=5, n=8, info=sched.info(2), rng=None, rom=None,
                      external_inputs=[])
    targets = service._targets(ctx, receiver=6)
    assert 6 in targets
    assert 5 not in targets
    assert len(targets) == 3
