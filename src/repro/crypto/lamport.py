"""Lamport one-time signatures.

The hash-based building block for :mod:`repro.crypto.hash_sig`.  Security
rests only on the one-wayness of SHA-256, which matches the paper's remark
that centralized signatures exist from any one-way function [34].

A key signs the 256-bit digest of the message: for each digest bit the
signer reveals one of two preimages.  Each key must be used at most once;
:class:`repro.crypto.hash_sig.MerkleSignatureScheme` turns a tree of these
into a many-time scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import sha256, tagged_hash
from repro.crypto.signature import KeyPair, SignatureScheme, SignatureError

__all__ = ["LamportVerifyKey", "LamportSigningKey", "LamportSignature", "LamportScheme"]

_DIGEST_BITS = 256
_LEAF_TAG = "repro/lamport/leaf"
_MSG_TAG = "repro/lamport/message"


@dataclass(frozen=True)
class LamportVerifyKey:
    """256 pairs of hash outputs, flattened as a tuple of 512 digests."""

    hashes: tuple[bytes, ...]

    def fingerprint(self) -> bytes:
        """Compact commitment to the whole key (used as a Merkle leaf)."""
        return tagged_hash(_LEAF_TAG, *self.hashes)


@dataclass(frozen=True)
class LamportSigningKey:
    """256 pairs of preimages, flattened as a tuple of 512 secrets."""

    preimages: tuple[bytes, ...]


@dataclass(frozen=True)
class LamportSignature:
    """One revealed preimage per digest bit."""

    revealed: tuple[bytes, ...]


def _message_digest_bits(message: bytes) -> list[int]:
    digest = tagged_hash(_MSG_TAG, message)
    return [(digest[i // 8] >> (7 - i % 8)) & 1 for i in range(_DIGEST_BITS)]


class LamportScheme(SignatureScheme):
    """One-time Lamport signatures over SHA-256.

    ``sign`` is stateless here; one-time-use discipline is enforced by the
    caller (the Merkle many-time wrapper tracks leaf usage).
    """

    name = "lamport"

    def generate(self, rng: random.Random) -> KeyPair:
        preimages = tuple(rng.getrandbits(256).to_bytes(32, "big") for _ in range(2 * _DIGEST_BITS))
        hashes = tuple(sha256(preimage) for preimage in preimages)
        return KeyPair(LamportVerifyKey(hashes=hashes), LamportSigningKey(preimages=preimages))

    def sign(self, signing_key: LamportSigningKey, message: bytes) -> LamportSignature:
        if len(signing_key.preimages) != 2 * _DIGEST_BITS:
            raise SignatureError("malformed Lamport signing key")
        bits = _message_digest_bits(message)
        revealed = tuple(
            signing_key.preimages[2 * index + bit] for index, bit in enumerate(bits)
        )
        return LamportSignature(revealed=revealed)

    def verify(self, verify_key: LamportVerifyKey, message: bytes, signature: object) -> bool:
        if not isinstance(signature, LamportSignature):
            return False
        if not isinstance(verify_key, LamportVerifyKey):
            return False
        if len(signature.revealed) != _DIGEST_BITS or len(verify_key.hashes) != 2 * _DIGEST_BITS:
            return False
        bits = _message_digest_bits(message)
        for index, bit in enumerate(bits):
            if sha256(signature.revealed[index]) != verify_key.hashes[2 * index + bit]:
                return False
        return True
