"""Online ``(s,t)``-budget enforcement for adaptive fault strategies.

A static :meth:`~repro.faults.plan.FaultPlan.generate` schedule is
``(s,t)``-limited *by construction*; an adaptive strategy that chooses
faults online (:mod:`repro.faults.adaptive`) has no such construction to
lean on.  :class:`StBudgetGuard` restores the guarantee: every strategy
routes its :class:`FaultRequest`\\ s through :meth:`StBudgetGuard.project`,
which **projects the requested fault set onto the legal space** — it
clamps windows into the safe sub-intervals, admits victims only while the
per-unit budget has room, and denies everything else — so no strategy,
however aggressive, can exceed Definition 7.  The post-hoc
:func:`repro.adversary.limits.audit_st_limited` stays the source of
truth; the guard's job is to make it pass by construction.

Invariants enforced (mirroring ``FaultPlan.generate``):

- **victim budget** — at most ``min(t, max_victims_per_unit)`` distinct
  victims are charged per time unit; every node- or link-fault target
  counts, whether or not the faults end up actually impairing it
  (charging is conservative).
- **recovery margin** — normal-round faults are clamped to
  ``[first_normal, last_normal - 1]`` with crash/link starts no later
  than ``last_normal - 2``, so every victim steps through the following
  refreshment phase from its first round and recovers (Def. 5.3).
- **collateral bound** — a non-victim never accumulates ``s`` faulted
  links in one unit (at most ``s - 1``), so only charged victims can
  become s-disconnected; link faults are refused entirely when
  ``s < 2``.
- **refreshment-phase carry-over** — link faults *may* target a unit's
  refreshment phase (that is how the certificate-starver attacks
  CERTIFY/NEWKEY traffic), but a refresh victim misses that phase's
  recovery and stays impaired through the *next* unit's refreshment
  phase.  The guard therefore charges refresh victims against both
  units: ``|victims(u-1) ∪ refresh_victims(u)| <= min(t, s)`` — the
  ``s`` bound keeps ``n - s`` clean helpers available so every
  recovering node actually re-enters at the phase's end.  Node faults
  during a refreshment phase are always denied.

Projection is **order-sensitive and first-come-first-served**: requests
are processed in the order given, so strategies put their
highest-priority faults first.  Everything the guard does is recorded in
a :class:`ProjectionReport` (per-reason denial counts, clamp count,
charged victims) that the adaptive adversary publishes into the
transcript for post-hoc analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.faults.plan import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    MemoryCorruptionFault,
)
from repro.sim.clock import Schedule

__all__ = ["FaultRequest", "ProjectionReport", "StBudgetGuard", "requests_to_faults"]

NODE_KINDS = ("crash", "corrupt")
LINK_KINDS = ("drop", "duplicate", "delay")
MAX_DELAY = 3   # mirrors FaultPlan.generate's bounded-delay cap
MAX_COPIES = 3


@dataclass(frozen=True)
class FaultRequest:
    """One fault an adaptive strategy would like to inject.

    ``first_round``/``last_round`` may be ``None`` — the guard then picks
    the widest legal window for the requested ``phase``.  ``peer`` is
    required for link kinds and ignored for node kinds.
    """

    kind: str                               # crash|corrupt|drop|duplicate|delay
    victim: int
    peer: int | None = None
    first_round: int | None = None
    last_round: int | None = None
    phase: str = "normal"                   # "normal" | "refresh"
    probability: float = 1.0
    channels: frozenset[str] | None = None
    copies: int = 1
    delay: int = 1


@dataclass
class ProjectionReport:
    """What survived projecting one unit's requests onto the legal space."""

    unit: int
    requested: int = 0
    clamped: int = 0
    denied: dict[str, int] = field(default_factory=dict)
    victims: frozenset[int] = frozenset()
    crashes: tuple[CrashFault, ...] = ()
    corruptions: tuple[MemoryCorruptionFault, ...] = ()
    drops: tuple[DropFault, ...] = ()
    duplications: tuple[DuplicateFault, ...] = ()
    delays: tuple[DelayFault, ...] = ()

    @property
    def approved(self) -> int:
        return (len(self.crashes) + len(self.corruptions) + len(self.drops)
                + len(self.duplications) + len(self.delays))

    @property
    def denied_total(self) -> int:
        return sum(self.denied.values())

    def as_dict(self) -> dict:
        """JSON-ready summary (goes into the adversary output)."""
        return {
            "unit": self.unit,
            "requested": self.requested,
            "approved": self.approved,
            "denied": dict(sorted(self.denied.items())),
            "clamped": self.clamped,
            "victims": sorted(self.victims),
        }


class StBudgetGuard:
    """Online Definition 7 budget accounting (see module docstring).

    One guard instance accompanies one run; units must be projected in
    non-decreasing order (the adaptive adversary does so naturally).
    """

    def __init__(
        self,
        n: int,
        t: int,
        schedule: Schedule,
        *,
        s: int | None = None,
        max_victims_per_unit: int | None = None,
    ) -> None:
        if t < 0:
            raise ValueError("t must be >= 0")
        self.n = n
        self.t = t
        self.s = t if s is None else s
        self.schedule = schedule
        self.cap = min(t, max_victims_per_unit) if max_victims_per_unit else t
        self.refresh_cap = min(self.cap, self.s)
        self._victims: dict[int, set[int]] = {}
        self._refresh_victims: dict[int, set[int]] = {}
        self._peer_load: dict[int, dict[int, int]] = {}
        self._last_unit: int | None = None
        self.reports: list[ProjectionReport] = []

    # -- bookkeeping -----------------------------------------------------------

    def victims_of(self, unit: int) -> frozenset[int]:
        return frozenset(self._victims.get(unit, ()))

    def reserve_victims(self, unit: int, nodes: Iterable[int]) -> None:
        """Charge externally-caused victims (e.g. a composed base
        adversary's break-ins) against ``unit``'s budget, so the guard's
        own admissions leave room for them."""
        self._victims.setdefault(unit, set()).update(nodes)

    # -- projection ------------------------------------------------------------

    def project(self, unit: int, requests: Iterable[FaultRequest]) -> ProjectionReport:
        """Project one unit's requests onto the legal fault space."""
        if self._last_unit is not None and unit < self._last_unit:
            raise ValueError(f"units must be projected in order "
                             f"(got {unit} after {self._last_unit})")
        self._last_unit = unit
        report = ProjectionReport(unit=unit)
        victims = self._victims.setdefault(unit, set())
        refresh_victims = self._refresh_victims.setdefault(unit, set())
        prev = frozenset(self._victims.get(unit - 1, ()))
        load = self._peer_load.setdefault(unit, {})

        first_normal = self.schedule.first_normal_round(unit)
        last_normal = first_normal + self.schedule.normal_rounds - 1
        crashes: list[CrashFault] = []
        corruptions: list[MemoryCorruptionFault] = []
        drops: list[DropFault] = []
        duplications: list[DuplicateFault] = []
        delays: list[DelayFault] = []

        def deny(reason: str) -> None:
            report.denied[reason] = report.denied.get(reason, 0) + 1

        def admit(victim: int, *, refresh: bool) -> bool:
            """Charge ``victim`` against the unit's budget (both budgets
            for refresh-phase victims); False when no room is left."""
            if len(victims | {victim}) > self.cap:
                return False
            if refresh and len(prev | refresh_victims | {victim}) > self.refresh_cap:
                return False
            victims.add(victim)
            if refresh:
                refresh_victims.add(victim)
            return True

        def clamp(value: int | None, lo: int, hi: int, default: int) -> int:
            if value is None:
                return default
            clamped = max(lo, min(hi, value))
            if clamped != value:
                report.clamped += 1
            return clamped

        for request in requests:
            report.requested += 1
            if request.kind not in NODE_KINDS + LINK_KINDS:
                deny("unknown-kind")
                continue
            if not (0 <= request.victim < self.n):
                deny("victim-out-of-range")
                continue
            if self.cap < 1:
                deny("victim-budget")
                continue

            if request.kind in NODE_KINDS:
                if request.phase == "refresh":
                    deny("refresh-node-fault")
                    continue
                if last_normal - first_normal < 3:
                    deny("unit-too-short")  # no room for safe margins
                    continue
                if not admit(request.victim, refresh=False):
                    deny("victim-budget")
                    continue
                if request.kind == "crash":
                    first = clamp(request.first_round, first_normal,
                                  last_normal - 2, first_normal)
                    last = clamp(request.last_round, first, last_normal - 1,
                                 last_normal - 1)
                    crashes.append(CrashFault(node=request.victim,
                                              first_round=first, last_round=last))
                else:
                    rnd = clamp(request.first_round, first_normal,
                                last_normal - 1, first_normal)
                    corruptions.append(MemoryCorruptionFault(node=request.victim,
                                                             round=rnd))
                continue

            # link kinds
            if self.s < 2:
                deny("s-too-small")  # one bad link would already disconnect
                continue
            peer = request.peer
            if peer is None or not (0 <= peer < self.n) or peer == request.victim:
                deny("bad-peer")
                continue
            refresh = request.phase == "refresh"
            if refresh:
                if unit < 1:
                    deny("no-refresh-phase")
                    continue
                if peer in prev:
                    # a recovering node's phase links must stay clean or it
                    # would miss its own re-admission (Def. 5.3)
                    deny("peer-recovering")
                    continue
                window_lo = self.schedule.refresh_start(unit)
                window_hi = window_lo + self.schedule.refresh_rounds - 1
                first_hi = window_hi
            else:
                if last_normal - first_normal < 3:
                    deny("unit-too-short")
                    continue
                window_lo, window_hi = first_normal, last_normal - 1
                first_hi = last_normal - 2
            peer_is_victim = peer in victims
            if not peer_is_victim and load.get(peer, 0) >= self.s - 1:
                deny("collateral-budget")
                continue
            if not admit(request.victim, refresh=refresh):
                deny("victim-budget")
                continue
            if not peer_is_victim:
                load[peer] = load.get(peer, 0) + 1
            first = clamp(request.first_round, window_lo, first_hi, window_lo)
            last = clamp(request.last_round, first, window_hi, window_hi)
            probability = min(1.0, max(0.0, request.probability))
            if probability != request.probability:
                report.clamped += 1
            link = frozenset((request.victim, peer))
            if request.kind == "drop":
                drops.append(DropFault(link=link, first_round=first, last_round=last,
                                       probability=probability,
                                       channels=request.channels))
            elif request.kind == "duplicate":
                duplications.append(DuplicateFault(
                    link=link, first_round=first, last_round=last,
                    copies=max(1, min(MAX_COPIES, request.copies)),
                    probability=probability, channels=request.channels))
            else:
                delays.append(DelayFault(
                    link=link, first_round=first, last_round=last,
                    delay=max(1, min(MAX_DELAY, request.delay)),
                    probability=probability, channels=request.channels))

        report.victims = frozenset(victims)
        report.crashes = tuple(crashes)
        report.corruptions = tuple(corruptions)
        report.drops = tuple(drops)
        report.duplications = tuple(duplications)
        report.delays = tuple(delays)
        self.reports.append(report)
        return report


def requests_to_faults(
    unit: int, requests: Iterable[FaultRequest], schedule: Schedule
) -> ProjectionReport:
    """Convert requests to faults **without any budget enforcement**.

    The unguarded twin of :meth:`StBudgetGuard.project`: windows default
    to the requested phase's full span but explicit rounds pass through
    unclamped, and every request is approved.  This is how the campaign
    layer's negative controls (and the failure-frontier search below the
    guard) express "run the raw strategy and let the monitor judge it".
    """
    report = ProjectionReport(unit=unit)
    first_normal = schedule.first_normal_round(unit)
    last_normal = first_normal + schedule.normal_rounds - 1
    crashes, corruptions, drops, duplications, delays = [], [], [], [], []
    victims: set[int] = set()
    for request in requests:
        report.requested += 1
        if request.phase == "refresh" and unit >= 1:
            window_lo = schedule.refresh_start(unit)
            window_hi = window_lo + schedule.refresh_rounds - 1
        else:
            window_lo, window_hi = first_normal, last_normal
        first = window_lo if request.first_round is None else request.first_round
        last = window_hi if request.last_round is None else request.last_round
        victims.add(request.victim)
        if request.kind == "crash":
            crashes.append(CrashFault(node=request.victim,
                                      first_round=first, last_round=last))
        elif request.kind == "corrupt":
            corruptions.append(MemoryCorruptionFault(node=request.victim, round=first))
        elif request.kind in LINK_KINDS and request.peer is not None:
            link = frozenset((request.victim, request.peer))
            if request.kind == "drop":
                drops.append(DropFault(link=link, first_round=first, last_round=last,
                                       probability=request.probability,
                                       channels=request.channels))
            elif request.kind == "duplicate":
                duplications.append(DuplicateFault(
                    link=link, first_round=first, last_round=last,
                    copies=request.copies, probability=request.probability,
                    channels=request.channels))
            else:
                delays.append(DelayFault(
                    link=link, first_round=first, last_round=last,
                    delay=request.delay, probability=request.probability,
                    channels=request.channels))
        else:
            report.denied["unknown-kind"] = report.denied.get("unknown-kind", 0) + 1
    report.victims = frozenset(victims)
    report.crashes = tuple(crashes)
    report.corruptions = tuple(corruptions)
    report.drops = tuple(drops)
    report.duplications = tuple(duplications)
    report.delays = tuple(delays)
    return report
