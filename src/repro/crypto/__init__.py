"""From-scratch cryptographic substrate for the proactive-auth library.

Sub-modules:

- :mod:`repro.crypto.numbers` — primality, modular arithmetic.
- :mod:`repro.crypto.hashing` — domain-separated hashing, PRF.
- :mod:`repro.crypto.field` / :mod:`repro.crypto.group` — ``Z_q`` and
  Schnorr groups.
- :mod:`repro.crypto.signature` — the abstract ``CS = (CGen, CSign, CVer)``
  interface, with implementations in :mod:`~repro.crypto.schnorr`
  (discrete log), :mod:`~repro.crypto.rsa` (factoring),
  :mod:`~repro.crypto.hash_sig` (one-way functions only) and the
  deliberately broken :mod:`~repro.crypto.toy` for negative tests.
- :mod:`repro.crypto.shamir` / :mod:`repro.crypto.feldman` — (verifiable)
  secret sharing, the substrate of the PDS schemes.
"""

from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer, FeldmanDealing
from repro.crypto.field import PrimeField, Polynomial
from repro.crypto.group import SchnorrGroup, named_group
from repro.crypto.hash_sig import MerkleSignatureScheme
from repro.crypto.lamport import LamportScheme
from repro.crypto.pedersen import PedersenParams, PedersenVssDealer
from repro.crypto.rsa import RsaFdhScheme
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.shamir import Share, ShamirDealer, reconstruct_secret
from repro.crypto.signature import KeyPair, SignatureError, SignatureScheme

__all__ = [
    "FeldmanCommitment",
    "FeldmanDealer",
    "FeldmanDealing",
    "PrimeField",
    "Polynomial",
    "SchnorrGroup",
    "named_group",
    "MerkleSignatureScheme",
    "LamportScheme",
    "PedersenParams",
    "PedersenVssDealer",
    "RsaFdhScheme",
    "SchnorrScheme",
    "Share",
    "ShamirDealer",
    "reconstruct_secret",
    "KeyPair",
    "SignatureError",
    "SignatureScheme",
]
