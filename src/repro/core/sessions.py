"""Per-unit session keys: the paper's lightweight authentication variant.

Footnote 1 of §5: "Alternative constructions may ... even exchange a
secret key between each two parties and authenticate π-messages using
that key.  Such construction does not guarantee *delivery* of messages,
thus they are not authenticators according to our definition; yet they
provide authentication according to the standard interpretation."

This module implements that variant on top of ULS's certified per-unit
keys, using the fact that the Schnorr verification keys are Diffie–
Hellman-capable group elements:

- right after each refreshment phase's key switch, every node AUTH-SENDs
  a ``sess-hello``; receivers harvest the sender's *certified* per-unit
  verification key from the certified wrapper (any other accepted
  certified traffic feeds the table too);
- the pairwise session key is derived non-interactively from static DH:
  ``k_ij = H(g^{x_i·x_j}, u, {i,j})`` — both sides compute it from their
  own signing key and the peer's certified key, so its authenticity is
  inherited from the certificates;
- application messages then travel *directly* on the link, authenticated
  by an HMAC over ``(i, j, u, w, body)`` — one envelope and two hashes
  per message instead of DISPERSE's Θ(n) envelopes and two signature
  operations (experiment E12 quantifies the trade).

Only usable when the centralized scheme is Schnorr (the keys must be
group elements); the constructor enforces this.
"""

from __future__ import annotations

from typing import Any

from repro.core.uls import UlsCore, _O_SWITCH
from repro.crypto.hashing import prf, tagged_hash
from repro.crypto.schnorr import SchnorrScheme, SchnorrVerifyKey
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext

__all__ = ["SessionLayer", "SESSION_CHANNEL"]

SESSION_CHANNEL = "session"
_KEY_TAG = "repro/session/key"


class SessionLayer:
    """Pairwise MAC sessions over a :class:`~repro.core.uls.UlsCore`.

    Owner contract per round: call :meth:`on_round` *after*
    ``core.on_round``; then :meth:`send` freely; read :meth:`accepted`.
    """

    def __init__(self, core: UlsCore) -> None:
        if not isinstance(core.keystore.scheme, SchnorrScheme):
            raise TypeError("session keys require the Schnorr scheme (DH-capable keys)")
        self.core = core
        self.group = core.keystore.scheme.group
        #: unit -> peer -> certified verification key (the DH share)
        self.peer_keys: dict[int, dict[int, int]] = {}
        self._session_keys: dict[tuple[int, int], bytes] = {}  # (unit, peer)
        self._accepted: list[tuple[int, Any]] = []
        self.rejected_count = 0
        self.sent_count = 0

    # -- key management ---------------------------------------------------

    def _harvest_peer_keys(self) -> None:
        for accepted in self.core.transport.accepted_certified_view():
            raw = accepted.raw
            verify_key = raw.verify_key
            if isinstance(verify_key, SchnorrVerifyKey):
                self.peer_keys.setdefault(raw.unit, {})[raw.source] = verify_key.y

    def session_key(self, peer: int) -> bytes | None:
        """The current unit's pairwise MAC key with ``peer`` (or None)."""
        unit = self.core.keystore.unit
        cache_key = (unit, peer)
        if cache_key in self._session_keys:
            return self._session_keys[cache_key]
        peer_y = self.peer_keys.get(unit, {}).get(peer)
        keys = self.core.keystore.current
        if peer_y is None or not keys.usable:
            return None
        my_x = keys.keypair.signing_key.x
        shared = self.group.power(peer_y, my_x)
        low, high = sorted((self.core.node_id, peer))
        derived = tagged_hash(
            _KEY_TAG,
            shared.to_bytes((shared.bit_length() + 7) // 8 + 1, "big"),
            unit.to_bytes(8, "big"),
            low.to_bytes(4, "big"),
            high.to_bytes(4, "big"),
        )
        self._session_keys[cache_key] = derived
        return derived

    # -- per-round engine -----------------------------------------------------

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self._accepted = []
        self._harvest_peer_keys()

        # announce our fresh certified key right after each key switch
        # (and once at the start of unit 0)
        info = ctx.info
        announce = (
            (info.phase is Phase.REFRESH and info.index_in_phase == _O_SWITCH)
            or (info.time_unit == 0 and info.phase is Phase.NORMAL
                and info.index_in_phase == 0)
        )
        if announce and self.core.keystore.can_sign():
            self.core.transport.send_to_all(ctx, ("sess-hello", self.core.keystore.unit))

        for envelope in ctx.channel_view(inbox, SESSION_CHANNEL):
            self._receive(ctx, envelope)

    def _receive(self, ctx: NodeContext, envelope: Envelope) -> None:
        payload = envelope.payload
        if not (isinstance(payload, tuple) and len(payload) == 5 and payload[0] == "mac"):
            return
        _, unit, round_w, body, tag = payload
        if unit != self.core.keystore.unit or round_w != ctx.info.round - 1:
            self.rejected_count += 1
            return
        key = self.session_key(envelope.sender)
        if key is None:
            self.rejected_count += 1
            return
        expected = prf(key, (envelope.sender, ctx.node_id, unit, round_w, body))
        if tag != expected:
            self.rejected_count += 1
            return
        self._accepted.append((envelope.sender, body))

    # -- sending ---------------------------------------------------------------

    def send(self, ctx: NodeContext, receiver: int, body: Any) -> bool:
        """MAC-authenticated direct send; returns False when no session
        key exists yet (the caller may fall back to
        ``core.app_send`` — the full AUTH-SEND path)."""
        key = self.session_key(receiver)
        if key is None:
            return False
        unit = self.core.keystore.unit
        tag = prf(key, (ctx.node_id, receiver, unit, ctx.info.round, body))
        ctx.send(receiver, SESSION_CHANNEL, ("mac", unit, ctx.info.round, body, tag))
        self.sent_count += 1
        return True

    def accepted(self) -> list[tuple[int, Any]]:
        """MAC-verified messages received this round: ``(source, body)``."""
        return list(self._accepted)
