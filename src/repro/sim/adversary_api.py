"""Adversary interface and capabilities (§2.1–2.2).

An :class:`Adversary` interacts with the runner through an
:class:`AdversaryApi`, which exposes exactly the paper's capabilities and
nothing more:

- read all traffic (both models);
- break into nodes, obtaining (and possibly mutating) their full mutable
  state, and leave them (both models; *mobility*);
- send messages in the name of *broken* nodes (both models);
- in the UL model only, decide what every node receives — modify, delete,
  duplicate and inject messages — by overriding :meth:`Adversary.deliver`.

*Rushing* is built into the runner's call order: honest messages for the
round are computed first, then :meth:`Adversary.on_round` observes them
and may break new nodes and inject, and only then is delivery resolved.

ROM is readable but never writable (enforced by
:class:`repro.sim.rom.Rom` itself), and programs (code) are not
replaceable — the API hands out the program object for state access but
the runner keeps its own reference.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.clock import RoundInfo, Schedule
from repro.sim.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.node import Node, NodeProgram
    from repro.sim.rom import Rom

__all__ = [
    "Adversary",
    "AdversaryApi",
    "FaithfulPlan",
    "PassiveAdversary",
    "faithful_delivery",
]


class FaithfulPlan(dict):
    """A delivery plan carrying provenance: built by :meth:`build` as the
    faithful regrouping of exactly ``source``, and unmodified since.

    The runner's accounting treats a ``FaithfulPlan`` whose ``source`` is
    the round's sent traffic as proven faithful (Definition 4 holds per
    construction) and skips the full regroup-and-compare — one of the
    simulation-floor optimizations (``PerfConfig.faithful_fastpath``).

    Contract: holders must treat the plan and its lists as **read-only**.
    Code that wants to edit a faithful plan must build its own ``dict``
    (as every shipped adversary does — :func:`faithful_delivery` keeps
    returning a plain dict precisely so editing call sites never receive
    a marked plan).  Key-level mutation through Python drops the marker
    as a safety net; ``dict.setdefault`` of empty inboxes is harmless and
    keeps it.
    """

    __slots__ = ("source",)

    @classmethod
    def build(cls, traffic: tuple[Envelope, ...], n: int) -> "FaithfulPlan":
        plan = cls((i, []) for i in range(n))
        for envelope in traffic:
            plan[envelope.receiver].append(envelope)
        plan.source = traffic
        return plan

    # dict-level edits invalidate the provenance (list-level edits are
    # excluded by the read-only contract above)
    def __setitem__(self, key, value):
        self.source = None
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):
        self.source = None
        dict.__delitem__(self, key)

    def __reduce__(self):
        # pickling (parallel benchmark workers) drops the marker: object
        # identity with the traffic tuple cannot survive a process hop
        return (dict, (), None, None, iter(self.items()))


def faithful_delivery(traffic: tuple[Envelope, ...], n: int) -> dict[int, list[Envelope]]:
    """The honest delivery plan: every message arrives unmodified.

    Returns a plain ``dict`` that callers are free to edit (adversary
    strategies start from a faithful plan and drop/duplicate/modify).
    Internal call sites that pass the plan through *unmodified* use
    :meth:`FaithfulPlan.build` instead, so the runner can skip re-proving
    faithfulness.
    """
    plan: dict[int, list[Envelope]] = {i: [] for i in range(n)}
    for envelope in traffic:
        plan[envelope.receiver].append(envelope)
    return plan


class AdversaryApi:
    """Capability object handed to the adversary each round."""

    def __init__(
        self,
        nodes: list["Node"],
        info: RoundInfo,
        rng: random.Random | Callable[[], random.Random],
    ) -> None:
        self._nodes = nodes
        self.info = info
        # ``rng`` may be a zero-arg factory (the runner's lazy_rng mode):
        # deriving a PRF-seeded Random per round is measurable at the
        # simulation floor, and most adversaries never draw from it.  The
        # stream is identical whenever it is actually used.
        if callable(rng):
            self._rng = None
            self._rng_factory = rng
        else:
            self._rng = rng
            self._rng_factory = None
        self.n = len(nodes)
        self.injected: list[Envelope] = []
        self.break_events: list[tuple[int, str]] = []  # (node, "break"/"leave")
        self.output_entries: list[Any] = []

    @property
    def rng(self) -> random.Random:
        rng = self._rng
        if rng is None:
            rng = self._rng = self._rng_factory()
        return rng

    # -- observation --------------------------------------------------------

    def is_broken(self, node_id: int) -> bool:
        return self._nodes[node_id].broken

    def broken_nodes(self) -> frozenset[int]:
        return frozenset(i for i, node in enumerate(self._nodes) if node.broken)

    def rom_of(self, node_id: int) -> "Rom":
        """ROM is public and readable by the adversary (writes will raise)."""
        return self._nodes[node_id].rom

    # -- break-ins ----------------------------------------------------------

    def break_into(self, node_id: int) -> "NodeProgram":
        """Compromise a node: returns its program object, whose attributes
        are the node's entire mutable state (read *and* write access)."""
        node = self._nodes[node_id]
        if not node.broken:
            node.broken = True
            self.break_events.append((node_id, "break"))
        return node.program

    def leave(self, node_id: int) -> None:
        """Release a node; its (possibly corrupted) state stays behind and
        its program resumes from the next round."""
        node = self._nodes[node_id]
        if node.broken:
            node.broken = False
            self.break_events.append((node_id, "leave"))

    def program_of(self, node_id: int) -> "NodeProgram":
        """State of an already-broken node (the paper's ongoing access)."""
        node = self._nodes[node_id]
        if not node.broken:
            raise PermissionError(f"node {node_id} is not broken")
        return node.program

    # -- acting -------------------------------------------------------------

    def send_as(self, node_id: int, receiver: int, channel: str, payload: Any) -> None:
        """Place a message on the wire in the name of a *broken* node.

        This is the only way to originate traffic in the AL model; in the
        UL model arbitrary injection is additionally possible through the
        delivery plan.
        """
        if not self._nodes[node_id].broken:
            raise PermissionError(f"cannot send as non-broken node {node_id}")
        if receiver == node_id or not (0 <= receiver < self.n):
            raise ValueError(f"bad receiver {receiver}")
        self.injected.append(
            Envelope(
                sender=node_id,
                receiver=receiver,
                channel=channel,
                payload=payload,
                round_sent=self.info.round,
            )
        )

    def output(self, entry: Any) -> None:
        """Append to the adversary's own output (part of the global output)."""
        self.output_entries.append(entry)

    # -- helpers for deliver() ---------------------------------------------

    def forge_envelope(
        self, claimed_sender: int, receiver: int, channel: str, payload: Any
    ) -> Envelope:
        """Construct an injected envelope with an arbitrary claimed sender
        (UL model only — pass it into the delivery plan)."""
        return Envelope(
            sender=claimed_sender,
            receiver=receiver,
            channel=channel,
            payload=payload,
            round_sent=self.info.round,
        )


class Adversary:
    """Base adversary: passive defaults, hooks for strategies to override."""

    def begin(self, n: int, schedule: Schedule, rng: random.Random) -> None:
        """Called once before the first post-set-up round."""
        self.n = n
        self.schedule = schedule
        self.rng = rng

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]) -> None:
        """Observe the round's honest traffic; break/leave/inject here."""

    def deliver(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        """UL model only: decide what every node receives next round.

        The default is faithful delivery.  Strategies may drop, modify,
        duplicate and inject arbitrarily; the runner only normalizes
        receiver consistency.

        The default returns a provenance-marked :class:`FaithfulPlan`
        (strategies that *edit* a faithful plan start from
        :func:`faithful_delivery` instead, which returns a plain dict).
        """
        return FaithfulPlan.build(traffic, api.n)

    def finish(self) -> list[Any]:
        """Final adversary output entries (appended to the global output)."""
        return []


class PassiveAdversary(Adversary):
    """Reads everything, touches nothing — the null strategy."""
