"""E3 — Theorem 14: ULS is (t,t)-secure, Monte-Carlo over adversaries.

For every adversary within the (t,t) limits, every execution must be
GOOD (no forged messages, no operational node without keys — Defs. 17/18)
and satisfy the emulation invariants derived from the ideal process.

Scientific control: rerunning the *identical* protocol with the
deliberately forgeable toy scheme as CS (violating Theorem 14's EUF-CMA
premise) must produce BAD3 executions — showing the experiment actually
measures the property, not merely the absence of attack code.
"""

import pytest

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import (
    BreakinPlan,
    CutOffAdversary,
    MobileBreakInAdversary,
    ReplayAdversary,
)
from repro.analysis.emulation import check_emulation_invariants
from repro.analysis.goodness import classify_execution
from repro.core.disperse import DISPERSE_CHANNEL
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.toy import BrokenScheme, forge
from repro.sim.adversary_api import Adversary, PassiveAdversary, faithful_delivery
from repro.sim.clock import Phase
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, build_uls_network, certified_key_reprs, emit, format_table, key_histories

N, T = 5, 2
UNITS = 3
SEEDS = 5


def make_adversary(kind: str, seed: int):
    if kind == "passive":
        return PassiveAdversary()
    if kind == "mobile":
        import random

        plan = BreakinPlan.rotating(N, T, UNITS, random.Random(seed))
        return MobileBreakInAdversary(plan)
    if kind == "mobile-corrupt":
        import random

        def corruptor(program, rng):
            from repro.crypto.shamir import Share

            state = program.state
            state.share = Share(x=state.share_index, value=rng.randrange(GROUP.q))

        plan = BreakinPlan.rotating(N, T, UNITS, random.Random(seed), corrupt_memory=True)
        return MobileBreakInAdversary(plan, corruptor=corruptor)
    if kind == "replay":
        return ReplayAdversary(delay=3, channels={DISPERSE_CHANNEL})
    if kind == "cutoff-impersonate":
        victim = seed % N
        return CutOffAdversary(victim=victim, break_unit=1,
                               impersonator=UlsImpersonator(victim=victim))
    raise ValueError(kind)


def run_case(kind: str, seed: int):
    adversary = make_adversary(kind, seed)
    public, programs, runner, schedule = build_uls_network(N, T, seed, adversary)
    execution = runner.run(units=UNITS)
    goodness = classify_execution(
        execution, public, SCHEME, key_histories(programs), T,
        certified_keys=certified_key_reprs(programs),
    )
    invariants = check_emulation_invariants(execution, T)
    return goodness, invariants


class BrokenCsForger(Adversary):
    """Against ULS-with-BrokenScheme: harvest any certified message of the
    victim from observed traffic, then forge fresh messages under the same
    (key, certificate) with the unkeyed-hash forgery — no break-ins at
    all."""

    def __init__(self, victim: int = 0) -> None:
        self.victim = victim
        self._template = None

    def on_round(self, api, info, traffic):
        if self._template is not None:
            return
        for envelope in traffic:
            if envelope.channel != DISPERSE_CHANNEL or envelope.sender != self.victim:
                continue
            payload = envelope.payload
            if payload[0] == "fwd" and isinstance(payload[4], tuple) and len(payload[4]) == 8:
                msg = payload[4]
                if msg[1] == self.victim:
                    self._template = msg
                    return

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        if self._template is None or info.phase is not Phase.NORMAL:
            return plan
        from repro.crypto.hashing import encode_for_hash

        _, _, _, unit, _, _, verify_key, cert = self._template
        receiver = (self.victim + 1) % api.n
        forged_message = ("app", ("forged-by-toy", info.round))
        body = encode_for_hash(
            ("auth-msg", forged_message, self.victim, receiver, unit, info.round - 1)
        )
        signature = forge(verify_key, body)
        raw = (forged_message, self.victim, receiver, unit, info.round - 1,
               signature, verify_key, cert)
        plan[receiver].append(api.forge_envelope(
            self.victim, receiver, DISPERSE_CHANNEL,
            ("fwding", "auth", self.victim, receiver, raw)))
        return plan


def run_broken_cs_control(seed: int):
    scheme = BrokenScheme()
    public, states, keys = build_uls_states(GROUP, scheme, N, T, seed=seed)
    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(N)]
    runner = ULRunner(programs, BrokenCsForger(victim=0), uls_schedule(), s=T, seed=seed)
    execution = runner.run(units=2)
    return classify_execution(
        execution, public, scheme, key_histories(programs), T,
        certified_keys=certified_key_reprs(programs),
    )


@pytest.fixture(scope="module")
def table():
    rows = []
    for kind in ("passive", "mobile", "mobile-corrupt", "replay", "cutoff-impersonate"):
        outcomes = {"GOOD": 0, "BAD1": 0, "BAD2": 0, "BAD3": 0}
        violations = 0
        for seed in range(SEEDS):
            goodness, invariants = run_case(kind, seed)
            outcomes[goodness.classification] += 1
            violations += len(invariants.violations)
        rows.append((kind, SEEDS, outcomes["GOOD"], outcomes["BAD1"],
                     outcomes["BAD2"], outcomes["BAD3"], violations))
        assert outcomes["GOOD"] == SEEDS, f"{kind}: non-good execution"
        assert violations == 0, f"{kind}: emulation invariant violated"
    # the negative control: EUF-CMA premise removed -> BAD3 appears
    control = run_broken_cs_control(seed=0)
    rows.append(("CONTROL broken-CS forger", 1,
                 1 if control.classification == "GOOD" else 0, 0,
                 1 if control.classification == "BAD2" else 0,
                 1 if control.classification == "BAD3" else 0, "-"))
    assert control.classification == "BAD3", "control must expose the forgeable CS"
    return rows


def test_e3_uls_security(table, benchmark):
    emit("e3_uls_security", format_table(
        "E3  ULS (t,t)-security: execution classification x adversary (Thm. 14)",
        ["adversary", "runs", "GOOD", "BAD1", "BAD2", "BAD3", "invariant violations"],
        table,
    ))
    benchmark(lambda: run_case("passive", 123))
