"""Property-based tests (hypothesis) on the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.connectivity import ConnectivityTracker
from repro.sim.clock import Phase, Schedule

schedules = st.builds(
    Schedule,
    setup_rounds=st.integers(min_value=1, max_value=4),
    refresh_rounds=st.integers(min_value=1, max_value=6),
    normal_rounds=st.integers(min_value=1, max_value=8),
)


@given(schedules, st.integers(min_value=1, max_value=5))
@settings(max_examples=100)
def test_schedule_round_labels_partition(schedule, units):
    """Every round has exactly one consistent (unit, phase, index) label
    and the unit ranges tile the whole run."""
    total = schedule.total_rounds(units)
    covered = []
    for unit in range(units):
        covered.extend(schedule.rounds_of_unit(unit))
    assert covered == list(range(total))
    for round_number in range(total):
        info = schedule.info(round_number)
        assert 0 <= info.index_in_phase < info.phase_length
        assert round_number in schedule.rounds_of_unit(info.time_unit)
        if info.phase is Phase.REFRESH:
            assert info.time_unit >= 1
            assert schedule.refresh_start(info.time_unit) <= round_number


@given(schedules, st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_schedule_first_normal_round_is_normal(schedule, units):
    for unit in range(units):
        info = schedule.info(schedule.first_normal_round(unit))
        assert info.phase is Phase.NORMAL
        assert info.time_unit == unit
        assert info.index_in_phase == 0


# --------------------------------------------------------- connectivity

n_values = st.integers(min_value=3, max_value=8)


@st.composite
def fault_traces(draw):
    """Random (broken, unreliable-links) traces over a small schedule."""
    n = draw(n_values)
    s = draw(st.integers(min_value=1, max_value=n))
    rounds = draw(st.integers(min_value=2, max_value=12))
    trace = []
    for _ in range(rounds):
        broken = frozenset(draw(st.sets(st.integers(0, n - 1), max_size=n // 2)))
        pair_count = draw(st.integers(min_value=0, max_value=4))
        links = set()
        for _ in range(pair_count):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1))
            if a != b:
                links.add(frozenset((a, b)))
        trace.append((broken, frozenset(links)))
    return n, s, trace


SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)


@given(fault_traces())
@settings(max_examples=150)
def test_connectivity_invariants(case):
    """Structural invariants of the s-operational computation:
    broken nodes are never operational; with no faults at all everyone is;
    the operational set only changes through the defined rules (never
    grows outside refresh-phase promotions)."""
    n, s, trace = case
    tracker = ConnectivityTracker(n, s)
    previous = frozenset(range(n))
    for round_number, (broken, links) in enumerate(trace):
        info = SCHED.info(round_number)
        if info.phase is Phase.SETUP:
            # the adversary is inactive during set-up (model precondition)
            broken, links = frozenset(), frozenset()
        operational = tracker.observe_round(info, broken, links)
        assert operational.isdisjoint(broken)
        assert operational <= frozenset(range(n))
        if info.phase is Phase.SETUP:
            assert operational == frozenset(range(n))
        else:
            grew = operational - previous
            if grew:
                # growth only happens at the end of a refreshment phase
                assert info.phase is Phase.REFRESH and info.is_phase_end
        previous = operational


@given(n_values, st.integers(min_value=1, max_value=8))
@settings(max_examples=50)
def test_connectivity_no_faults_everyone_operational(n, s):
    s = min(s, n)
    tracker = ConnectivityTracker(n, s)
    for round_number in range(10):
        info = SCHED.info(round_number)
        operational = tracker.observe_round(info, frozenset(), frozenset())
        assert operational == frozenset(range(n))
