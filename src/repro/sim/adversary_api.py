"""Adversary interface and capabilities (§2.1–2.2).

An :class:`Adversary` interacts with the runner through an
:class:`AdversaryApi`, which exposes exactly the paper's capabilities and
nothing more:

- read all traffic (both models);
- break into nodes, obtaining (and possibly mutating) their full mutable
  state, and leave them (both models; *mobility*);
- send messages in the name of *broken* nodes (both models);
- in the UL model only, decide what every node receives — modify, delete,
  duplicate and inject messages — by overriding :meth:`Adversary.deliver`.

*Rushing* is built into the runner's call order: honest messages for the
round are computed first, then :meth:`Adversary.on_round` observes them
and may break new nodes and inject, and only then is delivery resolved.

ROM is readable but never writable (enforced by
:class:`repro.sim.rom.Rom` itself), and programs (code) are not
replaceable — the API hands out the program object for state access but
the runner keeps its own reference.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.clock import RoundInfo, Schedule
from repro.sim.messages import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.node import Node, NodeProgram
    from repro.sim.rom import Rom

__all__ = ["Adversary", "AdversaryApi", "PassiveAdversary", "faithful_delivery"]


def faithful_delivery(traffic: tuple[Envelope, ...], n: int) -> dict[int, list[Envelope]]:
    """The honest delivery plan: every message arrives unmodified."""
    plan: dict[int, list[Envelope]] = {i: [] for i in range(n)}
    for envelope in traffic:
        plan[envelope.receiver].append(envelope)
    return plan


class AdversaryApi:
    """Capability object handed to the adversary each round."""

    def __init__(self, nodes: list["Node"], info: RoundInfo, rng: random.Random) -> None:
        self._nodes = nodes
        self.info = info
        self.rng = rng
        self.n = len(nodes)
        self.injected: list[Envelope] = []
        self.break_events: list[tuple[int, str]] = []  # (node, "break"/"leave")
        self.output_entries: list[Any] = []

    # -- observation --------------------------------------------------------

    def is_broken(self, node_id: int) -> bool:
        return self._nodes[node_id].broken

    def broken_nodes(self) -> frozenset[int]:
        return frozenset(i for i, node in enumerate(self._nodes) if node.broken)

    def rom_of(self, node_id: int) -> "Rom":
        """ROM is public and readable by the adversary (writes will raise)."""
        return self._nodes[node_id].rom

    # -- break-ins ----------------------------------------------------------

    def break_into(self, node_id: int) -> "NodeProgram":
        """Compromise a node: returns its program object, whose attributes
        are the node's entire mutable state (read *and* write access)."""
        node = self._nodes[node_id]
        if not node.broken:
            node.broken = True
            self.break_events.append((node_id, "break"))
        return node.program

    def leave(self, node_id: int) -> None:
        """Release a node; its (possibly corrupted) state stays behind and
        its program resumes from the next round."""
        node = self._nodes[node_id]
        if node.broken:
            node.broken = False
            self.break_events.append((node_id, "leave"))

    def program_of(self, node_id: int) -> "NodeProgram":
        """State of an already-broken node (the paper's ongoing access)."""
        node = self._nodes[node_id]
        if not node.broken:
            raise PermissionError(f"node {node_id} is not broken")
        return node.program

    # -- acting -------------------------------------------------------------

    def send_as(self, node_id: int, receiver: int, channel: str, payload: Any) -> None:
        """Place a message on the wire in the name of a *broken* node.

        This is the only way to originate traffic in the AL model; in the
        UL model arbitrary injection is additionally possible through the
        delivery plan.
        """
        if not self._nodes[node_id].broken:
            raise PermissionError(f"cannot send as non-broken node {node_id}")
        if receiver == node_id or not (0 <= receiver < self.n):
            raise ValueError(f"bad receiver {receiver}")
        self.injected.append(
            Envelope(
                sender=node_id,
                receiver=receiver,
                channel=channel,
                payload=payload,
                round_sent=self.info.round,
            )
        )

    def output(self, entry: Any) -> None:
        """Append to the adversary's own output (part of the global output)."""
        self.output_entries.append(entry)

    # -- helpers for deliver() ---------------------------------------------

    def forge_envelope(
        self, claimed_sender: int, receiver: int, channel: str, payload: Any
    ) -> Envelope:
        """Construct an injected envelope with an arbitrary claimed sender
        (UL model only — pass it into the delivery plan)."""
        return Envelope(
            sender=claimed_sender,
            receiver=receiver,
            channel=channel,
            payload=payload,
            round_sent=self.info.round,
        )


class Adversary:
    """Base adversary: passive defaults, hooks for strategies to override."""

    def begin(self, n: int, schedule: Schedule, rng: random.Random) -> None:
        """Called once before the first post-set-up round."""
        self.n = n
        self.schedule = schedule
        self.rng = rng

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]) -> None:
        """Observe the round's honest traffic; break/leave/inject here."""

    def deliver(
        self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]
    ) -> dict[int, list[Envelope]]:
        """UL model only: decide what every node receives next round.

        The default is faithful delivery.  Strategies may drop, modify,
        duplicate and inject arbitrarily; the runner only normalizes
        receiver consistency.
        """
        return faithful_delivery(traffic, api.n)

    def finish(self) -> list[Any]:
        """Final adversary output entries (appended to the global output)."""
        return []


class PassiveAdversary(Adversary):
    """Reads everything, touches nothing — the null strategy."""
