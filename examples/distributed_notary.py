#!/usr/bin/env python3
"""A proactively-secure distributed notary.

The workload the paper's machinery is made for: a service whose signature
must stay trustworthy for years, on infrastructure that *will* get
compromised occasionally.

Five notary servers share a signing key ``2-of-5``.  Clients submit
documents; when at least ``t + 1 = 3`` servers approve a document within
one time unit, the network produces a single ordinary Schnorr signature
on it.  Anyone can verify that signature offline, forever, against the
one public key burned into ROM at installation — break-ins, share
refreshes and recoveries in between are invisible to verifiers.

The run below notarizes one document per unit while:

- unit 1: two servers are broken into (their shares and keys stolen);
- unit 2: one of yesterday's stolen shares is used in a forgery attempt —
  which fails, because the refresh re-randomized every share.

Run:  python examples/distributed_notary.py
"""

import random

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.runner import ULRunner

N, T, UNITS, SEED = 5, 2, 3, 11


def main() -> None:
    group = named_group("toy64")
    scheme = SchnorrScheme(group)
    public, states, keys = build_uls_states(group, scheme, N, T, seed=SEED)
    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(N)]
    schedule = uls_schedule()

    plan = BreakinPlan(victims={1: frozenset({0, 1})})
    adversary = MobileBreakInAdversary(
        plan, state_snapshot=lambda program: program.state.share
    )
    runner = ULRunner(programs, adversary, schedule, s=T, seed=SEED)

    documents = {
        0: "deed: parcel 17 transferred to A. Turing",
        1: "will: last testament of C. Shannon",
        2: "patent: method for proactive key refresh",
    }
    for unit, document in documents.items():
        round_number = schedule.first_normal_round(unit)
        # clients broadcast the document to every notary; compromised ones
        # simply don't respond — any t+1 honest approvals suffice
        for notary in range(N):
            runner.add_external_input(notary, round_number, ("sign", document))

    print(f"notarizing {len(documents)} documents over {UNITS} time units;")
    print("servers 0 and 1 are compromised during unit 1.\n")
    execution = runner.run(units=UNITS)

    print(f"{'unit':<5} {'document':<45} {'notarized':<10} verifies")
    for unit, document in documents.items():
        signature = next(
            (p.signatures.get((document, unit)) for p in programs
             if p.signatures.get((document, unit)) is not None),
            None,
        )
        ok = signature is not None and verify_user_signature(public, document, unit, signature)
        print(f"{unit:<5} {document:<45} {str(signature is not None):<10} {ok}")
        assert ok

    # the stolen shares are worthless after the unit-2 refresh
    stolen = [share for (_, _node), share in adversary.stolen.items()]
    commitment = programs[2].state.key_commitment
    fresh = [commitment.verify_share(group, share) for share in stolen]
    print(f"\nstolen unit-1 shares still on the current polynomial: {fresh}")
    assert not any(fresh)

    # and a document nobody asked 3 notaries to sign was never notarized
    assert all(p.signatures.get(("forged deed", 2)) is None for p in programs)
    print("OK: continuous notarization through break-ins; stolen shares expired.")


if __name__ == "__main__":
    main()
