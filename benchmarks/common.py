"""Shared infrastructure for the experiment benchmarks.

Each ``bench_e*.py`` regenerates one experiment from the per-experiment
index in DESIGN.md: it sweeps the experiment's parameters, prints the
resulting table, saves it under ``benchmarks/results/``, asserts the
paper-level claims hold (who wins / what is detected), and times one
representative kernel through pytest-benchmark.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

from repro.analysis.digest import stable_form as _stable, transcript_digest
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table, the same shape the paper's claims take."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def emit(experiment_id: str, table: str, data: Any | None = None) -> None:
    """Print the table and persist it under benchmarks/results/.

    When ``data`` is given, a machine-readable twin of the table is also
    written as ``BENCH_<EXPERIMENT>.json`` (e.g. ``e8_complexity`` →
    ``BENCH_E8.json``) so downstream tooling — CI artifacts, regression
    diffing, the ROADMAP numbers — never has to parse the text table.
    """
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(table + "\n")
    if data is not None:
        emit_json(f"BENCH_{experiment_id.split('_')[0].upper()}", data)


def emit_json(stem: str, data: Any) -> pathlib.Path:
    """Write ``data`` as canonical JSON (sorted keys) to
    ``benchmarks/results/<stem>.json`` and return the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{stem}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def table_data(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> dict:
    """The standard JSON twin of a text table: named columns per row."""
    return {
        "headers": list(headers),
        "rows": [dict(zip(headers, map(_jsonable, row))) for row in rows],
    }


def _jsonable(cell: Any) -> Any:
    if isinstance(cell, (str, int, float, bool)) or cell is None:
        return cell
    return str(cell)


# _stable / transcript_digest now live in repro.analysis.digest (the E15
# campaign layer needs them inside the package); re-exported above so the
# E8/E14 benchmarks keep their import path.


def build_uls_network(n: int, t: int, seed: int, adversary=None, relay_fanout=None,
                      normal_rounds: int = 12):
    """Standard ULS network construction used across experiments."""
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i], relay_fanout=relay_fanout)
        for i in range(n)
    ]
    schedule = uls_schedule(normal_rounds=normal_rounds)
    runner = ULRunner(programs, adversary or PassiveAdversary(), schedule,
                      s=t, seed=seed)
    return public, programs, runner, schedule


def key_histories(programs) -> dict[int, dict[int, str]]:
    return {i: dict(p.keystore.history) for i, p in enumerate(programs)}


def certified_key_reprs(programs) -> dict[int, dict[int, tuple]]:
    return {i: dict(p.keystore.key_reprs) for i, p in enumerate(programs)}
