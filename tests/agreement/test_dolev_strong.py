"""Tests for Dolev-Strong authenticated broadcast."""

import pytest

from repro.agreement.dolev_strong import BOTTOM, DolevStrongProgram, _chain_message
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import Adversary, PassiveAdversary
from repro.sim.clock import Phase, Schedule
from repro.sim.runner import ALRunner

SCHEME = SchnorrScheme(named_group("toy64"))
SCHED = Schedule(setup_rounds=2, refresh_rounds=1, normal_rounds=10)


def run(n, t, broadcasts, adversary=None, seed=1):
    programs = [DolevStrongProgram(SCHEME, t, broadcasts) for _ in range(n)]
    runner = ALRunner(programs, adversary or PassiveAdversary(), SCHED, seed=seed)
    execution = runner.run(units=1)
    return execution, runner


def decisions(execution, n, session_id):
    out = {}
    for i in range(n):
        for entry in execution.outputs_of(i):
            if entry[0] == "ds-decide" and entry[1] == session_id:
                out[i] = entry[2]
    return out


def test_honest_sender_all_decide_value():
    broadcasts = {"s1": (0, ("val", 42), 3)}
    execution, _ = run(n=4, t=1, broadcasts=broadcasts)
    got = decisions(execution, 4, "s1")
    assert got == {i: ("val", 42) for i in range(4)}


def test_multiple_sessions_in_parallel():
    broadcasts = {
        "a": (0, "alpha", 3),
        "b": (1, "beta", 3),
        "c": (2, "gamma", 4),
    }
    execution, _ = run(n=4, t=1, broadcasts=broadcasts)
    for session, (_, value, _) in broadcasts.items():
        assert decisions(execution, 4, session) == {i: value for i in range(4)}


def test_silent_sender_decides_bottom():
    """A broken sender that sends nothing: everyone outputs ⊥."""

    class SilenceSender(Adversary):
        def on_round(self, api, info, traffic):
            if info.round >= 2:
                api.break_into(0)

    broadcasts = {"s": (0, "value", 3)}
    execution, _ = run(n=4, t=1, broadcasts=broadcasts, adversary=SilenceSender())
    got = decisions(execution, 4, "s")
    assert got[1] == got[2] == got[3] == BOTTOM


def test_equivocating_sender_consistent_decisions():
    """A byzantine sender sends different signed values to different nodes;
    with t+1 rounds of forwarding all honest nodes still agree."""

    class EquivocatingSender(Adversary):
        """Breaks node 0 and sends conflicting chains at the start round."""

        def __init__(self, runner_box):
            self.runner_box = runner_box

        def on_round(self, api, info, traffic):
            if info.round == 2:
                self.program = api.break_into(0)
            if info.round == 3:
                # craft two conflicting round-1 chains with 0's real key
                for value, receivers in (("v1", (1,)), ("v2", (2, 3))):
                    message = _chain_message("s", value)
                    signature = self.program.scheme.sign(
                        self.program.keypair.signing_key, message
                    )
                    for receiver in receivers:
                        api.send_as(0, receiver, "dolev-strong",
                                    ("ds-fwd", "s", value, [(0, signature)]))

    broadcasts = {"s": (0, "honest", 3)}
    execution, _ = run(n=4, t=1, broadcasts=broadcasts,
                       adversary=EquivocatingSender(None))
    got = decisions(execution, 4, "s")
    honest = [got[i] for i in (1, 2, 3)]
    # agreement among honest nodes (they all extract both values -> ⊥, or
    # forwarding converged on one)
    assert len(set(map(repr, honest))) == 1
    assert honest[0] == BOTTOM  # both values circulate within t+1 = 2 rounds


def test_forged_chain_rejected():
    """An injected chain with an invalid signature never gets extracted."""

    class Forger(Adversary):
        def on_round(self, api, info, traffic):
            if info.round == 3:
                api.break_into(1)
                api.send_as(1, 2, "dolev-strong",
                            ("ds-fwd", "s", "forged-value", [(0, "garbage-sig")]))
                api.leave(1)

    broadcasts = {"s": (0, "honest", 3)}
    execution, _ = run(n=4, t=1, broadcasts=broadcasts, adversary=Forger())
    got = decisions(execution, 4, "s")
    assert got[2] == "honest"


def test_chain_validation_rules():
    broadcasts = {"s": (0, "v", 3)}
    _, runner = run(n=4, t=1, broadcasts=broadcasts)
    program = runner.nodes[1].program
    message = _chain_message("s", "v")
    sig0 = SCHEME.sign(runner.nodes[0].program.keypair.signing_key, message)
    sig2 = SCHEME.sign(runner.nodes[2].program.keypair.signing_key, message)
    # wrong length for round index
    assert not program._valid_chain("s", "v", [(0, sig0)], round_index=2)
    # chain must start with the designated sender
    assert not program._valid_chain("s", "v", [(2, sig2)], round_index=1)
    # duplicate signers rejected
    assert not program._valid_chain("s", "v", [(0, sig0), (0, sig0)], round_index=2)
    # valid single-link chain accepted
    assert program._valid_chain("s", "v", [(0, sig0)], round_index=1)
