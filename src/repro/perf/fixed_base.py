"""Fixed-base exponentiation windows.

A :class:`FixedBaseWindow` precomputes ``base^(d · 2^(w·i)) mod p`` for
every window position ``i`` and digit ``d < 2^w``, turning each later
exponentiation into ``⌈bits/w⌉`` table lookups and modular products —
the classic fixed-base windowing method (Brickell et al.; HAC 14.109).

For a ``b``-bit order this replaces ``~1.5·b`` modular products inside
``pow`` with ``~b/w`` Python-level products, which wins once the modulus
is large enough that bigint multiplication dominates interpreter
overhead.  :mod:`repro.crypto.group` therefore only engages windows above
``PerfConfig.fixed_base_min_bits`` (CPython's C ``pow`` is unbeatable for
toy 64-bit groups).

The computed value is exactly ``pow(base, exponent % order, modulus)`` —
the window is a speedup, never a semantic change.
"""

from __future__ import annotations

__all__ = ["FixedBaseWindow"]


class FixedBaseWindow:
    """Precomputed powers of one fixed base modulo ``modulus``.

    Args:
        base: the fixed base (reduced mod ``modulus``).
        modulus: the group modulus ``p``.
        order: the exponent order ``q`` (exponents are reduced mod ``q``).
        window: window width ``w`` in bits (default 5: a good trade-off
            between table size ``⌈bits/w⌉·2^w`` and per-exponentiation
            work ``⌈bits/w⌉`` products).
    """

    __slots__ = ("base", "modulus", "order", "window", "_table", "_mask")

    def __init__(self, base: int, modulus: int, order: int, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if modulus < 2 or order < 1:
            raise ValueError("modulus and order must be positive")
        base %= modulus
        self.base = base
        self.modulus = modulus
        self.order = order
        self.window = window
        self._mask = (1 << window) - 1
        radix = 1 << window
        digits = (order.bit_length() + window - 1) // window
        table: list[list[int]] = []
        g_i = base  # base^(radix^i), advanced per row
        for _ in range(digits):
            row = [1] * radix
            acc = 1
            for d in range(1, radix):
                acc = acc * g_i % modulus
                row[d] = acc
            table.append(row)
            g_i = row[radix - 1] * g_i % modulus
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` (exponent reduced mod order)."""
        e = exponent % self.order
        acc = 1
        modulus = self.modulus
        mask = self._mask
        window = self.window
        i = 0
        table = self._table
        while e:
            digit = e & mask
            if digit:
                acc = acc * table[i][digit] % modulus
            e >>= window
            i += 1
        return acc

    def __repr__(self) -> str:
        return (
            f"FixedBaseWindow(bits={self.modulus.bit_length()}, "
            f"window={self.window}, rows={len(self._table)})"
        )
