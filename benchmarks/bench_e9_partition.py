"""E9 — §6 scalability: the two-level √n-partition trade-off.

The paper: partitioning an n-node network into √n neighborhoods of √n
nodes each drops tolerance from ~n/2 to ~n/4 break-ins per unit, in
exchange for refresh traffic that is k independent small instances
instead of one giant one.

The tolerance columns are computed exactly from the partition
combinatorics; the message columns are *measured* by running a real ULS
instance of one neighborhood (and, where feasible, of the flat network).
With the message-volume layer in place, the flat network *is* feasible
at the first two table points — n = 16 and n = 25 are now real runs
(t = (n-1)/2 full-flood ULS instances), and only n ≥ 36 still comes
from the power-law fit; a source column says which is which.  Results
land in ``benchmarks/results/BENCH_E9.json``; ``BENCH_SMOKE=1`` keeps
only the n = 16 flat run real.
"""

import os

import pytest

from repro.scale.partition import PartitionPlan, flat_tolerance, simulate_cluster

from common import GROUP, SCHEME, build_uls_network, emit, emit_json, format_table, \
    table_data
from repro.analysis.metrics import message_stats

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: small flat networks measured directly (fit anchor points)
MEASURABLE_FLAT = (4, 5, 6, 7, 8, 9)
#: table-point flat networks measured for real rather than fitted
#: (n = 25 runs ~2 minutes at t = 12; smoke keeps just n = 16)
MEASURED_TABLE_FLAT = (16,) if SMOKE else (16, 25)


def measure_flat(n: int) -> float:
    t = (n - 1) // 2
    public, programs, runner, schedule = build_uls_network(n, t, seed=1)
    execution = runner.run(units=2)
    return message_stats(execution).per_refresh_phase


def fit_power_law(points: list[tuple[int, float]]):
    """Least-squares fit of cost = a * n^b in log space."""
    import math

    xs = [math.log(n) for n, _ in points]
    ys = [math.log(c) for _, c in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )
    intercept = mean_y - slope * mean_x
    return lambda n: math.exp(intercept) * n ** slope, slope


E9_HEADERS = ["n", "clusters", "sizes", "flat tolerance (~n/2)",
              "partitioned tolerance (~n/4)",
              "partitioned msgs/refresh (measured)", "flat msgs/refresh",
              "flat source", "traffic saving"]


@pytest.fixture(scope="module")
def table():
    anchor_points = [(n, measure_flat(n)) for n in MEASURABLE_FLAT]
    measured_flat = {n: measure_flat(n) for n in MEASURED_TABLE_FLAT}
    # the real table-point runs double as extra fit anchors, so the
    # extrapolation to n >= 36 rests on measurements up to n = 25
    flat_estimate, exponent = fit_power_law(anchor_points + sorted(measured_flat.items()))
    rows = []
    cluster_cost_cache: dict[int, float] = {}
    for n in (16, 25, 36, 64, 100):
        plan = PartitionPlan.sqrt_partition(n)
        sizes = sorted(set(len(c) for c in plan.clusters))
        for size in sizes:
            if size not in cluster_cost_cache:
                _, stats = simulate_cluster(GROUP, SCHEME, size=size, units=2, seed=1)
                cluster_cost_cache[size] = stats.per_refresh_phase
        partitioned_total = sum(
            cluster_cost_cache[len(c)] for c in plan.clusters
        )
        flat_cost = measured_flat.get(n, flat_estimate(n))
        rows.append((
            n,
            plan.cluster_count,
            "/".join(str(len(c)) for c in plan.clusters[:4]) + ("..." if plan.cluster_count > 4 else ""),
            flat_tolerance(n),
            plan.tolerance(),
            int(partitioned_total),
            int(flat_cost),
            "measured" if n in measured_flat else "fit",
            f"{flat_cost / partitioned_total:.1f}x",
        ))
        # the paper's headline: tolerance drops to roughly a quarter...
        assert plan.tolerance() < flat_tolerance(n)
        assert plan.tolerance() + 1 >= n / 8
        # ...and the traffic saving is real and grows with n
        assert flat_cost > partitioned_total
    anchors = f"n=4..9 + {','.join(str(n) for n in sorted(measured_flat))}"
    rows.append((f"(flat cost fit: ~n^{exponent:.1f}, anchors {anchors})",
                 "", "", "", "", "", "", "", ""))
    return rows


def test_e9_partition_tradeoff(table, benchmark):
    emit("e9_partition", format_table(
        "E9  Two-level partition (§6): tolerance ~n/2 -> ~n/4, refresh "
        "traffic = sum of small neighborhoods (measured)",
        E9_HEADERS,
        table,
    ))
    emit_json("BENCH_E9_smoke" if SMOKE else "BENCH_E9", {
        "experiment": "e9_partition",
        "config": {"group": "toy64", "units": 2, "smoke": SMOKE,
                   "measured_flat": list(MEASURED_TABLE_FLAT)},
        "partition_tradeoff": table_data(E9_HEADERS, table[:-1]),
        "fit_note": table[-1][0],
    })
    benchmark(lambda: simulate_cluster(GROUP, SCHEME, size=4, units=2, seed=2))
