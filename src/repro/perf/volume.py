"""The message-volume layer: broadcast certification and sampled helpers.

Everything else in :mod:`repro.perf` keeps the wire traffic bit-identical
and only changes how fast each envelope is processed.  The volume layer
(``PerfConfig.msg_volume``) is different: it changes *which* envelopes are
sent on the refresh/DKG hot path, with a provable fallback so protocol
outcomes — accepted messages, rejected-dealer sets, key histories, blame
attribution — stay identical to the layer-off run.  Three mechanisms:

* **broadcast certification** — a round-wide message is signed once with
  the :data:`BROADCAST` destination sentinel instead of once per receiver;
  VER-CERT accepts the sentinel for any receiver (the signature still
  binds source, unit and round, which is what replay protection needs —
  the per-receiver destination only ever narrowed *who may accept*, and a
  round-wide message is by construction addressed to everyone).  The
  DISPERSE layer carries it with a single two-phase echo flood
  (``O(f·n)`` envelopes) instead of ``n-1`` point-to-point dispersals
  (``O(n·f)`` each with per-destination duplication).

* **receipt aggregation** — per-session bodies that every node sends to
  every node each round (threshold-signer acks/reveals/partials,
  PARTIAL-AGREEMENT step-3 re-dispersals) are packed into one signed
  plural body per node per round; the existing batched-Schnorr machinery
  (``ver_cert_many``) verifies the single certificate covering all of
  them.  Secret-bearing bodies (``ts-deal`` nonce shares, ``rf-blind``
  sub-shares) are never packed — they are per-receiver private values.

* **sampled need/help** — share-recovery responders are chosen by the
  seed-deterministic :func:`responder_sample` of size ``O(t)`` instead of
  all ``n-1`` holders; a failed recovery escalates the next request to
  full fan-out, so liveness matches the layer-off run after one extra
  refresh and blame attribution is unaffected (help messages are never
  blamed).

Because the wire traffic differs, parity is checked at the protocol
outcome level (:func:`repro.analysis.digest.outcome_digest`, rejected
sets, key histories) rather than by transcript digest.
"""

from __future__ import annotations

from repro.crypto.hashing import tagged_hash

__all__ = ["BROADCAST", "responder_sample", "sample_size"]

#: Destination sentinel for broadcast-certified messages.  Real node ids
#: are non-negative, so the sentinel can never collide with a receiver.
BROADCAST = -1

_SAMPLE_TAG = "repro/volume/responder-sample"


def sample_size(n: int, t: int) -> int:
    """Number of sampled helpers: ``2t+1`` holders guarantee ``t+1``
    honest consistent sub-shares even if ``t`` sampled nodes are corrupted,
    capped at the ``n-1`` nodes that exist besides the requester."""
    return min(n - 1, 2 * t + 1)


def responder_sample(unit: int, requester: int, n: int, t: int) -> tuple[int, ...]:
    """Seed-deterministic helper sample for a share-recovery request.

    Ranks every node except the requester by
    ``H(tag, unit, requester, node)`` and takes the lowest
    :func:`sample_size` of them.  Every node computes the same sample from
    public inputs alone, so helpers self-select without coordination and
    the requester knows exactly whom to expect help from.  The hash
    ranking spreads the helper load across units and requesters instead of
    always electing the lowest ids.
    """
    prefix = (
        unit.to_bytes(8, "big", signed=True)
        + requester.to_bytes(8, "big", signed=True)
    )
    candidates = sorted(
        (node for node in range(n) if node != requester),
        key=lambda node: tagged_hash(
            _SAMPLE_TAG, prefix, node.to_bytes(8, "big", signed=True)
        ),
    )
    return tuple(sorted(candidates[: sample_size(n, t)]))
