"""Post-hoc analysis of executions.

- :mod:`repro.analysis.goodness` — the Definition 17/18 classification
  (GOOD vs BAD1/BAD2/BAD3) that drives the Theorem 14 experiments.
- :mod:`repro.analysis.emulation` — finite emulation invariants derived
  from the ideal signing process (§3.1, Lemmas 26–28).
- :mod:`repro.analysis.monitor` — the same invariants evaluated
  *during* the run (attach to a runner as an observer; fail-fast).
- :mod:`repro.analysis.metrics` — message/alert/availability statistics.
- :mod:`repro.analysis.digest` — canonical transcript digests (the
  determinism-replay primitive).
- :mod:`repro.analysis.slo` — recovery-SLO telemetry (time-to-recovery,
  alert latency, degraded dwell, signing availability).
"""

from repro.analysis.awareness import GlobalAwarenessReport, global_awareness
from repro.analysis.digest import stable_form, transcript_digest
from repro.analysis.slo import RecoverySloObserver
from repro.analysis.emulation import EmulationReport, check_emulation_invariants
from repro.analysis.goodness import ForgedMessage, GoodnessReport, classify_execution
from repro.analysis.monitor import (
    InvariantViolationError,
    RuntimeInvariantMonitor,
    Violation,
)
from repro.analysis.metrics import (
    MessageStats,
    alert_counts,
    certification_availability,
    delivery_rate,
    message_stats,
    recovery_units,
)

__all__ = [
    "GlobalAwarenessReport",
    "global_awareness",
    "EmulationReport",
    "check_emulation_invariants",
    "InvariantViolationError",
    "RuntimeInvariantMonitor",
    "Violation",
    "ForgedMessage",
    "GoodnessReport",
    "classify_execution",
    "MessageStats",
    "alert_counts",
    "certification_availability",
    "delivery_rate",
    "message_stats",
    "recovery_units",
    "RecoverySloObserver",
    "stable_form",
    "transcript_digest",
]
