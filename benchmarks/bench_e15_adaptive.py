"""E15 — adaptive chaos campaigns: failure frontier and recovery SLOs.

Where E13 replays *static* seeded fault plans, E15 turns the adversary
adaptive: each strategy reads the transcript so far (through its
``ExecutionLens``) and chooses the current unit's faults online —
re-breaking nodes the unit after they recover, dropping the busiest
DISPERSE links, starving the refreshment phase's certificate channels.
Two claims are measured:

1. **The guard holds.**  With requests projected through the online
   ``StBudgetGuard``, every campaign's escalation ladder — up to full
   aggressiveness — runs violation-free, the post-hoc Definition 7 audit
   passes on every probe, and the safety margin is established.  This is
   the adaptive sharpening of Theorem 14's robustness reading: the
   invariants survive not just any (s,t)-limited schedule, but an
   (s,t)-limited *adaptive* one.
2. **Unguarded, there is a frontier.**  The same strategies with the
   guard off violate L1 once they want more than ``t`` victims; the
   campaign bisects to the frontier knob, which localises how much
   over-budget pressure the protocol absorbs before Definition 7 stops
   applying.

Every guarded probe also carries a ``RecoverySloObserver``: the emitted
``BENCH_E15.json`` records per-strategy frontier knobs, the SLO
distributions (time-to-recovery, signing availability) and the
determinism replay (same campaign seed ⇒ identical per-probe transcript
digests).  ``BENCH_SMOKE=1`` runs a reduced sweep for CI.
"""

import os

import pytest

from repro.adversary.limits import audit_st_limited
from repro.analysis.monitor import RuntimeInvariantMonitor
from repro.analysis.slo import RecoverySloObserver
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.faults import (
    AdaptiveAdversary,
    Probe,
    TrafficTargeterStrategy,
    escalate,
    make_strategy,
)
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, emit, format_table

SMOKE = os.environ.get("BENCH_SMOKE", "0") == "1"

UNITS = 4
ULS_SCHED = uls_schedule(normal_rounds=12)
ECHO_SCHED = Schedule(setup_rounds=2, refresh_rounds=4, normal_rounds=10)
STRATEGIES = ("recovery-chaser", "traffic-targeter", "certificate-starver")
SIZES = ((5, 2),) if SMOKE else ((5, 2), (7, 2))
SEEDS = range(1) if SMOKE else range(7)
LADDER = (0.3, 1.0) if SMOKE else (0.3, 0.6, 1.0)


class Chatter(NodeProgram):
    """Minimal broadcast chatter: steady symmetric traffic on every link,
    the cheap scenario for the unguarded frontier campaigns."""

    def __init__(self) -> None:
        super().__init__()
        self.counter = 0

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        ctx.broadcast("echo", ("tick", self.node_id, self.counter))
        self.counter += 1


def build_uls_probe(strategy_name: str, n: int, t: int, seed: int,
                    aggressiveness: float, *, guarded: bool = True) -> Probe:
    """A full-ULS probe with per-unit sign traffic, SLO telemetry and a
    post-hoc Definition 7 audit in its extras."""
    adversary = AdaptiveAdversary(make_strategy(strategy_name), t, seed=seed,
                                  guarded=guarded, aggressiveness=aggressiveness)
    monitor = RuntimeInvariantMonitor(t, fail_fast=True)
    slo = RecoverySloObserver()
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=seed)
    programs = [
        UlsProgram(states[i], SCHEME, keys[i],
                   cert_retransmit=1, cert_grace_rounds=1)
        for i in range(n)
    ]
    runner = ULRunner(programs, adversary, ULS_SCHED, s=t, seed=seed,
                      observers=[adversary.lens, monitor, slo])
    # one sign request per node per unit: DISPERSE relay traffic for the
    # traffic-targeter to read, signing availability for the SLO to score
    for unit in range(1, UNITS):
        sign_round = ULS_SCHED.first_normal_round(unit) + 2
        for i in range(n):
            runner.add_external_input(i, sign_round, ("sign", f"msg-u{unit}"))

    def extras(execution):
        return {
            "slo": slo.report(),
            "st_audit_ok": audit_st_limited(execution, t).within_limits,
        }

    return Probe(runner=runner, units=UNITS, monitor=monitor, extras=extras)


def build_echo_probe(strategy_name: str, n: int, t: int, seed: int,
                     aggressiveness: float, *, guarded: bool = False) -> Probe:
    """Chatter probe for the frontier search: every link is busy every
    round, so the targeter has traffic to rank and violations are cheap
    to reach (fail-fast aborts at the offending round)."""
    strategy = (TrafficTargeterStrategy(channel="echo")
                if strategy_name == "traffic-targeter"
                else make_strategy(strategy_name))
    adversary = AdaptiveAdversary(strategy, t, seed=seed, guarded=guarded,
                                  aggressiveness=aggressiveness)
    monitor = RuntimeInvariantMonitor(t, fail_fast=True)
    runner = ULRunner([Chatter() for _ in range(n)], adversary, ECHO_SCHED,
                      s=t, seed=seed, observers=[adversary.lens, monitor])
    return Probe(runner=runner, units=UNITS, monitor=monitor)


@pytest.fixture(scope="module")
def guarded_campaigns():
    """The acceptance sweep: strategies x sizes x seeds, each escalated
    over the full ladder with the budget guard on."""
    campaigns = []
    for strategy_name in STRATEGIES:
        for n, t in SIZES:
            for seed in SEEDS:
                campaign_id = f"{strategy_name}-n{n}-s{seed}"
                result = escalate(
                    campaign_id,
                    lambda knob, sn=strategy_name, nn=n, tt=t, ss=seed:
                        build_uls_probe(sn, nn, tt, ss, knob),
                    ladder=LADDER, bisect_steps=0,
                )
                campaigns.append({
                    "strategy": strategy_name, "n": n, "t": t, "seed": seed,
                    "result": result,
                })
    return campaigns


@pytest.fixture(scope="module")
def frontier_campaigns():
    """Negative controls: the same strategies unguarded.  The chaser and
    targeter break L1 on chatter once they want > t victims; the starver
    needs real certificate traffic, so its frontier runs on the ULS."""
    frontiers = {}
    ladder = (0.2, 0.4, 0.6, 0.8, 1.0)
    for strategy_name in ("recovery-chaser", "traffic-targeter"):
        frontiers[strategy_name] = escalate(
            f"frontier-{strategy_name}",
            lambda knob, sn=strategy_name: build_echo_probe(sn, 5, 2, 0, knob),
            ladder=ladder, bisect_steps=0 if SMOKE else 2,
        )
    frontiers["certificate-starver"] = escalate(
        "frontier-certificate-starver",
        lambda knob: build_uls_probe("certificate-starver", 5, 2, 0, knob,
                                     guarded=False),
        ladder=ladder, bisect_steps=0 if SMOKE else 2,
    )
    return frontiers


def test_e15_guarded_campaigns_establish_the_margin(guarded_campaigns,
                                                    frontier_campaigns,
                                                    benchmark):
    if not SMOKE:
        assert len(guarded_campaigns) >= 40  # the acceptance floor

    rows = []
    slo_distributions = {name: {"ttr_units_max": [],
                                "signing_availability_min": [],
                                "alerts": []}
                         for name in STRATEGIES}
    for campaign in guarded_campaigns:
        result = campaign["result"]
        # zero invariant violations at every knob, guard margin certified
        assert result.margin_established, result.as_dict()
        assert result.first_violation is None
        # every probe passes the post-hoc Definition 7 audit
        for probe in result.probes:
            assert probe.ok and probe.digest, result.campaign_id
            assert probe.extras["st_audit_ok"], (result.campaign_id,
                                                 probe.aggressiveness)
        dist = slo_distributions[campaign["strategy"]]
        top = result.probes[-1]  # the full-aggressiveness probe
        dist["ttr_units_max"].append(top.extras["slo"]["ttr_units_max"])
        dist["signing_availability_min"].append(
            top.extras["slo"]["signing_availability_min"])
        dist["alerts"].append(len(top.extras["slo"]["alerts"]))
        rows.append((campaign["strategy"], campaign["n"], campaign["t"],
                     campaign["seed"], len(result.probes),
                     "yes" if result.margin_established else "NO",
                     top.extras["slo"]["ttr_units_max"],
                     f"{top.extras['slo']['signing_availability_min']:.2f}"))

    # the guard is not vacuous: the same strategies unguarded do violate
    frontier_summary = {}
    for name, result in frontier_campaigns.items():
        assert result.frontier is not None, name
        assert not result.margin_established
        assert result.last_clean is not None and result.last_clean < result.frontier
        assert result.first_violation["invariant"] == "L1-limit"
        frontier_summary[name] = {
            "frontier": result.frontier,
            "last_clean": result.last_clean,
            "first_violation": result.first_violation,
        }

    # the victims *did* go down and *did* recover on schedule: at full
    # aggressiveness the chaser's worst time-to-recovery is the Def. 5.3
    # contract value (one unit), never worse
    chaser_ttr = slo_distributions["recovery-chaser"]["ttr_units_max"]
    assert chaser_ttr and all(ttr == 1 for ttr in chaser_ttr)

    headers = ["strategy", "n", "t", "seed", "probes", "margin",
               "ttr_units_max", "signing_avail_min"]
    payload = {
        "units": UNITS,
        "ladder": list(LADDER),
        "campaigns": [
            {"strategy": c["strategy"], "n": c["n"], "t": c["t"],
             "seed": c["seed"], **c["result"].as_dict()}
            for c in guarded_campaigns
        ],
        "frontiers": frontier_summary,
        "slo_distributions": slo_distributions,
    }
    if SMOKE:
        from common import emit_json
        emit_json("BENCH_E15_smoke", payload)
    else:
        emit("e15_adaptive", format_table(
            "E15  adaptive campaigns: guarded escalation margins + SLOs "
            "(frontier in JSON)",
            headers, rows,
        ), data=payload)
    benchmark(lambda: build_uls_probe("recovery-chaser", 5, 2, 0, 1.0)
              .runner.run(UNITS))


def test_e15_campaigns_are_deterministic(guarded_campaigns):
    """S6: replaying a campaign under the same seed reproduces every
    probe's transcript digest bit-for-bit."""
    first_seed = min(SEEDS)
    for strategy_name in STRATEGIES:
        original = next(
            c["result"] for c in guarded_campaigns
            if c["strategy"] == strategy_name and c["n"] == 5
            and c["seed"] == first_seed)
        replay = escalate(
            f"{strategy_name}-replay",
            lambda knob, sn=strategy_name: build_uls_probe(sn, 5, 2, first_seed, knob),
            ladder=LADDER, bisect_steps=0,
        )
        assert ([p.digest for p in replay.probes]
                == [p.digest for p in original.probes]), strategy_name
        assert all(p.digest for p in replay.probes)


def test_e15_different_campaign_seeds_diverge():
    """The digests actually depend on the seed (the replay test is not
    comparing constants)."""
    a = build_uls_probe("recovery-chaser", 5, 2, 1, 1.0)
    b = build_uls_probe("recovery-chaser", 5, 2, 2, 1.0)
    from repro.analysis.digest import transcript_digest
    assert transcript_digest(a.runner.run(UNITS)) != transcript_digest(b.runner.run(UNITS))
