"""Runtime invariant monitoring: fail-fast emulation checking.

:func:`repro.analysis.emulation.check_emulation_invariants` is post-hoc —
a run that breaks Lemma 26/27 invariants in round 3 still burns every
remaining unit before the transcript is inspected.
:class:`RuntimeInvariantMonitor` is the incremental version: attached to
a runner as a :class:`~repro.sim.runner.RunObserver`, it consumes each
:class:`~repro.sim.transcript.RoundRecord` and each node-output entry the
moment it appears and raises :class:`InvariantViolationError` (or, with
``fail_fast=False``, records the violation) with *exact round
attribution*: the round of the offending event and the round at which the
violation became decidable.

A round-by-round checker must respect what is decidable *when* — the
invariants quantify over whole time units, so checking them naively
mid-unit produces false alarms (a legitimately-signed message looks
under-requested until the unit's requests and break-ins have all
happened).  The finalization points are:

- **L1 (adversary limit, Definition 7)** — per round, immediately: the
  impaired set ``broken ∪ non-operational`` may never exceed ``limit_t``
  nodes.  This is the instantaneous reading audited post-hoc by
  :func:`repro.adversary.limits.audit_st_limited`, and the only invariant
  that is decidable the very round it breaks — it is what powers the
  "fail-fast with the exact round number" guarantee on over-budget plans.
- **I1 (threshold)** — decided for a ``signed`` event once its unit's
  data is final: at the unit boundary for events inside the unit,
  immediately for events arriving after it (threshold signing may
  legitimately complete early in unit ``u + 1``).
- **I2 (liveness)** — decided when unit ``u + 2`` starts (one-unit grace
  for late ``signed`` events) or at run end.
- **I3 (alert soundness)** — decided at the unit boundary ("operational
  throughout the unit" is not knowable earlier).

The monitor also collects the protocol's structured ``("degraded", {...})``
events (see :mod:`repro.core.uls`) — degradation is *not* a violation (it
is the protocol surviving a fault), but analyses and benchmarks want the
list.

On a clean (in-limits) run, ``monitor.violations`` at run end equals the
post-hoc checker's violations plus the L1 stream — the chaos tests assert
this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.emulation import _key
from repro.sim.node import ALERT
from repro.sim.runner import RunObserver
from repro.sim.transcript import Execution, RoundRecord

__all__ = ["InvariantViolationError", "RuntimeInvariantMonitor", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One invariant violation with full round attribution."""

    invariant: str       # "L1-limit" / "I1-threshold" / "I2-liveness" / "I3-false-alert"
    unit: int
    event_round: int     # round of the offending event (or of detection for I2)
    detected_round: int  # round at which the violation became decidable
    details: Any

    def as_tuple(self) -> tuple[str, Any]:
        """The post-hoc checker's ``(label, payload)`` shape."""
        return (self.invariant, self.details)


class InvariantViolationError(AssertionError):
    """Raised by a fail-fast monitor the moment a violation is decidable."""

    def __init__(self, violation: Violation) -> None:
        self.violation = violation
        super().__init__(
            f"{violation.invariant} in unit {violation.unit}: "
            f"event at round {violation.event_round}, "
            f"detected at round {violation.detected_round}: {violation.details}"
        )


@dataclass
class _UnitState:
    broken: set[int] = field(default_factory=set)
    stable: set[int] | None = None          # intersection of operational sets
    alerts: list[tuple[int, int]] = field(default_factory=list)  # (node, round)
    pending_signed: list[tuple[Any, int, int]] = field(default_factory=list)
    # pending_signed: (key, node, event_round) awaiting the unit boundary


class RuntimeInvariantMonitor(RunObserver):
    """Incremental I1/I2/I3 + per-round adversary-limit checking.

    Args:
        t: the protocol's resilience threshold (I1/I2/I3 use it exactly as
            the post-hoc checker does).
        limit_t: the per-round impaired-set bound for the L1 check
            (defaults to ``t``).
        check_limits: set ``False`` to disable L1 when the experiment
            deliberately exceeds the adversary budget (e.g. the §5.1
            almost-limited attacks, where emulation is *supposed* to
            degrade and only I3 awareness is asserted).
        fail_fast: raise :class:`InvariantViolationError` at detection
            (default); otherwise collect into :attr:`violations`.
    """

    def __init__(
        self,
        t: int,
        *,
        limit_t: int | None = None,
        check_limits: bool = True,
        fail_fast: bool = True,
    ) -> None:
        self.t = t
        self.limit_t = t if limit_t is None else limit_t
        self.check_limits = check_limits
        self.fail_fast = fail_fast
        self.violations: list[Violation] = []
        self.degraded_events: list[tuple[int, int, dict]] = []  # (node, round, payload)
        self.rounds_seen = 0
        self.finalized = False
        self._cursor: list[int] | None = None   # per-node index into node_outputs
        self._units: dict[int, _UnitState] = {}
        self._asked: dict[Any, set[int]] = {}   # (key, unit) -> requesters
        self._signed: dict[Any, set[int]] = {}  # (key, unit) -> reporters
        self._i1_done: dict[int, bool] = {}     # unit -> boundary finalized
        self._i2_done: set[int] = set()
        self._last_unit = -1

    # -- RunObserver ----------------------------------------------------------

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        n = execution.n
        if self._cursor is None:
            self._cursor = [0] * n
        info = record.info
        unit = info.time_unit
        self.rounds_seen += 1

        # unit boundary: everything about earlier units is now final
        if unit > self._last_unit:
            for done in range(max(self._last_unit, 0), unit):
                self._finalize_unit(done, n, detected_round=info.round)
            for done in range(0, unit - 1):
                self._finalize_i2(done, n, detected_round=info.round)
            self._last_unit = unit

        state = self._units.setdefault(unit, _UnitState())
        state.broken |= record.broken
        operational = set(record.operational)
        state.stable = operational if state.stable is None else state.stable & operational

        # L1: the only invariant decidable the round it breaks
        if self.check_limits:
            impaired = set(record.broken) | (set(range(n)) - operational)
            if len(impaired) > self.limit_t:
                self._violate(Violation(
                    invariant="L1-limit",
                    unit=unit,
                    event_round=info.round,
                    detected_round=info.round,
                    details={"impaired": sorted(impaired), "limit": self.limit_t},
                ))

        # consume new node-output entries
        for node in range(n):
            outputs = execution.node_outputs[node]
            for index in range(self._cursor[node], len(outputs)):
                event_round, entry = outputs[index]
                self._consume(node, event_round, entry, unit, n)
            self._cursor[node] = len(outputs)

    def on_run_end(self, execution: Execution) -> None:
        if self.finalized:
            return
        n = execution.n
        last_round = execution.records[-1].info.round if execution.records else 0
        for unit in sorted(self._units):
            self._finalize_unit(unit, n, detected_round=last_round)
            self._finalize_i2(unit, n, detected_round=last_round)
        self.finalized = True

    # -- reporting ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_tuples(self) -> list[tuple[str, Any]]:
        """Violations in the post-hoc checker's ``(label, payload)`` shape."""
        return [violation.as_tuple() for violation in self.violations]

    # -- internals ------------------------------------------------------------

    def _consume(self, node: int, event_round: int, entry: Any, unit: int, n: int) -> None:
        if entry == ALERT:
            self._units.setdefault(unit, _UnitState()).alerts.append((node, event_round))
            return
        if isinstance(entry, tuple) and len(entry) == 2 and entry[0] == "degraded" \
                and isinstance(entry[1], dict):
            self.degraded_events.append((node, event_round, entry[1]))
            return
        if not isinstance(entry, tuple) or len(entry) != 3:
            return
        head, message, event_unit = entry
        if head == "asked-to-sign":
            self._asked.setdefault((_key(message), event_unit), set()).add(node)
        elif head == "signed":
            key = (_key(message), event_unit)
            self._signed.setdefault(key, set()).add(node)
            if self._i1_done.get(event_unit):
                # the event's unit is over: its request/break-in data is
                # final, so this signature is decidable right now
                self._check_i1(key, node, event_round, detected_round=event_round, n=n)
            else:
                self._units.setdefault(event_unit, _UnitState()).pending_signed.append(
                    (key, node, event_round)
                )

    def _check_i1(self, key: Any, node: int, event_round: int, detected_round: int, n: int) -> None:
        _message, unit = key
        requesters = self._asked.get(key, set())
        credited = len(requesters) + len(self._units.get(unit, _UnitState()).broken)
        if credited < self.t + 1:
            self._violate(Violation(
                invariant="I1-threshold",
                unit=unit,
                event_round=event_round,
                detected_round=detected_round,
                details=(key, [node], credited),
            ))

    def _finalize_unit(self, unit: int, n: int, detected_round: int) -> None:
        if self._i1_done.get(unit):
            return
        self._i1_done[unit] = True
        state = self._units.setdefault(unit, _UnitState())
        for key, node, event_round in state.pending_signed:
            self._check_i1(key, node, event_round, detected_round=detected_round, n=n)
        state.pending_signed.clear()
        # I3: stability over the unit is now known
        stable = state.stable if state.stable is not None else set(range(n))
        for node, event_round in state.alerts:
            if node in stable:
                self._violate(Violation(
                    invariant="I3-false-alert",
                    unit=unit,
                    event_round=event_round,
                    detected_round=detected_round,
                    details=(unit, node),
                ))

    def _finalize_i2(self, unit: int, n: int, detected_round: int) -> None:
        if unit in self._i2_done:
            return
        self._i2_done.add(unit)
        state = self._units.get(unit)
        stable = state.stable if state and state.stable is not None else set(range(n))
        for key, requesters in self._asked.items():
            if key[1] != unit:
                continue
            stable_requesters = requesters & stable
            if len(stable_requesters) >= n - self.t:
                missing = stable_requesters - self._signed.get(key, set())
                if missing:
                    self._violate(Violation(
                        invariant="I2-liveness",
                        unit=unit,
                        event_round=detected_round,
                        detected_round=detected_round,
                        details=(key, sorted(missing)),
                    ))

    def _violate(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolationError(violation)
