"""E8 — §6 "Relaxations for small t": O(n²) vs O(nt) message complexity.

DISPERSE (and with it PARTIAL-AGREEMENT and everything above) floods each
send to all ``n - 1`` nodes; the paper observes that flooding to a fixed
set of ``2t + 1`` relays preserves the agreement properties while cutting
per-node complexity from O(n²) to O(nt).

Two sweeps:

* **Message complexity** — the full ULS refresh both ways at fixed ``t``
  across growing ``n``: messages per refreshment phase and per normal
  round.  Expected shape: the sparse/full ratio falls as ``n`` grows
  (toward ``(2t+1)/n``-ish), while every refresh still succeeds.

* **Refresh timing** — the same workload at n ∈ {13, 25, 37} with the
  perf layer off and on (batched Feldman verification, batched partial
  signatures, share-image cache, the lot — see docs/PROTOCOLS.md §12),
  asserting the two transcripts digest identically.  n = 13 runs the
  full flood (the PR 2 reference point tracked in ``BENCH_E14.json``);
  n ≥ 25 uses the 2t+1 sparse relay — the paper's own prescription for
  that regime, and what keeps the layer-off baseline runnable.

* **Message volume** — the same workload with the message-volume layer
  (``PerfConfig.msg_volume``: receipt aggregation over the DISPERSE
  broadcast primitive + sampled refresh-help, docs/PROTOCOLS.md §12)
  off and on.  Unlike every other perf flag this one changes *which*
  envelopes are sent, so the parity claim is outcome-level: the
  :func:`~repro.analysis.digest.outcome_digest` (node outputs, system
  log, adversary output) and the blame records
  (``RefreshService.rejected_dealers``) must be bit-identical, while
  messages per refreshment phase must drop ≥ 2× and wall-clock must
  improve.

All three sweeps land in ``benchmarks/results/BENCH_E8.json``.  With
``BENCH_SMOKE=1`` the sweeps shrink to CI size (timing and volume only
at n = 25) and the report goes to ``BENCH_E8_smoke.json``, leaving the
committed full-sweep report alone.
"""

import os
import time

import pytest

from repro.analysis.digest import outcome_digest
from repro.analysis.metrics import message_stats
from repro.perf import configure, perf_config

from common import build_uls_network, emit, emit_json, format_table, table_data, \
    transcript_digest

T = 2
UNITS = 2
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

MESSAGE_NS = (6, 7) if SMOKE else (6, 7, 9, 11)
#: (n, relay_fanout) timing points; None = full flood
TIMING_POINTS = [(25, 2 * T + 1)] if SMOKE else \
    [(13, None), (25, 2 * T + 1), (37, 2 * T + 1)]
#: (n, relay_fanout) message-volume points; the acceptance bar lives at
#: the sparse n = 25 point, the full-flood n = 13 point shows the layer
#: also wins when DISPERSE itself is dense
VOLUME_POINTS = [(25, 2 * T + 1)] if SMOKE else \
    [(13, None), (25, 2 * T + 1)]


def run_variant(n: int, relay_fanout, seed: int = 0):
    public, programs, runner, schedule = build_uls_network(
        n, T, seed, relay_fanout=relay_fanout
    )
    execution = runner.run(units=UNITS)
    for program in programs:
        assert program.keystore.history == [(1, "ok")], "refresh must succeed"
        assert program.state.share_is_valid()
    stats = message_stats(execution)
    return stats.per_refresh_phase, stats.per_normal_round


def run_timed(n: int, relay_fanout, enabled: bool, seed: int = 0):
    """One full E8 execution (network build + run) with the perf layer
    forced on or off; returns (seconds, transcript digest)."""
    configure(enabled=enabled)  # also clears every cache: cold start
    try:
        start = time.perf_counter()
        public, programs, runner, schedule = build_uls_network(
            n, T, seed, relay_fanout=relay_fanout
        )
        execution = runner.run(units=UNITS)
        elapsed = time.perf_counter() - start
        for program in programs:
            assert program.keystore.history == [(1, "ok")], "refresh must succeed"
            assert program.state.share_is_valid()
        return elapsed, transcript_digest(execution)
    finally:
        configure(enabled=True)


def run_volume(n: int, relay_fanout, msg_volume: bool, seed: int = 0):
    """One full E8 execution with the perf layer on and the message-volume
    layer forced on or off; returns
    ``(msgs/refresh, seconds, outcome digest, rejected dealers)``.

    Compact records are used so the per-channel traffic counters come from
    ``CompactRoundRecord.sent_by_channel`` — the counter path this layer
    added to the transcript machinery.
    """
    saved = (perf_config().msg_volume, perf_config().compact_records)
    configure(enabled=True, msg_volume=msg_volume, compact_records=True)
    try:
        start = time.perf_counter()
        public, programs, runner, schedule = build_uls_network(
            n, T, seed, relay_fanout=relay_fanout
        )
        execution = runner.run(units=UNITS)
        elapsed = time.perf_counter() - start
        for program in programs:
            assert program.keystore.history == [(1, "ok")], "refresh must succeed"
            assert program.state.share_is_valid()
        rejected = frozenset(
            (i, entry)
            for i, program in enumerate(programs)
            for entry in program.core.refresher.rejected_dealers
        )
        stats = message_stats(execution)
        return stats.per_refresh_phase, elapsed, outcome_digest(execution), rejected
    finally:
        # configure() edits flags in place: restore the two we touched
        configure(enabled=True, msg_volume=saved[0], compact_records=saved[1])


@pytest.fixture(scope="module")
def table():
    rows = []
    fanout = 2 * T + 1
    for n in MESSAGE_NS:
        full_refresh, full_normal = run_variant(n, None)
        sparse_refresh, sparse_normal = run_variant(n, fanout)
        ratio = sparse_refresh / full_refresh
        rows.append((n, T, int(full_refresh), int(sparse_refresh),
                     f"{ratio:.2f}", int(full_normal), int(sparse_normal)))
        if n > fanout + 1:
            assert sparse_refresh < full_refresh
    # the ratio must shrink with n (the whole point of the relaxation)
    ratios = [float(row[4]) for row in rows]
    assert ratios[-1] < ratios[0]
    return rows


@pytest.fixture(scope="module")
def timing_table():
    rows = []
    for n, fanout in TIMING_POINTS:
        off_s, off_digest = run_timed(n, fanout, enabled=False)
        on_s, on_digest = run_timed(n, fanout, enabled=True)
        assert on_digest == off_digest, f"transcript drift at n={n}"
        rows.append((n, "full" if fanout is None else f"sparse-{fanout}",
                     round(off_s, 4), round(on_s, 4), round(off_s / on_s, 2),
                     "yes"))
    return rows


@pytest.fixture(scope="module")
def volume_table():
    rows = []
    for n, fanout in VOLUME_POINTS:
        off_msgs, off_s, off_digest, off_rejected = run_volume(n, fanout, False)
        on_msgs, on_s, on_digest, on_rejected = run_volume(n, fanout, True)
        assert on_digest == off_digest, f"outcome drift at n={n}"
        assert on_rejected == off_rejected, f"blame drift at n={n}"
        rows.append((n, "full" if fanout is None else f"sparse-{fanout}",
                     int(off_msgs), int(on_msgs), round(off_msgs / on_msgs, 2),
                     round(off_s, 4), round(on_s, 4), "yes"))
    # the message-volume acceptance bar: >=2x fewer msgs/refresh and a
    # wall-clock win at every point
    for row in rows:
        assert row[4] >= 2.0, row
        assert row[6] < row[5], row
    return rows


MESSAGE_HEADERS = ["n", "t", "full msgs/refresh", "sparse msgs/refresh",
                   "sparse/full", "full msgs/normal-round",
                   "sparse msgs/normal-round"]
TIMING_HEADERS = ["n", "flood", "layer-off s", "layer-on s", "speedup",
                  "same transcript"]
VOLUME_HEADERS = ["n", "flood", "volume-off msgs/refresh",
                  "volume-on msgs/refresh", "reduction", "volume-off s",
                  "volume-on s", "same outcomes"]


def test_e8_message_complexity(table, benchmark):
    emit("e8_complexity", format_table(
        "E8  Refresh message complexity: full flood (O(n^2) per node) vs "
        f"2t+1-relay DISPERSE (O(nt)), t={T}",
        MESSAGE_HEADERS,
        table,
    ))
    benchmark(lambda: run_variant(6, 2 * T + 1, seed=1))


def test_e8_msg_volume(volume_table, benchmark):
    emit("e8_msg_volume", format_table(
        f"E8  Refresh message volume, msg_volume layer off vs on (t={T}, "
        f"units={UNITS}; outcome digests and rejected_dealers bit-identical)",
        VOLUME_HEADERS,
        volume_table,
    ))
    benchmark(lambda: run_volume(6, 2 * T + 1, True, seed=1)[0])


def test_e8_refresh_timing(table, timing_table, volume_table, benchmark):
    emit("e8_refresh_timing", format_table(
        f"E8  Refresh wall-clock, perf layer off vs on (t={T}, units={UNITS}; "
        "transcripts bit-identical)",
        TIMING_HEADERS,
        timing_table,
    ))
    stem = "BENCH_E8_smoke" if SMOKE else "BENCH_E8"
    emit_json(stem, {
        "experiment": "e8_complexity",
        "config": {"group": "toy64", "t": T, "units": UNITS, "smoke": SMOKE},
        "message_complexity": table_data(MESSAGE_HEADERS, table),
        "refresh_timing": table_data(TIMING_HEADERS, timing_table),
        "msg_volume": table_data(VOLUME_HEADERS, volume_table),
    })
    # the batched-refresh acceptance bar: >=2x at every timing point
    for row in timing_table:
        assert row[4] >= 2.0, row
    benchmark(lambda: run_timed(6, 2 * T + 1, True, seed=1)[0])
