"""Tests for the round/time-unit schedule (paper Fig. 1)."""

import pytest

from repro.sim.clock import Phase, Schedule


@pytest.fixture
def schedule():
    return Schedule(setup_rounds=2, refresh_rounds=3, normal_rounds=4)


def test_validation():
    with pytest.raises(ValueError):
        Schedule(0, 1, 1)
    with pytest.raises(ValueError):
        Schedule(1, 0, 1)
    with pytest.raises(ValueError):
        Schedule(1, 1, 0)


def test_setup_rounds_labelled(schedule):
    for r in range(2):
        info = schedule.info(r)
        assert info.phase is Phase.SETUP
        assert info.time_unit == 0
        assert info.index_in_phase == r


def test_unit0_normal_rounds(schedule):
    for i, r in enumerate(range(2, 6)):
        info = schedule.info(r)
        assert info.phase is Phase.NORMAL
        assert info.time_unit == 0
        assert info.index_in_phase == i


def test_unit1_layout(schedule):
    # unit 1: refresh rounds 6,7,8 then normal 9..12
    for i, r in enumerate(range(6, 9)):
        info = schedule.info(r)
        assert info.phase is Phase.REFRESH
        assert info.time_unit == 1
        assert info.index_in_phase == i
    for i, r in enumerate(range(9, 13)):
        info = schedule.info(r)
        assert info.phase is Phase.NORMAL
        assert info.time_unit == 1


def test_phase_boundaries(schedule):
    assert schedule.info(6).is_phase_start
    assert schedule.info(8).is_phase_end
    assert not schedule.info(7).is_phase_start
    assert not schedule.info(7).is_phase_end


def test_total_rounds(schedule):
    assert schedule.total_rounds(1) == 6
    assert schedule.total_rounds(2) == 13
    assert schedule.total_rounds(3) == 20
    with pytest.raises(ValueError):
        schedule.total_rounds(0)


def test_refresh_start_and_first_normal(schedule):
    assert schedule.refresh_start(1) == 6
    assert schedule.refresh_start(2) == 13
    assert schedule.first_normal_round(0) == 2
    assert schedule.first_normal_round(1) == 9
    with pytest.raises(ValueError):
        schedule.refresh_start(0)


def test_rounds_of_unit(schedule):
    assert list(schedule.rounds_of_unit(0)) == list(range(0, 6))
    assert list(schedule.rounds_of_unit(1)) == list(range(6, 13))
    assert list(schedule.rounds_of_unit(2)) == list(range(13, 20))


def test_every_round_labelled_consistently(schedule):
    """Exhaustive consistency: unit/phase labels partition the rounds."""
    for r in range(schedule.total_rounds(4)):
        info = schedule.info(r)
        assert info.round == r
        assert r in schedule.rounds_of_unit(info.time_unit)


def test_negative_round_rejected(schedule):
    with pytest.raises(ValueError):
        schedule.info(-1)
