"""Proactive distributed signatures (paper §3 + Theorem 13).

- :mod:`repro.pds.ideal` — the ideal signing process (§3.1), used as the
  security reference point.
- :mod:`repro.pds.keys` — key material, per-node state, the set-up
  ``Gen``.
- :mod:`repro.pds.threshold_schnorr` — the signing protocol ``Sign`` and
  public verifier ``Ver`` (threshold Schnorr over Feldman-verified
  Shamir sharings).
- :mod:`repro.pds.refresh` — the refresh protocol ``Rfr`` (share renewal,
  commitment sync, share recovery).
- :mod:`repro.pds.harness` — an AL-model node program wiring the above to
  the §3.2 operation conventions.
- :mod:`repro.pds.transport` — the send abstraction that lets the same
  protocols run over AL links or over AUTH-SEND (the §4 transformation).
"""

from repro.pds.dkg import DkgUGenProgram, run_distributed_ugen
from repro.pds.harness import PdsNodeProgram, required_refresh_rounds
from repro.pds.ideal import IdealRecord, IdealSignatureProcess
from repro.pds.keys import PdsNodeState, PdsPublic, deal_initial_states
from repro.pds.refresh import RefreshService
from repro.pds.threshold_schnorr import (
    ThresholdSigner,
    pds_message_bytes,
    verify_pds_signature,
)
from repro.pds.transport import Accepted, DirectTransport, Transport

__all__ = [
    "DkgUGenProgram",
    "run_distributed_ugen",
    "PdsNodeProgram",
    "required_refresh_rounds",
    "IdealRecord",
    "IdealSignatureProcess",
    "PdsNodeState",
    "PdsPublic",
    "deal_initial_states",
    "RefreshService",
    "ThresholdSigner",
    "pds_message_bytes",
    "verify_pds_signature",
    "Accepted",
    "DirectTransport",
    "Transport",
]
