"""Tests for the proactive authenticator Λ (§5) and Definition-10 views."""

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import CutOffAdversary
from repro.core.authenticator import compile_protocol
from repro.core.uls import build_uls_states, uls_schedule
from repro.core.views import external_view, impersonations, internal_sent
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import ALERT, NodeContext, NodeProgram
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


class PingProtocol(NodeProgram):
    """A toy AL-model protocol π: each normal round, every node sends a
    stamped ping to its successor and records what it receives."""

    def __init__(self):
        super().__init__()
        self.received = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        for envelope in inbox:
            if envelope.channel == "ping":
                self.received.append((ctx.info.round, envelope.sender, envelope.payload))
        if ctx.info.phase is Phase.NORMAL:
            successor = (self.node_id + 1) % self.n
            ctx.send(successor, "ping", ("ping", self.node_id, ctx.info.round))


def build(seed=5):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    inners = [PingProtocol() for _ in range(N)]
    programs = compile_protocol(inners, states, SCHEME, keys)
    return public, programs, inners


def run(programs, adversary=None, units=3, seed=2):
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    return runner.run(units=units), runner


def test_compiled_protocol_delivers_pings():
    _, programs, inners = build()
    execution, _ = run(programs, units=2)
    # node 1 received pings from node 0 during normal rounds
    from_zero = [p for _, sender, p in inners[1].received if sender == 0]
    assert len(from_zero) >= 8  # most normal rounds of two units
    for payload in from_zero:
        assert payload[0] == "ping" and payload[1] == 0


def test_no_alerts_or_impersonations_in_benign_run():
    _, programs, _ = build()
    execution, _ = run(programs, units=3)
    for i in range(N):
        assert ALERT not in execution.outputs_of(i)
        for unit in range(3):
            assert impersonations(execution, i, unit) == set()


def test_views_reflect_traffic():
    _, programs, _ = build()
    execution, _ = run(programs, units=2)
    sent = internal_sent(execution, 0, 1)
    assert sent  # node 0 sent pings during unit 1
    seen = external_view(execution, 0, 1)
    assert seen  # node 1 saw them
    # every externally seen item was really sent (possibly in unit 0 for
    # boundary messages)
    sent_all = sent | internal_sent(execution, 0, 0)
    assert seen <= sent_all


def test_compile_protocol_validates_lengths():
    import pytest

    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=1)
    with pytest.raises(ValueError):
        compile_protocol([PingProtocol()], states, SCHEME, keys)


def test_cutoff_attack_awareness_and_no_forgery():
    """Proposition 31 end-to-end: the §1.1 attack against Λ(π).  The
    cut-off victim alerts in every unit it is impersonated-in/cut-off,
    and the Definition-10 external view shows no forged messages."""
    _, programs, _ = build()
    impersonator = UlsImpersonator(victim=3)
    adversary = CutOffAdversary(victim=3, break_unit=1, impersonator=impersonator)
    execution, _ = run(programs, adversary=adversary, units=3)
    # awareness: alert in unit 2 (the first full cut-off unit)
    assert execution.alerts_in_unit(3, 2) >= 1
    # the adversary really tried
    assert impersonator.attempts
    # no forged message entered any honest node's top layer in unit 2
    assert impersonations(execution, 3, 2) == set()


def test_cutoff_without_impersonation_still_alerts():
    """Even a pure denial (cut links, no forgeries): the victim cannot
    refresh its certificate and must alert — it cannot distinguish denial
    from impersonation, and the paper requires awareness either way."""
    _, programs, _ = build()
    adversary = CutOffAdversary(victim=2, break_unit=1)
    execution, _ = run(programs, adversary=adversary, units=3)
    assert execution.alerts_in_unit(2, 2) >= 1


def test_cutoff_ends_node_recovers():
    """After the cut-off window closes the victim recovers at the next
    refreshment phase and stops alerting."""
    _, programs, _ = build()
    adversary = CutOffAdversary(victim=2, break_unit=1, cutoff_units=1)
    execution, _ = run(programs, adversary=adversary, units=4)
    # cut off during unit 2 -> alert; free again from unit 3's refresh
    assert execution.alerts_in_unit(2, 2) >= 1
    assert execution.alerts_in_unit(2, 3) == 0
    assert dict(programs[2].core.keystore.history)[3] == "ok"
    assert programs[2].core.state.share_is_valid()
