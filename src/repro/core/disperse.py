"""Protocol DISPERSE — the two-phase echo (paper Fig. 2).

``DISPERSE(m, i, j)`` sends a string from ``N_i`` to ``N_j`` through every
possible length-≤2 path:

1. ``N_i`` sends "forward m to N_j" to all other nodes;
2. a node receiving such a message sends "forwarding m from N_i" to
   ``N_j``;
3. ``N_j`` marks every string for which it received a forwarding as
   *received* from ``N_i``.

DISPERSE guarantees **delivery only** (Lemma 15): if sender and receiver
are both s-operational with ``s <= (n-1)/2``, some non-broken node has
reliable links to both and relays the message.  It guarantees **no
authenticity** — anyone can inject "forwarding m from N_i" — which is why
AUTH-SEND layers CERTIFY on top.

Receipts are normalized to land exactly two rounds after the send: a
directly-received "forward" (the ``i → j`` link itself) is buffered one
round so the receiver sees one receipt event per send, whichever paths
survived.  Consumers multiplex via ``tag``.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.perf.cache import canonical_body_key, canonical_key_fn, canonical_probe
from repro.perf.config import perf_config
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext

__all__ = ["DisperseService", "DISPERSE_CHANNEL"]

DISPERSE_CHANNEL = "disperse"


def _body_key(body: Any) -> Hashable:
    """Dedup key for possibly-unhashable bodies.

    One flood shares a single body object across every relay and
    receiver, and each of them keys relay/receipt dedup on its canonical
    encoding — so the encoding is memoized by object identity in the
    perf layer (the key bytes are unchanged; only the re-encoding cost
    goes away)."""
    return canonical_body_key(body)


class DisperseService:
    """Per-node DISPERSE engine; owner calls :meth:`on_round` first each
    round, then any number of :meth:`send`; receipts via :meth:`receipts`.

    Args:
        relay_fanout: when set, implements the §6 "Relaxations for small
            t": step 1 floods to only this many parties (typically
            ``2t + 1``) instead of all ``n - 1``, cutting the complexity
            from O(n²) to O(nt) messages.  The relay set is the lowest
            node ids (a fixed, commonly-known choice), always including
            the destination.
        retransmit: default number of bounded retransmissions per send
            (0 = classic fire-and-forget DISPERSE).  Each retransmission
            re-floods the same string one round-trip (2 rounds) after the
            previous flood — Lemma 15 needs only one relay round, so
            retrying buys delivery through links that were unreliable at
            the first attempt but recover within the unit.  Pending
            retransmissions never cross a time-unit boundary: a retry
            whose turn comes in a later unit is discarded and counted in
            ``retransmissions_expired`` (stale strings must not pollute
            the next refreshment phase).
    """

    #: rounds between retransmission attempts (one DISPERSE round trip)
    RETX_INTERVAL = 2

    def __init__(self, relay_fanout: int | None = None, retransmit: int = 0) -> None:
        # receipts that become visible next round: round -> list
        self._buffered: dict[int, list[tuple[str, int, Any]]] = {}
        self._current: list[tuple[str, int, Any]] = []  # (tag, claimed_src, body)
        # relay-dedup keys embed the round number, so entries from past
        # rounds can never match again — the set is cleared whenever the
        # round advances and stays O(this round's distinct floods) instead
        # of growing without bound across units
        self._relayed: set[Hashable] = set()
        self._relayed_round = -1
        # lazily tag-binned view of _current (perf: consumers poll several
        # tags per round and each receipts() call was a full scan)
        self._receipts_by_tag: dict[str, list[tuple[int, Any]]] | None = None
        if retransmit < 0:
            raise ValueError(f"retransmit must be >= 0, got {retransmit}")
        self.relay_fanout = relay_fanout
        self.retransmit = retransmit
        self.messages_relayed = 0
        self.retransmissions_sent = 0
        self.retransmissions_expired = 0
        # due round -> [(receiver, body, tag, retries_left, time_unit)]
        self._retx_queue: dict[int, list[tuple[int, Any, str, int, int]]] = {}
        # full-flood target list; identical for every send by this node
        self._all_targets: list[int] | None = None
        # fanout-restricted relay list per receiver; the choice is a pure
        # function of (node_id, receiver, fanout, n), all fixed for a run
        self._fanout_targets: dict[int, list[int]] = {}

    def _targets(self, ctx: NodeContext, receiver: int) -> list[int]:
        if self.relay_fanout is None or self.relay_fanout >= ctx.n - 1:
            targets = self._all_targets
            if targets is None or len(targets) != ctx.n - 1:
                targets = self._all_targets = [
                    node for node in range(ctx.n) if node != ctx.node_id
                ]
            return targets
        targets = self._fanout_targets.get(receiver)
        if targets is not None:
            return targets
        targets = []
        for node in range(ctx.n):
            if node in (ctx.node_id, receiver):
                continue
            targets.append(node)
            if len(targets) >= self.relay_fanout - 1:
                break
        targets.append(receiver)
        self._fanout_targets[receiver] = targets
        return targets

    def _bcast_targets(self, ctx: NodeContext) -> list[int]:
        """Relay set of a broadcast flood: the lowest ``relay_fanout`` node
        ids other than the sender (all of them without a fanout limit) —
        the same fixed, commonly-known choice as :meth:`_targets`, minus
        the per-destination special-casing a broadcast doesn't have."""
        if self.relay_fanout is None or self.relay_fanout >= ctx.n - 1:
            targets = self._all_targets
            if targets is None or len(targets) != ctx.n - 1:
                targets = self._all_targets = [
                    node for node in range(ctx.n) if node != ctx.node_id
                ]
            return targets
        targets = self._fanout_targets.get(-1)
        if targets is None:
            targets = [node for node in range(ctx.n) if node != ctx.node_id]
            targets = targets[: self.relay_fanout]
            self._fanout_targets[-1] = targets
        return targets

    def broadcast(self, ctx: NodeContext, body: Any, tag: str = "") -> None:
        """One flood addressed to *every* node: "forward body to all".

        Each relay echoes a single ``bcsting`` copy to all other nodes and
        buffers its own receipt, so every node marks the string received
        exactly two rounds after the send — the same receipt timing as
        :meth:`send` — at a total cost of ~``f·(n-1)`` envelopes instead
        of the ``(n-1)·(2f-1)`` of per-destination dispersal.  Delivery
        inherits Lemma 15 per receiver: any non-broken relay with reliable
        links to sender and that receiver carries the string.
        """
        payload = ("bcst", tag, ctx.node_id, body)
        ctx.fanout(self._bcast_targets(ctx), DISPERSE_CHANNEL, payload)

    def send(
        self, ctx: NodeContext, receiver: int, body: Any, tag: str = "",
        retransmit: int | None = None,
    ) -> None:
        """Step 1: flood "forward body to receiver" to the relay set
        (all other nodes unless ``relay_fanout`` restricts it).

        ``retransmit`` overrides the service default for this send.
        """
        self._flood(ctx, receiver, body, tag)
        retries = self.retransmit if retransmit is None else retransmit
        if retries > 0:
            due = ctx.info.round + self.RETX_INTERVAL
            self._retx_queue.setdefault(due, []).append(
                (receiver, body, tag, retries, ctx.info.time_unit)
            )

    def _flood(self, ctx: NodeContext, receiver: int, body: Any, tag: str) -> None:
        payload = ("fwd", tag, ctx.node_id, receiver, body)
        ctx.fanout(self._targets(ctx, receiver), DISPERSE_CHANNEL, payload)

    def on_round(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        """Steps 2-3: relay foreign forwards, collect receipts (and fire
        any retransmissions that come due this round)."""
        round_number = ctx.info.round
        for receiver, body, tag, retries, unit in self._retx_queue.pop(round_number, ()):
            if ctx.info.time_unit != unit:
                self.retransmissions_expired += 1
                continue
            self._flood(ctx, receiver, body, tag)
            self.retransmissions_sent += 1
            if retries > 1:
                self._retx_queue.setdefault(round_number + self.RETX_INTERVAL, []).append(
                    (receiver, body, tag, retries - 1, unit)
                )
        self._current = self._buffered.pop(round_number, [])
        self._receipts_by_tag = None
        if round_number != self._relayed_round:
            # relay keys embed their round; anything left over is stale
            self._relayed.clear()
            self._relayed_round = round_number
        emitted: set[Hashable] = set()
        # the flood loop touches every disperse envelope; bind the
        # per-round invariants (dedup key memo, own id, dedup set, outbox)
        # to locals and inline the memo probe and the relay send so the
        # per-envelope cost is free of attribute lookups and function-call
        # overhead
        key_entries, key_miss = canonical_probe()
        node_id = ctx.node_id
        n = ctx.n
        outbox_append = ctx.outbox.append
        relayed = self._relayed
        current = self._current
        relayed_count = 0

        for envelope in ctx.channel_view(inbox, DISPERSE_CHANNEL):
            payload = envelope.payload
            if not isinstance(payload, tuple) or len(payload) != 5:
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 4
                    and payload[0] in ("bcst", "bcsting")
                ):
                    kind, tag, src, body = payload
                    entry = key_entries.get(id(body))
                    key = (
                        entry[1]
                        if entry is not None and entry[0] is body
                        else key_miss(body)
                    )
                    if kind == "bcst":
                        # a broadcast relay is also a receiver: buffer the
                        # direct receipt (uniform +2 timing) and echo one
                        # copy to everyone else
                        self._buffer(round_number + 1, tag, src, body)
                        relay_key = ("b", round_number, tag, src, key)
                        if relay_key in relayed:
                            continue
                        relayed.add(relay_key)
                        echo = ("bcsting", tag, src, body)
                        for dst in range(n):
                            if dst == node_id or dst == src:
                                continue
                            relayed_count += 1
                            outbox_append(
                                Envelope(
                                    node_id, dst, DISPERSE_CHANNEL, echo,
                                    round_number,
                                )
                            )
                    else:
                        receipt_key = (round_number, tag, src, key)
                        if receipt_key in emitted:
                            continue
                        emitted.add(receipt_key)
                        current.append((tag, src, body))
                continue
            kind, tag, src, dst, body = payload
            if kind == "fwd":
                if dst == node_id:
                    # the direct path; buffer so receipt timing is uniform
                    self._buffer(round_number + 1, tag, src, body)
                else:
                    entry = key_entries.get(id(body))
                    key = (
                        entry[1]
                        if entry is not None and entry[0] is body
                        else key_miss(body)
                    )
                    relay_key = ("r", round_number, tag, src, dst, key)
                    if relay_key in relayed:
                        continue
                    relayed.add(relay_key)
                    relayed_count += 1
                    # same validation + envelope as ctx.send(dst, ...)
                    if not 0 <= dst < n:
                        raise ValueError(f"receiver {dst} out of range")
                    outbox_append(
                        Envelope(
                            node_id,
                            dst,
                            DISPERSE_CHANNEL,
                            ("fwding", tag, src, dst, body),
                            round_number,
                        )
                    )
            elif kind == "fwding":
                if dst != node_id:
                    continue
                entry = key_entries.get(id(body))
                key = (
                    entry[1]
                    if entry is not None and entry[0] is body
                    else key_miss(body)
                )
                receipt_key = (round_number, tag, src, key)
                if receipt_key in emitted:
                    continue
                emitted.add(receipt_key)
                current.append((tag, src, body))
        self.messages_relayed += relayed_count

        # dedup against the buffered direct copies that were released now
        deduped: list[tuple[str, int, Any]] = []
        seen: set[Hashable] = set()
        for tag, src, body in current:
            entry = key_entries.get(id(body))
            key = (
                tag,
                src,
                entry[1] if entry is not None and entry[0] is body else key_miss(body),
            )
            if key in seen:
                continue
            seen.add(key)
            deduped.append((tag, src, body))
        self._current = deduped

    def _buffer(self, round_number: int, tag: str, src: int, body: Any) -> None:
        self._buffered.setdefault(round_number, []).append((tag, src, body))

    def receipts(self, tag: str = "") -> list[tuple[int, Any]]:
        """Strings marked received this round under ``tag``, as
        ``(claimed_source, body)`` — the source is NOT authenticated.

        Callers must treat the result as read-only: with the demux perf
        flag on, every call for the same tag this round shares one
        tag-binned list built in a single pass over the receipts.
        """
        if perf_config().flag("inbox_demux"):
            bins = self._receipts_by_tag
            if bins is None:
                bins = self._receipts_by_tag = {}
                for t, src, body in self._current:
                    bin_ = bins.get(t)
                    if bin_ is None:
                        bin_ = bins[t] = []
                    bin_.append((src, body))
            return bins.get(tag, [])
        return [(src, body) for t, src, body in self._current if t == tag]
