"""Tests for the per-unit session-key layer (§5 footnote 1)."""

import pytest

from repro.core.sessions import SESSION_CHANNEL, SessionLayer
from repro.core.uls import UlsCore, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.hash_sig import MerkleSignatureScheme
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import Adversary, PassiveAdversary, faithful_delivery
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


class SessionChat(NodeProgram):
    """Sends one MAC'd chat message to every peer per normal round."""

    def __init__(self, state, scheme, keys):
        super().__init__()
        self.core = UlsCore(state, scheme, keys, node_id=state.node_id)
        self.sessions = SessionLayer(self.core)
        self.received = []
        self.fallbacks = 0

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.core.state.public.public_key)
            return
        self.core.on_round(ctx, inbox)
        self.sessions.on_round(ctx, inbox)
        for src, body in self.sessions.accepted():
            self.received.append((ctx.info.round, ctx.info.time_unit, src, body))
        if ctx.info.phase is Phase.NORMAL and ctx.info.index_in_phase >= 2:
            for peer in range(self.n):
                if peer != self.node_id:
                    if not self.sessions.send(ctx, peer, ("chat", self.node_id, ctx.info.round)):
                        self.fallbacks += 1


def build(seed=3):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [SessionChat(states[i], SCHEME, keys[i]) for i in range(N)]
    return public, programs


def run(programs, adversary=None, units=2, seed=3):
    runner = ULRunner(programs, adversary or PassiveAdversary(), SCHED, s=T, seed=seed)
    return runner.run(units=units)


def test_sessions_require_schnorr_keys():
    public, states, keys = build_uls_states(
        GROUP, MerkleSignatureScheme(capacity=4), 5, 2, seed=1
    )
    core = UlsCore(states[0], MerkleSignatureScheme(capacity=4), keys[0], node_id=0)
    with pytest.raises(TypeError):
        SessionLayer(core)


def test_session_chat_flows_in_every_unit():
    _, programs = build()
    run(programs, units=2)
    for program in programs:
        units_seen = {unit for _, unit, _, _ in program.received}
        assert {0, 1} <= units_seen
        peers = {src for _, _, src, _ in program.received}
        assert peers == set(range(N)) - {program.node_id}
        assert program.fallbacks == 0  # hellos arrived before the first chat


def test_session_keys_agree_pairwise():
    _, programs = build()
    run(programs, units=2)
    for i in range(N):
        for j in range(i + 1, N):
            k_ij = programs[i].sessions.session_key(j)
            k_ji = programs[j].sessions.session_key(i)
            assert k_ij is not None
            assert k_ij == k_ji


def test_session_keys_rotate_each_unit():
    _, programs = build()
    run(programs, units=2)
    layer = programs[0].sessions
    old = layer._session_keys.get((0, 1))
    new = layer._session_keys.get((1, 1))
    assert new is not None
    if old is not None:
        assert old != new


def test_forged_mac_rejected():
    class MacForger(Adversary):
        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            if info.phase is Phase.NORMAL:
                plan[0].append(api.forge_envelope(
                    1, 0, SESSION_CHANNEL,
                    ("mac", info.time_unit, info.round, ("forged",), b"bad-tag")))
            return plan

    _, programs = build()
    run(programs, adversary=MacForger(), units=1)
    forged = [body for _, _, _, body in programs[0].received if body == ("forged",)]
    assert forged == []
    assert programs[0].sessions.rejected_count > 0


def test_tampered_body_rejected():
    class Tamperer(Adversary):
        def deliver(self, api, info, traffic):
            plan = {i: [] for i in range(api.n)}
            for envelope in traffic:
                if envelope.channel == SESSION_CHANNEL and envelope.receiver == 0:
                    payload = envelope.payload
                    envelope = envelope.with_payload(
                        (payload[0], payload[1], payload[2], ("tampered",), payload[4])
                    )
                plan[envelope.receiver].append(envelope)
            return plan

    _, programs = build()
    run(programs, adversary=Tamperer(), units=1)
    assert all(body != ("tampered",) for _, _, _, body in programs[0].received)
    # node 0 received nothing on the session channel (all tampered)
    assert all(src != 1 or body[0] == "chat" for _, _, src, body in programs[0].received)


def test_replayed_mac_rejected():
    class Replayer(Adversary):
        def __init__(self):
            self.stash = {}

        def deliver(self, api, info, traffic):
            plan = faithful_delivery(traffic, api.n)
            for envelope in traffic:
                if envelope.channel == SESSION_CHANNEL:
                    self.stash.setdefault(info.round + 3, []).append(envelope)
            for envelope in self.stash.pop(info.round, []):
                plan[envelope.receiver].append(envelope)
            return plan

    _, programs = build()
    run(programs, adversary=Replayer(), units=1)
    # each (sender, round) chat arrives exactly once despite the replays
    from collections import Counter

    counts = Counter(
        (src, body) for _, _, src, body in programs[0].received
    )
    assert all(count == 1 for count in counts.values())
    assert programs[0].sessions.rejected_count > 0
