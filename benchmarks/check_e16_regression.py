"""Sim-floor perf-regression guard: fail CI when the floor creeps back up.

Compares a freshly generated E16 report (usually the smoke report CI
just produced) against the committed floor baseline
``benchmarks/results/BENCH_E16_floor.json`` and exits non-zero when

* any point's transcripts stopped matching (the layer must stay
  transcript-neutral — this is a correctness failure, not a perf one),
* the compact-record mode lost rounds-digest parity, or
* any point's **speedup ratio** regressed by more than ``--tolerance``
  (default 25%) against the baseline ratio.

The guard compares *ratios* (layer on vs off in the same process on the
same machine), not absolute wall-clock, so it is portable across CI
runner generations: a slower machine slows both modes, the ratio
survives.  The committed floor is regenerated together with
``BENCH_E16.json``::

    BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_e16_simfloor.py
    PYTHONPATH=src python benchmarks/check_e16_regression.py --write-floor

Usage (CI)::

    PYTHONPATH=src python benchmarks/check_e16_regression.py \
        --current benchmarks/results/BENCH_E16_smoke.json
"""

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_CURRENT = RESULTS_DIR / "BENCH_E16_smoke.json"
FLOOR_PATH = RESULTS_DIR / "BENCH_E16_floor.json"


def load(path: pathlib.Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def floor_from_report(report: dict) -> dict:
    """The committed floor: per-point speedup ratios of a known-good run."""
    return {
        "source_experiment": report["experiment"],
        "smoke": report["config"]["smoke"],
        "speedups": {
            pid: point["speedup"]
            for pid, point in report["timing"]["points"].items()
        },
    }


def check(current: dict, floor: dict, tolerance: float) -> list[str]:
    failures = []
    for pid, result in current["results"].items():
        if not result["transcripts_match"]:
            failures.append(f"{pid}: transcripts diverged between modes")
    if not current["compact_records"]["digest_match"]:
        failures.append("compact-records: rounds-digest parity lost")
    points = current["timing"]["points"]
    for pid, reference in floor["speedups"].items():
        if pid not in points:
            # a floor point missing from the current sweep is a silent
            # coverage loss — flag it instead of skipping
            failures.append(f"{pid}: in the committed floor but not measured")
            continue
        measured = points[pid]["speedup"]
        allowed = (1.0 - tolerance) * reference
        if measured < allowed:
            failures.append(
                f"{pid}: speedup {measured:.2f}x regressed > {tolerance:.0%} "
                f"below the committed floor {reference:.2f}x "
                f"(allowed >= {allowed:.2f}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, default=DEFAULT_CURRENT,
                        help="freshly generated E16 report to check "
                             "(default: the smoke report)")
    parser.add_argument("--baseline", type=pathlib.Path, default=FLOOR_PATH,
                        help="committed floor baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression (default 0.25)")
    parser.add_argument("--write-floor", action="store_true",
                        help="regenerate the committed floor from --current "
                             "instead of checking against it")
    args = parser.parse_args(argv)

    current = load(args.current)
    if args.write_floor:
        floor = floor_from_report(current)
        args.baseline.write_text(json.dumps(floor, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.baseline}: {floor['speedups']}")
        return 0

    floor = load(args.baseline)
    failures = check(current, floor, args.tolerance)
    if failures:
        for failure in failures:
            print(f"E16 REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"E16 floor holds: {len(floor['speedups'])} points within "
          f"{args.tolerance:.0%} of the committed baseline, transcripts equal")
    return 0


# ---------------------------------------------------------------- pytest

def test_committed_floor_matches_committed_report():
    """The committed smoke floor must stay in sync with what the guard
    expects: every floor point exists, ratios are positive, and the
    committed full report itself passes the guard against it."""
    floor = load(FLOOR_PATH)
    assert floor["speedups"], "empty floor baseline"
    assert all(ratio > 0 for ratio in floor["speedups"].values())
    full = load(RESULTS_DIR / "BENCH_E16.json")
    relevant = {pid: ratio for pid, ratio in floor["speedups"].items()
                if pid in full["timing"]["points"]}
    assert relevant, "floor and committed report share no points"
    failures = check(full, {"speedups": relevant}, tolerance=0.25)
    assert not failures, failures


if __name__ == "__main__":
    raise SystemExit(main())
