"""E8 — §6 "Relaxations for small t": O(n²) vs O(nt) message complexity.

DISPERSE (and with it PARTIAL-AGREEMENT and everything above) floods each
send to all ``n - 1`` nodes; the paper observes that flooding to a fixed
set of ``2t + 1`` relays preserves the agreement properties while cutting
per-node complexity from O(n²) to O(nt).

We run the full ULS refresh both ways at fixed ``t`` across growing ``n``
and report messages per refreshment phase and per normal round.  The
expected shape: the sparse/full ratio falls as ``n`` grows (toward
``(2t+1)/n``-ish), while every refresh still succeeds.
"""

import pytest

from repro.analysis.metrics import message_stats

from common import build_uls_network, emit, format_table, table_data

T = 2
UNITS = 2


def run_variant(n: int, relay_fanout, seed: int = 0):
    public, programs, runner, schedule = build_uls_network(
        n, T, seed, relay_fanout=relay_fanout
    )
    execution = runner.run(units=UNITS)
    for program in programs:
        assert program.keystore.history == [(1, "ok")], "refresh must succeed"
        assert program.state.share_is_valid()
    stats = message_stats(execution)
    return stats.per_refresh_phase, stats.per_normal_round


@pytest.fixture(scope="module")
def table():
    rows = []
    fanout = 2 * T + 1
    for n in (6, 7, 9, 11):
        full_refresh, full_normal = run_variant(n, None)
        sparse_refresh, sparse_normal = run_variant(n, fanout)
        ratio = sparse_refresh / full_refresh
        rows.append((n, T, int(full_refresh), int(sparse_refresh),
                     f"{ratio:.2f}", int(full_normal), int(sparse_normal)))
        if n > fanout + 1:
            assert sparse_refresh < full_refresh
    # the ratio must shrink with n (the whole point of the relaxation)
    ratios = [float(row[4]) for row in rows]
    assert ratios[-1] < ratios[0]
    return rows


def test_e8_message_complexity(table, benchmark):
    headers = ["n", "t", "full msgs/refresh", "sparse msgs/refresh", "sparse/full",
               "full msgs/normal-round", "sparse msgs/normal-round"]
    emit("e8_complexity", format_table(
        "E8  Refresh message complexity: full flood (O(n^2) per node) vs "
        f"2t+1-relay DISPERSE (O(nt)), t={T}",
        headers,
        table,
    ), data=table_data(headers, table))
    benchmark(lambda: run_variant(6, 2 * T + 1, seed=1))
