"""Tests for repro.crypto.group."""

import random

import pytest

from repro.crypto.group import NAMED_GROUP_NAMES, GroupParams, SchnorrGroup, named_group


@pytest.fixture(scope="module")
def group():
    return named_group("toy64")


def test_all_named_groups_validate():
    for name in NAMED_GROUP_NAMES:
        g = named_group(name)
        assert g.p == 2 * g.q + 1
        assert g.is_member(g.g)


def test_named_group_unknown_name():
    with pytest.raises(KeyError):
        named_group("nope")


def test_named_group_cached():
    assert named_group("toy64") is named_group("toy64")


def test_rejects_bad_params():
    good = named_group("toy64").params
    with pytest.raises(ValueError):
        SchnorrGroup(GroupParams(p=good.p + 2, q=good.q, g=good.g))
    with pytest.raises(ValueError):
        SchnorrGroup(GroupParams(p=good.p, q=good.q, g=good.p - 1))  # order-2 element


def test_generate_small_group():
    g = SchnorrGroup.generate(24, random.Random(3))
    assert g.p == 2 * g.q + 1
    assert g.is_member(g.g)


def test_generator_has_order_q(group):
    assert group.power(group.g, group.q) == 1
    assert group.base_power(0) == 1
    assert group.base_power(group.q) == 1


def test_exponent_reduction(group):
    x = 123456789
    assert group.base_power(x) == group.base_power(x + group.q)


def test_membership(group):
    assert group.is_member(group.base_power(42))
    assert not group.is_member(0)
    assert not group.is_member(group.p)
    # p-1 has order 2, not q
    assert not group.is_member(group.p - 1)


def test_multiply_invert_divide(group):
    a = group.base_power(10)
    b = group.base_power(33)
    assert group.multiply(a, group.invert(a)) == 1
    assert group.divide(group.multiply(a, b), b) == a


def test_multi_power(group):
    a = group.base_power(5)
    b = group.base_power(7)
    assert group.multi_power([(a, 2), (b, 3)]) == group.multiply(
        group.power(a, 2), group.power(b, 3)
    )


def test_random_scalar_range(group):
    rng = random.Random(0)
    for _ in range(50):
        s = group.random_scalar(rng)
        assert 1 <= s < group.q


def test_homomorphism(group):
    x, y = 111, 222
    assert group.multiply(group.base_power(x), group.base_power(y)) == group.base_power(x + y)


def test_equality_and_repr(group):
    assert group == named_group("toy64")
    assert group != named_group("toy160")
    assert "SchnorrGroup" in repr(group)
