"""The inevitable impersonation (§2.3) — detection, not prevention.

A break-in-free adversary cuts a node off and gets its *own* key
certified in the victim's name (the honest majority cannot tell a silent
victim from a recovering one announcing a new key).  The paper's
guarantee in exactly this situation is awareness: forged messages ARE
accepted by honest nodes, and the victim alerts in every such unit.

This is the sharpest test of what Prop. 31 does and does not promise.
"""

import pytest

from repro.adversary.impersonation import FreshKeyImpersonationAdversary
from repro.core.authenticator import compile_protocol
from repro.core.uls import build_uls_states, uls_schedule
from repro.core.views import impersonations
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T, UNITS, VICTIM = 5, 2, 3, 4
SCHED = uls_schedule()


class Chatter(NodeProgram):
    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.NORMAL:
            ctx.broadcast("chat", ("hello", self.node_id, ctx.info.round))


@pytest.fixture(scope="module")
def attack_run():
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=23)
    programs = compile_protocol([Chatter() for _ in range(N)], states, SCHEME, keys)
    adversary = FreshKeyImpersonationAdversary(victim=VICTIM, scheme=SCHEME, from_unit=1)
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=23)
    execution = runner.run(units=UNITS)
    return programs, execution, adversary


def test_rogue_key_gets_certified(attack_run):
    programs, execution, adversary = attack_run
    assert adversary.certificates_captured >= 1
    assert adversary.forgeries_injected > 0


def test_impersonation_succeeds(attack_run):
    """The inevitable part: honest top layers accept the forged traffic."""
    programs, execution, adversary = attack_run
    forged_units = [u for u in range(1, UNITS)
                    if impersonations(execution, VICTIM, u)]
    assert forged_units, "the certified fresh-key forgeries must be accepted"


def test_victim_alerts_in_every_impersonated_unit(attack_run):
    """The guaranteed part (Prop. 31): per-unit awareness."""
    programs, execution, adversary = attack_run
    for unit in range(1, UNITS):
        if impersonations(execution, VICTIM, unit):
            assert execution.alerts_in_unit(VICTIM, unit) >= 1, unit
    # and the victim's keystore reflects the denial
    history = dict(programs[VICTIM].core.keystore.history)
    assert all(history[u] == "failed" for u in range(1, UNITS))


def test_adversary_is_within_model(attack_run):
    """Zero break-ins; one disconnected node per unit: (t,t)-limited."""
    from repro.adversary.limits import audit_st_limited

    programs, execution, adversary = attack_run
    assert all(not record.broken for record in execution.records)
    assert audit_st_limited(execution, T).within_limits


def test_other_nodes_unaffected(attack_run):
    programs, execution, adversary = attack_run
    for node in range(N):
        if node == VICTIM:
            continue
        assert programs[node].core.alert_units == []
        for unit in range(UNITS):
            assert impersonations(execution, node, unit) == set()
