"""Internal/external views and impersonation detection (Definition 10).

For an execution of Λ(π) (programs built with
:class:`~repro.core.authenticator.AuthenticatedProgram`), the top layer's
traffic is mirrored into the global output as ``app-sent`` / ``app-recv``
lines.  This module reconstructs the paper's views from those lines:

- the **internal view** of ``N_i`` during unit ``u``: the top-layer
  messages it sent and received;
- the **external view** of ``N_i``: the messages that *other non-broken
  nodes'* internal views show as received from ``N_i``;
- ``N_i`` is **impersonated** at unit ``u`` if its external view contains
  a message absent from its internal view.

Because AUTH-SEND delivers two rounds after sending, a message sent in
the closing rounds of unit ``u`` may be received during unit ``u+1``'s
refreshment phase (the paper handles this by assigning refresh-phase
traffic to the previous unit, Definition 17); the matcher therefore also
accepts a send recorded in the immediately preceding unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.transcript import Execution

__all__ = ["ViewItem", "internal_sent", "external_view", "impersonations", "impersonated_nodes"]


@dataclass(frozen=True)
class ViewItem:
    """One top-layer message as seen by a view."""

    peer: int  # the other endpoint (receiver for sends, receiver for external items)
    channel: str
    payload: object


def _payload_key(payload: object) -> object:
    try:
        hash(payload)
        return payload
    except TypeError:
        return repr(payload)


def internal_sent(execution: Execution, node: int, unit: int) -> set[ViewItem]:
    """Top-layer messages ``node`` sent during ``unit``."""
    items = set()
    for entry in execution.outputs_of_in_unit(node, unit):
        if isinstance(entry, tuple) and len(entry) == 4 and entry[0] == "app-sent":
            _, receiver, channel, payload = entry
            items.add(ViewItem(receiver, channel, _payload_key(payload)))
    return items


def external_view(execution: Execution, node: int, unit: int) -> set[ViewItem]:
    """Messages other non-broken nodes recorded as received from ``node``
    during ``unit``."""
    broken = execution.broken_in_unit(unit)
    items = set()
    for other in range(execution.n):
        if other == node or other in broken:
            continue
        for entry in execution.outputs_of_in_unit(other, unit):
            if isinstance(entry, tuple) and len(entry) == 4 and entry[0] == "app-recv":
                _, source, channel, payload = entry
                if source == node:
                    items.add(ViewItem(other, channel, _payload_key(payload)))
    return items


def impersonations(execution: Execution, node: int, unit: int) -> set[ViewItem]:
    """External-view items with no matching send in this or the previous
    unit — the messages the adversary successfully forged in ``node``'s
    name.  Returns the empty set when ``node`` was broken during ``unit``
    (a broken node is not "impersonated", Definition 10)."""
    if node in execution.broken_in_unit(unit):
        return set()
    sent = internal_sent(execution, node, unit)
    if unit > 0:
        sent |= internal_sent(execution, node, unit - 1)
    return external_view(execution, node, unit) - sent


def impersonated_nodes(execution: Execution, unit: int) -> dict[int, set[ViewItem]]:
    """All nodes impersonated during ``unit`` with the forged items."""
    result = {}
    for node in range(execution.n):
        forged = impersonations(execution, node, unit)
        if forged:
            result[node] = forged
    return result
