"""Determinism guarantees the perf layer and harness rely on.

* Schnorr signing is derandomized: same key + message → same signature,
  and signing never reads or advances any RNG (module-level ``random``
  included) — the parallel benchmark harness replays executions across
  processes and needs byte-identical transcripts.
* The whole perf layer is transcript-neutral: a ULS execution with every
  optimization on is equal, record for record, to the same execution
  with the layer off.
"""

import random

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.perf import configure
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


# ------------------------------------------------------------ signing

def test_sign_is_deterministic(perf):
    pair = SCHEME.generate(random.Random(3))
    first = SCHEME.sign(pair.signing_key, b"replayed message")
    second = SCHEME.sign(pair.signing_key, b"replayed message")
    assert first == second
    assert first != SCHEME.sign(pair.signing_key, b"different message")


def test_sign_never_touches_global_random(perf):
    pair = SCHEME.generate(random.Random(3))
    random.seed(12345)
    state_before = random.getstate()
    for i in range(10):
        SCHEME.sign(pair.signing_key, b"msg %d" % i)
        SCHEME.verify(pair.verify_key, b"msg %d" % i,
                      SCHEME.sign(pair.signing_key, b"msg %d" % i))
    assert random.getstate() == state_before


def test_distinct_messages_distinct_nonces(perf):
    """Derandomization must not collapse nonces across messages (that
    would leak the key); distinct messages give distinct commitments."""
    pair = SCHEME.generate(random.Random(4))
    commitments = {
        SCHEME.sign(pair.signing_key, b"m%d" % i).commitment for i in range(32)
    }
    assert len(commitments) == 32


# ------------------------------------------------- transcript neutrality

def _run_uls(adversary_factory, units=3, seed=3):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=7)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary_factory(), SCHED, s=T, seed=seed)
    runner.add_external_input(0, SCHED.setup_rounds + 1, ("sign", ("doc", 1)))
    execution = runner.run(units=units)
    return execution


def _records_key(execution):
    return [
        (
            record.info.round,
            record.sent,
            # zero-copy records carry lists where full records carry
            # tuples; content equality is what neutrality promises
            sorted((receiver, tuple(envelopes))
                   for receiver, envelopes in record.delivered.items()),
            sorted(record.broken),
            sorted(record.operational),
            sorted(sorted(link) for link in record.unreliable_links),
        )
        for record in execution.records
    ]


def _assert_same_execution(left, right):
    assert _records_key(left) == _records_key(right)
    assert left.system_log == right.system_log
    assert left.node_outputs == right.node_outputs
    assert left.adversary_output == right.adversary_output


def test_perf_layer_is_transcript_neutral_benign(perf):
    # msg_volume is pinned off on both sides: it is the one flag that is
    # *not* transcript-neutral by design (outcome-level parity instead,
    # see test_msg_volume.py) — and enabled=False would mask it anyway
    configure(enabled=True, fixed_base_min_bits=1, msg_volume=False)
    optimized = _run_uls(PassiveAdversary)
    configure(enabled=False, msg_volume=False)
    baseline = _run_uls(PassiveAdversary)
    _assert_same_execution(optimized, baseline)


def test_perf_layer_is_transcript_neutral_under_attack(perf):
    def adversary():
        return MobileBreakInAdversary(
            BreakinPlan(victims={1: frozenset({2}), 2: frozenset({4})})
        )

    configure(enabled=True, fixed_base_min_bits=1, msg_volume=False)
    optimized = _run_uls(adversary)
    configure(enabled=False, msg_volume=False)
    baseline = _run_uls(adversary)
    _assert_same_execution(optimized, baseline)


def test_repeat_run_with_caches_warm_is_identical(perf):
    configure(enabled=True)
    first = _run_uls(PassiveAdversary)
    second = _run_uls(PassiveAdversary)  # warm caches, same seeds
    _assert_same_execution(first, second)
