"""Unit-level tests of the refresh protocol's building blocks.

The integration suites exercise RefreshService end-to-end; these tests
pin down the two pieces of math the recovery protocol rests on: the
blinding polynomials (degree t, vanish exactly at the requester's index)
and the majority commitment-sync rule.
"""

import random

import pytest

from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer
from repro.crypto.field import Polynomial
from repro.crypto.group import named_group
from repro.crypto.shamir import Share
from repro.pds.keys import deal_initial_states
from repro.pds.refresh import RefreshService
from repro.pds.transport import DirectTransport

GROUP = named_group("toy64")
FIELD = GROUP.scalar_field
N, T = 5, 2


def make_blinding(target: int, rng: random.Random) -> Polynomial:
    """Reproduce the construction from RefreshService._send_blinds:
    b(z) = sum a_k (z^k - target^k)."""
    coefficients = [0] * (T + 1)
    constant = 0
    for k in range(1, T + 1):
        a_k = FIELD.random_element(rng)
        coefficients[k] = a_k
        constant = (constant - a_k * pow(target, k, FIELD.order)) % FIELD.order
    coefficients[0] = constant
    return Polynomial(FIELD, coefficients)


@pytest.mark.parametrize("target", [1, 2, 3, 5])
def test_blinding_polynomial_vanishes_only_at_target(target):
    rng = random.Random(target)
    poly = make_blinding(target, rng)
    assert poly.evaluate(target) == 0
    assert poly.degree_bound == T
    others = [x for x in range(1, N + 1) if x != target]
    # vanishing elsewhere would leak; overwhelmingly unlikely
    assert any(poly.evaluate(x) != 0 for x in others)


def test_blinding_recovery_identity():
    """x_j = interpolate_at(j, {(k, x_k + b(k))}) when b(j) = 0 — the
    whole recovery protocol in one equation."""
    rng = random.Random(9)
    secret_poly = FIELD.random_polynomial(T, rng, constant=777)
    target = 3
    blind = make_blinding(target, rng)
    points = []
    for helper in (1, 2, 4):
        value = (secret_poly.evaluate(helper) + blind.evaluate(helper)) % FIELD.order
        points.append((helper, value))
    recovered = FIELD.interpolate_at(target, points)
    assert recovered == secret_poly.evaluate(target)


def test_blinding_hides_helper_shares():
    """A single blinded value x_k + b(k) is consistent with every possible
    helper share (b(k) is uniform given b(target)=0 and k != target)."""
    rng = random.Random(11)
    target = 2
    samples = {make_blinding(target, random.Random(i)).evaluate(1) for i in range(60)}
    assert len(samples) > 50  # essentially uniform, not structured


def test_sync_adopts_majority_commitment_anchored_at_rom_key():
    """Feed _adopt_commitment_and_complain a vote set where the node's own
    commitment is corrupt: the t+1 matching honest votes win."""
    public, states = deal_initial_states(GROUP, N, T, random.Random(1))
    state = states[0]
    good = state.key_commitment
    # corrupt this node's copy
    dealer = FeldmanDealer(GROUP, n=N, threshold=T)
    state.key_commitment = dealer.deal(123, random.Random(2)).commitment

    service = RefreshService(state, DirectTransport())
    from repro.pds.refresh import _Phase

    phase = _Phase(unit=1, start_round=0)
    phase.sync_votes = {
        0: tuple(state.key_commitment.elements),  # own corrupt copy
        1: tuple(good.elements),
        2: tuple(good.elements),
        3: tuple(good.elements),
    }

    class _Ctx:
        node_id = 0
        rng = random.Random(0)

        class rom:  # noqa: N801 - minimal stub
            @staticmethod
            def get(key):
                return public.public_key

    # run only the adoption logic
    service._adopt_commitment_and_complain(_Ctx(), phase)
    assert tuple(state.key_commitment.elements) == tuple(good.elements)
    assert phase.need_recovery is False or state.share_is_valid() is False


def test_sync_rejects_majority_with_wrong_anchor():
    """Even t+1 matching votes are rejected if their constant term does
    not equal the ROM public key (an adversary cannot vote in a rogue
    polynomial wholesale)."""
    public, states = deal_initial_states(GROUP, N, T, random.Random(3))
    state = states[0]
    good = state.key_commitment
    rogue = FeldmanDealer(GROUP, n=N, threshold=T).deal(55, random.Random(4)).commitment
    assert rogue.public_constant != public.public_key

    service = RefreshService(state, DirectTransport())
    from repro.pds.refresh import _Phase

    phase = _Phase(unit=1, start_round=0)
    phase.sync_votes = {
        1: tuple(rogue.elements),
        2: tuple(rogue.elements),
        3: tuple(rogue.elements),
        4: tuple(rogue.elements),
    }

    class _Ctx:
        node_id = 0
        rng = random.Random(0)

        class rom:
            @staticmethod
            def get(key):
                return public.public_key

    service._adopt_commitment_and_complain(_Ctx(), phase)
    # the rogue majority was ignored; the node kept its own (good) copy
    assert tuple(state.key_commitment.elements) == tuple(good.elements)
