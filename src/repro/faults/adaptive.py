"""Traffic-reactive adaptive adversaries with online budget enforcement.

A static :class:`~repro.faults.plan.FaultPlan` decides every fault before
the run starts; an *adaptive* adversary decides each time unit's faults
online, from what the execution has actually shown so far — which nodes
just recovered, which links carry the DISPERSE relay load, where the
certificates flow.  This is the strongest shape Definition 7 allows (the
paper's adversary is fully adaptive; only its *budget* is bounded), and
the gap the chaos layer had left open.

Three pieces:

- :class:`ExecutionLens` — a read-only :class:`~repro.sim.runner.RunObserver`
  aggregating per-unit impairment sets and per-link, per-channel traffic
  counts.  It is a separate object (not the adversary itself) because
  ``Adversary.on_round(api, info, traffic)`` and
  ``RunObserver.on_round(execution, record)`` collide; attach
  ``adversary.lens`` to the runner's observers.
- :class:`AdaptiveStrategy` implementations — seeded policies mapping the
  lens' view of unit ``u - 1`` to :class:`~repro.faults.budget.FaultRequest`
  lists for unit ``u``: :class:`RecoveryChaserStrategy` re-breaks nodes
  the unit after they recover, :class:`TrafficTargeterStrategy` drops the
  busiest relay links, :class:`CertificateStarverStrategy` cuts the
  refreshment-phase certificate/key channels so victims miss their own
  recovery.
- :class:`AdaptiveAdversary` — a :class:`~repro.faults.inject.FaultInjectionAdversary`
  that starts from an *empty* plan and grows it one unit at a time: at
  each unit's first round (the refreshment phase start, when the lens has
  all of the previous unit) it asks the strategy for requests, projects
  them through an online :class:`~repro.faults.budget.StBudgetGuard`
  (or, unguarded, converts them verbatim for frontier searches), merges
  the approved faults into its plan, and lets the inherited executor run
  them.

Determinism: the per-unit strategy rng is seeded from
``(seed, strategy, unit)`` only — deliberately *excluding* the
``aggressiveness`` knob — and strategies order a full preference list
before truncating to the knob-scaled count, so raising the knob grows
the requested fault set monotonically.  That is what makes the campaign
layer's frontier bisection (:mod:`repro.faults.campaign`) meaningful.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

from repro.faults.budget import (
    FaultRequest,
    ProjectionReport,
    StBudgetGuard,
    requests_to_faults,
)
from repro.faults.inject import FaultInjectionAdversary
from repro.faults.plan import FaultPlan, mix_seed
from repro.sim.adversary_api import Adversary, AdversaryApi
from repro.sim.clock import RoundInfo, Schedule
from repro.sim.messages import Envelope
from repro.sim.runner import RunObserver
from repro.sim.transcript import Execution, RoundRecord

__all__ = [
    "ExecutionLens",
    "StrategyContext",
    "AdaptiveStrategy",
    "RecoveryChaserStrategy",
    "TrafficTargeterStrategy",
    "CertificateStarverStrategy",
    "STRATEGIES",
    "make_strategy",
    "AdaptiveAdversary",
]


class ExecutionLens(RunObserver):
    """Per-unit aggregates of the transcript, for strategies to read.

    Strictly read-only and strictly *past*: when the adversary plans unit
    ``u`` at ``u``'s first round, the lens has every record of units
    ``< u`` and nothing newer (records are appended after the adversary's
    turn), so strategies can never peek at the round they are attacking.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Forget everything (in place, so attached references survive)."""
        self.rounds_seen = 0
        self._impaired: dict[int, set[int]] = {}
        self._broken: dict[int, set[int]] = {}
        # unit -> (min,max) link -> channel -> envelopes sent
        self._traffic: dict[int, dict[tuple[int, int], dict[str, int]]] = {}

    # -- RunObserver -----------------------------------------------------------

    def on_round(self, execution: Execution, record: RoundRecord) -> None:
        unit = record.info.time_unit
        self.rounds_seen += 1
        self._broken.setdefault(unit, set()).update(record.broken)
        impaired = self._impaired.setdefault(unit, set())
        impaired.update(record.broken)
        impaired.update(set(range(execution.n)) - set(record.operational))
        links = self._traffic.setdefault(unit, {})
        for envelope in record.sent:
            a, b = envelope.sender, envelope.receiver
            link = (a, b) if a < b else (b, a)
            per_channel = links.setdefault(link, {})
            per_channel[envelope.channel] = per_channel.get(envelope.channel, 0) + 1

    # -- queries ---------------------------------------------------------------

    def impaired_in_unit(self, unit: int) -> frozenset[int]:
        """Nodes broken or non-operational at some round of ``unit``
        (Definition 7's charged set; these recover, at the earliest, at
        the end of unit ``unit + 1``'s refreshment phase)."""
        return frozenset(self._impaired.get(unit, ()))

    def broken_in_unit(self, unit: int) -> frozenset[int]:
        return frozenset(self._broken.get(unit, ()))

    def link_traffic(self, unit: int, channel: str | None = None) -> dict[tuple[int, int], int]:
        """Envelope count per (sorted) link, optionally one channel only."""
        out: dict[tuple[int, int], int] = {}
        for link, per_channel in self._traffic.get(unit, {}).items():
            count = (per_channel.get(channel, 0) if channel is not None
                     else sum(per_channel.values()))
            if count:
                out[link] = count
        return out

    def busiest_links(self, unit: int, channel: str | None = None) -> list[tuple[int, int]]:
        """Links of ``unit`` ordered busiest-first (ties by link id)."""
        traffic = self.link_traffic(unit, channel)
        return sorted(traffic, key=lambda link: (-traffic[link], link))

    def node_traffic(self, unit: int, channel: str | None = None) -> dict[int, int]:
        """Envelopes sent or received per node — the relay-load ranking."""
        out: dict[int, int] = {}
        for (a, b), count in self.link_traffic(unit, channel).items():
            out[a] = out.get(a, 0) + count
            out[b] = out.get(b, 0) + count
        return out


@dataclass
class StrategyContext:
    """Everything a strategy may look at while planning one unit."""

    unit: int
    n: int
    t: int
    s: int
    schedule: Schedule
    lens: ExecutionLens
    rng: random.Random
    aggressiveness: float


class AdaptiveStrategy:
    """One seeded policy: lens view of unit ``u - 1`` → requests for ``u``.

    Strategies must be *monotone in the knob*: build the full preference
    order first, then truncate to :meth:`want` victims, so a higher
    ``aggressiveness`` only ever adds requests.  The request count scales
    past ``t`` on purpose — the guard clamps it back, and the unguarded
    frontier search needs the overshoot to find the breaking point.
    """

    name = "abstract"

    def plan_unit(self, ctx: StrategyContext) -> list[FaultRequest]:
        raise NotImplementedError

    @staticmethod
    def want(ctx: StrategyContext) -> int:
        """Victims to target this unit: ``ceil(aggressiveness * n)``."""
        return max(1, math.ceil(ctx.aggressiveness * ctx.n))

    @staticmethod
    def _shuffled_rest(ctx: StrategyContext, preferred: list[int]) -> list[int]:
        rest = [node for node in range(ctx.n) if node not in set(preferred)]
        ctx.rng.shuffle(rest)
        return rest


class RecoveryChaserStrategy(AdaptiveStrategy):
    """Re-break nodes the unit after they recover.

    Unit ``u - 1``'s impaired nodes re-enter at the end of unit ``u``'s
    refreshment phase; crashing them through ``u``'s normal rounds takes
    them straight back down, which is the worst case for time-to-recovery
    (the victim never accumulates a full clean unit).
    """

    name = "recovery-chaser"

    def plan_unit(self, ctx: StrategyContext) -> list[FaultRequest]:
        recovering = sorted(ctx.lens.impaired_in_unit(ctx.unit - 1))
        order = recovering + self._shuffled_rest(ctx, recovering)
        return [FaultRequest(kind="crash", victim=victim)
                for victim in order[: self.want(ctx)]]


class TrafficTargeterStrategy(AdaptiveStrategy):
    """Disconnect the busiest relays on the observed DISPERSE traffic.

    Victims are ranked by the previous unit's per-node relay load on
    ``channel`` (all channels as fallback when it carried nothing); each
    victim's ``s`` busiest links are dropped for the unit's normal
    rounds, so the heaviest relay hubs go s-disconnected exactly where
    the flooding depends on them.  Fellow victims are preferred as link
    peers — attacking a victim–victim link costs no collateral budget.
    """

    name = "traffic-targeter"

    def __init__(self, channel: str | None = "disperse") -> None:
        self.channel = channel

    def plan_unit(self, ctx: StrategyContext) -> list[FaultRequest]:
        previous = ctx.unit - 1
        load = ctx.lens.node_traffic(previous, self.channel)
        links = ctx.lens.link_traffic(previous, self.channel)
        if not load:
            load = ctx.lens.node_traffic(previous)
            links = ctx.lens.link_traffic(previous)
        ranked = sorted(range(ctx.n), key=lambda node: (-load.get(node, 0), node))
        victims = ranked[: self.want(ctx)]
        victim_set = set(victims)
        collateral: dict[int, int] = {}
        requests: list[FaultRequest] = []
        for victim in victims:
            def weight(peer: int) -> tuple:
                link = (victim, peer) if victim < peer else (peer, victim)
                # fellow victims first (free), then lightly-loaded peers,
                # busiest link first within a tier
                return (peer not in victim_set, collateral.get(peer, 0),
                        -links.get(link, 0), peer)
            peers = sorted((p for p in range(ctx.n) if p != victim), key=weight)
            for peer in peers[: ctx.s]:
                if peer not in victim_set:
                    collateral[peer] = collateral.get(peer, 0) + 1
                requests.append(FaultRequest(kind="drop", victim=victim, peer=peer))
        return requests


class CertificateStarverStrategy(AdaptiveStrategy):
    """Cut the refreshment-phase CERTIFY/NEWKEY flow so victims miss
    their own recovery.

    Certificates and new-key announcements travel on the ``disperse`` and
    ``newkey`` channels during the refreshment phase; dropping a victim's
    links there makes it miss the phase-end re-admission (Def. 5.3) and
    stay impaired a whole extra unit.  Nodes the previous unit already
    impaired are preferred — re-starving a recovering node is also the
    only admission the refresh budget allows once previous victims exist
    (see :class:`~repro.faults.budget.StBudgetGuard`) — and recovering
    nodes are never used as link *peers*, mirroring the guard's
    ``peer-recovering`` rule.
    """

    name = "certificate-starver"
    channels = frozenset({"disperse", "newkey"})

    def plan_unit(self, ctx: StrategyContext) -> list[FaultRequest]:
        if ctx.unit < 1:
            return []  # unit 0 has no refreshment phase to starve
        previous = sorted(ctx.lens.impaired_in_unit(ctx.unit - 1))
        order = previous + self._shuffled_rest(ctx, previous)
        victims = order[: self.want(ctx)]
        victim_set = set(victims)
        previous_set = set(previous)
        collateral: dict[int, int] = {}
        requests: list[FaultRequest] = []
        for victim in victims:
            def weight(peer: int) -> tuple:
                return (peer not in victim_set, collateral.get(peer, 0), peer)
            peers = sorted(
                (p for p in range(ctx.n) if p != victim and p not in previous_set),
                key=weight,
            )
            for peer in peers[: ctx.s]:
                if peer not in victim_set:
                    collateral[peer] = collateral.get(peer, 0) + 1
                requests.append(FaultRequest(
                    kind="drop", victim=victim, peer=peer,
                    phase="refresh", channels=self.channels,
                ))
        return requests


STRATEGIES: dict[str, type[AdaptiveStrategy]] = {
    RecoveryChaserStrategy.name: RecoveryChaserStrategy,
    TrafficTargeterStrategy.name: TrafficTargeterStrategy,
    CertificateStarverStrategy.name: CertificateStarverStrategy,
}


def make_strategy(name: str, **kwargs) -> AdaptiveStrategy:
    """Instantiate a registered strategy by name (campaign configs are
    JSON, so strategies travel as strings)."""
    try:
        return STRATEGIES[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"known: {sorted(STRATEGIES)}") from None


class AdaptiveAdversary(FaultInjectionAdversary):
    """Fault-injection adversary whose plan grows online, one unit ahead.

    Attach :attr:`lens` to the runner's observers — without it the
    strategies see an empty past and degrade to their seeded fallback
    order (still legal, just blind).  Per-unit
    :class:`~repro.faults.budget.ProjectionReport` summaries are published
    into the adversary output as ``("adaptive-plan", {...})`` entries, so
    the budget's decisions are part of the transcript (and of its
    digest).

    Args:
        guarded: project requests through an online
            :class:`~repro.faults.budget.StBudgetGuard` (the default);
            ``False`` converts them verbatim — deliberately illegal
            at high aggressiveness, for frontier searches and negative
            controls.
        aggressiveness: the campaign layer's escalation knob; scales the
            per-unit victim count (see :meth:`AdaptiveStrategy.want`).
    """

    def __init__(
        self,
        strategy: AdaptiveStrategy,
        t: int,
        *,
        s: int | None = None,
        seed: int = 0,
        guarded: bool = True,
        max_victims_per_unit: int | None = None,
        base: Adversary | None = None,
        start_unit: int = 1,
        aggressiveness: float = 1.0,
    ) -> None:
        super().__init__(self._empty_plan(seed, strategy), base=base)
        self.strategy = strategy
        self.t = t
        self.s = t if s is None else s
        self.seed = seed
        self.guarded = guarded
        self.max_victims_per_unit = max_victims_per_unit
        self.start_unit = start_unit
        self.aggressiveness = aggressiveness
        self.lens = ExecutionLens()
        self.guard: StBudgetGuard | None = None
        self.reports: list[ProjectionReport] = []
        self._planned: set[int] = set()

    @staticmethod
    def _empty_plan(seed: int, strategy: AdaptiveStrategy) -> FaultPlan:
        return FaultPlan(seed=mix_seed("adaptive", seed, strategy.name))

    # -- lifecycle -------------------------------------------------------------

    def begin(self, n: int, schedule: Schedule, rng: random.Random) -> None:
        # reset the grown state so one adversary object can drive repeated
        # runs (the campaign layer constructs a fresh one anyway)
        self.plan = self._empty_plan(self.seed, self.strategy)
        self.lens.reset()  # in place: the runner's observer list holds it
        self.reports = []
        self._planned = set()
        self.guard = (
            StBudgetGuard(n, self.t, schedule, s=self.s,
                          max_victims_per_unit=self.max_victims_per_unit)
            if self.guarded else None
        )
        super().begin(n, schedule, rng)

    def finish(self) -> list:
        entries = super().finish()
        entries.append(("adaptive-stats", {
            "strategy": self.strategy.name,
            "aggressiveness": self.aggressiveness,
            "guarded": self.guarded,
            "requested": sum(report.requested for report in self.reports),
            "approved": sum(report.approved for report in self.reports),
            "denied": sum(report.denied_total for report in self.reports),
        }))
        return entries

    # -- per-round hook --------------------------------------------------------

    def on_round(self, api: AdversaryApi, info: RoundInfo, traffic: tuple[Envelope, ...]) -> None:
        unit = info.time_unit
        if (unit >= self.start_unit and unit not in self._planned
                and info.round == self.schedule.rounds_of_unit(unit)[0]):
            # the unit's first round: the lens holds all of unit - 1, and
            # faults merged now (refresh window included) fire this round
            self._plan_unit(api, unit)
        super().on_round(api, info, traffic)

    def _plan_unit(self, api: AdversaryApi, unit: int) -> None:
        self._planned.add(unit)
        ctx = StrategyContext(
            unit=unit, n=self.n, t=self.t, s=self.s, schedule=self.schedule,
            lens=self.lens,
            # knob excluded from the seed: choices stay aligned across
            # aggressiveness levels, so escalation only grows the set
            rng=random.Random(mix_seed("adaptive-unit", self.seed,
                                       self.strategy.name, unit)),
            aggressiveness=self.aggressiveness,
        )
        requests = self.strategy.plan_unit(ctx)
        if self.guard is not None:
            report = self.guard.project(unit, requests)
        else:
            report = requests_to_faults(unit, requests, self.schedule)
        self.reports.append(report)
        self._merge(report)
        api.output(("adaptive-plan", report.as_dict()))

    def _merge(self, report: ProjectionReport) -> None:
        self.plan = dataclasses.replace(
            self.plan,
            crashes=self.plan.crashes + report.crashes,
            corruptions=self.plan.corruptions + report.corruptions,
            drops=self.plan.drops + report.drops,
            duplications=self.plan.duplications + report.duplications,
            delays=self.plan.delays + report.delays,
        ).validate(n=self.n)
        # the inherited executor indexes corruptions at begin(); re-index
        # after every merge so late corruptions still fire
        self._corruptions_by_round = {}
        for fault in self.plan.corruptions:
            self._corruptions_by_round.setdefault(fault.round, []).append(fault)
