"""Scalability extensions from the paper's §6 discussion.

- :mod:`repro.scale.partition` — the two-level √n-neighborhood scheme and
  its tolerance/complexity trade-off.
- the O(nt) DISPERSE relaxation lives directly in
  :class:`repro.core.disperse.DisperseService` (``relay_fanout``), wired
  through :class:`repro.core.uls.UlsProgram`.
"""

from repro.scale.partition import PartitionPlan, flat_tolerance, simulate_cluster

__all__ = ["PartitionPlan", "flat_tolerance", "simulate_cluster"]
