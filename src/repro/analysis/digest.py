"""Canonical transcript digests for determinism replay checks.

A transcript digest is a SHA-256 over the full
:class:`~repro.sim.transcript.Execution` — round records, system log,
node outputs and adversary output — in a *canonical, process-independent*
form: sets are sorted (frozenset iteration order depends on
``PYTHONHASHSEED``), dicts are sorted by key, envelopes are flattened.
Two runs digest identically iff they produced bit-identical transcripts.

This is the primitive behind every determinism claim in the repo: the E8
and E14 benchmarks hash layer-on vs layer-off runs with it (via the
``benchmarks/common.py`` re-export), and the adaptive chaos campaigns
(:mod:`repro.faults.campaign`, experiment E15) hash replayed campaign
runs to prove that the same campaign seed reproduces every per-run
transcript exactly.
"""

from __future__ import annotations

import hashlib

from repro.sim.messages import Envelope

__all__ = [
    "stable_form",
    "transcript_digest",
    "outcome_digest",
    "RoundsDigest",
    "rounds_digest",
]


def stable_form(value):
    """A canonical, process-independent form of transcript values."""
    if isinstance(value, Envelope):
        return ("Env", value.sender, value.receiver, value.channel,
                stable_form(value.payload), value.round_sent)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted((stable_form(v) for v in value), key=repr))
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted(((stable_form(k), stable_form(v)) for k, v in value.items()), key=repr)
        )
    if isinstance(value, (tuple, list)):
        return tuple(stable_form(v) for v in value)
    return value


def transcript_digest(execution) -> str:
    """SHA-256 over the full execution transcript in canonical form."""
    payload = (
        [
            (
                record.info,
                stable_form(record.sent),
                stable_form(record.delivered),
                stable_form(record.broken),
                stable_form(record.operational),
                stable_form(record.unreliable_links),
            )
            for record in execution.records
        ],
        stable_form(execution.system_log),
        stable_form(execution.node_outputs),
        stable_form(execution.adversary_output),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def outcome_digest(execution) -> str:
    """SHA-256 over the *protocol outcomes* of an execution: node outputs,
    system log and adversary output — everything the paper's global output
    contains — but not the wire traffic.

    This is the parity primitive for the message-volume layer
    (``PerfConfig.msg_volume``): unlike every other perf flag it changes
    *which* envelopes are sent, so :func:`transcript_digest` equality is
    impossible by construction; what must (and does) coincide is what the
    protocols *did* — keys certified, signatures produced, alerts raised,
    dealers rejected.  Two runs with identical outcome digests emulated
    each other in the Definition 5 sense for a traffic-blind environment.
    """
    payload = (
        stable_form(execution.node_outputs),
        stable_form(execution.system_log),
        stable_form(execution.adversary_output),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class RoundsDigest:
    """Incremental canonical digest over per-round traffic.

    One :meth:`update` per round hashes the same canonical tuple that
    :func:`transcript_digest` builds for a full record, so a run that
    streams this digest while keeping only compact records stays
    digest-comparable to a full-mode run (see :func:`rounds_digest`).
    The per-round canonical forms are hashed as they arrive and then
    dropped — memory use is O(1) in the number of rounds.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def update(self, info, sent, delivered, broken, operational, unreliable_links) -> None:
        form = (
            info,
            stable_form(sent),
            stable_form(delivered),
            stable_form(broken),
            stable_form(operational),
            stable_form(unreliable_links),
        )
        self._hash.update(repr(form).encode("utf-8"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def rounds_digest(execution) -> str:
    """The :class:`RoundsDigest` of a full-mode execution's records.

    Equals ``execution.rounds_digest`` of a compact-records run of the
    same protocol iff the two runs delivered bit-identical round traffic —
    the parity check the E16 benchmark performs for compact mode.
    """
    digest = RoundsDigest()
    for record in execution.records:
        digest.update(
            record.info,
            record.sent,
            record.delivered,
            record.broken,
            record.operational,
            record.unreliable_links,
        )
    return digest.hexdigest()
