"""Algorithms CERTIFY and VER-CERT (paper Fig. 3).

CERTIFY binds a message to its full context — content ``m``, source ``i``,
destination ``j``, time unit ``u`` and communication round ``w`` — under
the sender's per-unit local key, and attaches the local verification key
plus its PDS certificate.  VER-CERT checks, in order:

1. **format/time**: right source, destination, unit and round (replays
   and reflected messages die here);
2. **certificate**: the attached verification key is certified for
   ``(i, u)`` under the global key ``v_cert`` held in ROM;
3. **signature**: the message signature verifies under the attached key.

A message passing all three is *properly certified* (Definition 17(a)).
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashing import encode_for_hash
from repro.crypto.signature import SignatureError, SignatureScheme
from repro.core.keystore import LocalKeys, certificate_assertion
from repro.pds.keys import PdsPublic
from repro.pds.threshold_schnorr import pds_message_bytes, verify_pds_signature

__all__ = ["CertifiedMessage", "certify", "ver_cert", "verify_certified_body"]


class CertifiedMessage(tuple):
    """The tuple ``⟨m, i, j, u, w, σ, v, cert⟩`` of Fig. 3 (a thin subclass
    for readability; stays a plain tuple on the wire)."""

    __slots__ = ()

    @property
    def message(self) -> Any:
        return self[0]

    @property
    def source(self) -> int:
        return self[1]

    @property
    def destination(self) -> int:
        return self[2]

    @property
    def unit(self) -> int:
        return self[3]

    @property
    def round(self) -> int:
        return self[4]

    @property
    def signature(self) -> Any:
        return self[5]

    @property
    def verify_key(self) -> Any:
        return self[6]

    @property
    def certificate(self) -> Any:
        return self[7]


def _signed_bytes(message: Any, source: int, destination: int, unit: int, round_w: int) -> bytes:
    return encode_for_hash(("auth-msg", message, source, destination, unit, round_w))


def certify(
    scheme: SignatureScheme,
    keys: LocalKeys,
    message: Any,
    source: int,
    destination: int,
    round_w: int,
) -> CertifiedMessage | None:
    """Fig. 3 CERTIFY.  Returns None when the keys are ``φ`` (a node whose
    refresh failed cannot authenticate anything — it should already have
    alerted)."""
    if not keys.usable:
        return None
    try:
        signature = scheme.sign(
            keys.keypair.signing_key,
            _signed_bytes(message, source, destination, keys.unit, round_w),
        )
    except SignatureError:
        return None  # e.g. one-time keys exhausted
    return CertifiedMessage(
        (
            message,
            source,
            destination,
            keys.unit,
            round_w,
            signature,
            keys.keypair.verify_key,
            keys.certificate,
        )
    )


def _check_certificate(
    scheme: SignatureScheme, public: PdsPublic, msg: CertifiedMessage
) -> bool:
    """Step 2 of VER-CERT: the attached key is certified for (i, u)."""
    try:
        key_repr = scheme.key_repr(msg.verify_key)
    except TypeError:
        return False
    assertion = certificate_assertion(msg.source, msg.unit, key_repr)
    return verify_pds_signature(public, assertion, msg.unit, msg.certificate)


def ver_cert(
    scheme: SignatureScheme,
    public: PdsPublic,
    receiver: int,
    alleged_source: int,
    expected_unit: int,
    expected_round: int,
    raw: Any,
) -> CertifiedMessage | None:
    """Fig. 3 VER-CERT.  Returns the accepted message, or None on reject."""
    msg = _parse(raw)
    if msg is None:
        return None
    # step 1: format and time
    if msg.source != alleged_source or msg.destination != receiver:
        return None
    if msg.unit != expected_unit or msg.round != expected_round:
        return None
    # step 2: certificate
    if not _check_certificate(scheme, public, msg):
        return None
    # step 3: message signature
    try:
        body = _signed_bytes(msg.message, msg.source, msg.destination, msg.unit, msg.round)
    except TypeError:
        return None
    if not scheme.verify(msg.verify_key, body, msg.signature):
        return None
    return msg


def verify_certified_body(
    scheme: SignatureScheme,
    public: PdsPublic,
    expected_unit: int,
    expected_round: int,
    raw: Any,
) -> CertifiedMessage | None:
    """Like :func:`ver_cert` but without pinning source/destination.

    Used by PARTIAL-AGREEMENT step 4 (Fig. 5), where nodes cross-check
    *forwarded* certified messages that were originally addressed to other
    nodes: authenticity of (author, content, time) is what matters, the
    destination is whoever the author originally sent its input to.
    """
    msg = _parse(raw)
    if msg is None:
        return None
    if msg.unit != expected_unit or msg.round != expected_round:
        return None
    if not _check_certificate(scheme, public, msg):
        return None
    try:
        body = _signed_bytes(msg.message, msg.source, msg.destination, msg.unit, msg.round)
    except TypeError:
        return None
    if not scheme.verify(msg.verify_key, body, msg.signature):
        return None
    return msg


def _parse(raw: Any) -> CertifiedMessage | None:
    if isinstance(raw, CertifiedMessage):
        return raw
    if isinstance(raw, tuple) and len(raw) == 8:
        if isinstance(raw[1], int) and isinstance(raw[2], int) \
                and isinstance(raw[3], int) and isinstance(raw[4], int):
            return CertifiedMessage(raw)
    return None
