"""Good/bad execution classification (Definitions 17, 18, 22–24).

The security proof of Theorem 14 partitions executions into GOOD ones
(no forged messages; every operational node holds keys and a certificate)
and three classes of bad ones, each corresponding to a cryptographic
failure:

- **BAD1**: an operational node ends a refreshment phase with ``φ`` keys
  (a liveness failure of the AL-model PDS — Lemma 26);
- **BAD2**: a forged message whose attached key is *not* the one its
  alleged sender got certified — i.e. the adversary obtained a rogue
  certificate (a forgery against the PDS — Lemma 27);
- **BAD3**: a forged message under the sender's *genuine* certified key —
  a forgery against the centralized scheme CS (Lemma 28).

This module re-derives that classification from a finished execution's
transcript: it scans every delivered DISPERSE payload for properly
certified messages (Def. 17(a)), checks whether the alleged sender
actually sent a matching ``(m, i, j, u, w)`` (Def. 17(b)), and whether the
sender was unbroken with usable keys (Def. 17(c)).  The headline numbers
of experiment E3 — observed(GOOD) across seeds — come from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.certify import CertifiedMessage, verify_certified_body
from repro.crypto.hashing import encode_for_hash
from repro.crypto.signature import SignatureScheme
from repro.pds.keys import PdsPublic
from repro.sim.transcript import Execution

__all__ = ["ForgedMessage", "GoodnessReport", "classify_execution"]


@dataclass(frozen=True)
class ForgedMessage:
    """A delivered, properly certified message its sender never sent."""

    round: int
    message: CertifiedMessage
    bad_type: str  # "BAD2" (rogue key) or "BAD3" (genuine key)


@dataclass
class GoodnessReport:
    """Outcome of :func:`classify_execution`."""

    forged: list[ForgedMessage] = field(default_factory=list)
    bad1_failures: list[tuple[int, int]] = field(default_factory=list)  # (unit, node)
    certified_keys: dict[tuple[int, int], set[tuple]] = field(default_factory=dict)

    @property
    def good(self) -> bool:
        return not self.forged and not self.bad1_failures

    @property
    def classification(self) -> str:
        if self.bad1_failures:
            return "BAD1"
        for item in self.forged:
            if item.bad_type == "BAD2":
                return "BAD2"
        if self.forged:
            return "BAD3"
        return "GOOD"


def _raw_certified_payloads(payload: Any):
    """Extract candidate certified tuples from a DISPERSE envelope payload."""
    if isinstance(payload, tuple) and len(payload) == 5 and payload[0] in ("fwd", "fwding"):
        raw = payload[4]
        if isinstance(raw, tuple) and len(raw) == 8:
            yield raw


def _stamp(msg: CertifiedMessage) -> tuple:
    return (
        _key(msg.message),
        msg.source,
        msg.destination,
        msg.unit,
        msg.round,
    )


def _key(value: Any) -> Any:
    try:
        return encode_for_hash(value)
    except TypeError:
        return repr(value)


def classify_execution(
    execution: Execution,
    public: PdsPublic,
    scheme: SignatureScheme,
    key_history: dict[int, dict[int, str]],
    t: int,
    certified_keys: dict[int, dict[int, tuple]] | None = None,
) -> GoodnessReport:
    """Classify one execution (see module docstring).

    Args:
        execution: the finished run.
        public / scheme: PDS public parameters and the CS scheme (needed
            to recognize properly certified messages).
        key_history: per node, per unit: "ok" / "failed" from the
            keystores (``{i: dict(program.keystore.history)}``); unit 0 is
            implicitly "ok" (set-up issues everyone's certificate).
        t: the adversary bound, for the BAD1 check.
        certified_keys: per node, per unit: the canonical repr of the key
            the node actually got certified
            (``{i: program.keystore.key_reprs}``).  Used to discriminate
            BAD2 (rogue key) from BAD3 (genuine key); when omitted, the
            keys observed in the node's own sent traffic are used as the
            genuine set.
    """
    report = GoodnessReport()
    verified_cache: dict[Any, CertifiedMessage | None] = {}

    # -- collect everything genuinely sent, and everything delivered --------
    sent_stamps: set[tuple] = set()
    sent_key_reprs: dict[tuple[int, int], set[tuple]] = {}  # (node, unit) -> reprs used
    for record in execution.records:
        for envelope in record.sent:
            if envelope.channel != "disperse":
                continue
            if envelope.payload[0] != "fwd":  # only the origination counts as "sent"
                continue
            for raw in _raw_certified_payloads(envelope.payload):
                msg = CertifiedMessage(raw)
                if envelope.sender != msg.source:
                    continue  # someone forwarding another's message
                sent_stamps.add(_stamp(msg))
                try:
                    repr_key = tuple(scheme.key_repr(msg.verify_key))
                except TypeError:
                    continue
                sent_key_reprs.setdefault((msg.source, msg.unit), set()).add(repr_key)

    broken_by_round = {record.info.round: record.broken for record in execution.records}

    def sender_broken_up_to(node: int, unit: int, round_w: int) -> bool:
        for record in execution.rounds_in_unit(unit):
            if record.info.round > round_w:
                break
            if node in broken_by_round.get(record.info.round, frozenset()):
                return True
        return False

    def keys_usable(node: int, unit: int) -> bool:
        if unit == 0:
            return True
        return key_history.get(node, {}).get(unit) == "ok"

    seen_forged: set[tuple] = set()
    for record in execution.records:
        for receiver, envelopes in record.delivered.items():
            for envelope in envelopes:
                if envelope.channel != "disperse":
                    continue
                for raw in _raw_certified_payloads(envelope.payload):
                    cache_key = _key(raw)
                    if cache_key not in verified_cache:
                        candidate = CertifiedMessage(raw)
                        verified_cache[cache_key] = verify_certified_body(
                            scheme,
                            public,
                            expected_unit=candidate.unit,
                            expected_round=candidate.round,
                            raw=raw,
                        )
                    msg = verified_cache[cache_key]
                    if msg is None:
                        continue  # not properly certified: not a forgery
                    stamp = _stamp(msg)
                    if stamp in sent_stamps or stamp in seen_forged:
                        continue
                    # Def. 17(c): the sender must have been unbroken and
                    # with usable keys for this to count as a forgery
                    if sender_broken_up_to(msg.source, msg.unit, msg.round):
                        continue
                    if not keys_usable(msg.source, msg.unit):
                        continue
                    seen_forged.add(stamp)
                    genuine = set(sent_key_reprs.get((msg.source, msg.unit), set()))
                    if certified_keys is not None:
                        certified = certified_keys.get(msg.source, {}).get(msg.unit)
                        if certified is not None:
                            genuine.add(tuple(certified))
                    try:
                        used = tuple(scheme.key_repr(msg.verify_key))
                    except TypeError:
                        used = ()
                    bad_type = "BAD3" if used in genuine else "BAD2"
                    report.forged.append(
                        ForgedMessage(round=record.info.round, message=msg, bad_type=bad_type)
                    )

    # -- BAD1: operational nodes that ended a refresh with phi keys ---------
    for unit in range(1, execution.units()):
        refresh_rounds = [
            record
            for record in execution.rounds_in_unit(unit)
            if record.info.phase.value == "refresh"
        ]
        if not refresh_rounds:
            continue
        operational_at_end = refresh_rounds[-1].operational
        for node in operational_at_end:
            if not keys_usable(node, unit):
                report.bad1_failures.append((unit, node))

    return report
