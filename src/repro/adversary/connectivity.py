"""Reliable links and s-operational node tracking (Definitions 4–6).

The runner feeds this tracker, round by round, the set of broken nodes and
the set of unreliable links (computed by diffing sent vs. delivered
traffic, Definition 4).  The tracker maintains the inductively-defined set
of *s-operational* nodes:

- at the first communication round of the first time unit the operational
  nodes are exactly the non-broken ones (Def. 5.1);
- a node *stays* operational while it is unbroken and either (i) has
  reliable links to at least ``n - s`` nodes that were operational at the
  previous round, or (ii) has unreliable links to fewer than ``s`` nodes
  that were operational at the previous round;
- a non-operational node *becomes* operational at the end of a
  refreshment phase if it was unbroken throughout the phase and had
  reliable links, throughout the phase, to at least ``n - s`` nodes that
  were operational throughout the phase (Def. 5.3; the count matches
  Lemma 20's "a set S of at least n − t nodes").

A non-broken, non-operational node is *s-disconnected* (Def. 6).

**A note on the two survival conditions.**  Definition 5.2(b) of the paper
gives two formulations — "reliable links with at least n − s + 1 nodes
that were also s-operational" and, parenthetically, "unreliable links to
less than s other s-operational nodes".  These coincide while *all* nodes
are operational (then ``reliable >= n - s  <=>  unreliable < s``) but
diverge once the operational set shrinks: the first becomes unsatisfiable
when fewer than ``n - s`` operational peers remain (the whole set would
collapse even with perfect links among the survivors), while the second
alone is too weak for Lemma 15's common-neighbour argument.  We therefore
take their disjunction: it is exactly the first formulation in the regime
all of the paper's lemmas are invoked in, and degrades gracefully (an
intact clique of survivors stays operational) outside it.
"""

from __future__ import annotations

from repro.sim.clock import Phase, RoundInfo

__all__ = ["ConnectivityTracker"]


class ConnectivityTracker:
    """Incremental computation of the s-operational node set."""

    def __init__(self, n: int, s: int) -> None:
        if not (1 <= s <= n):
            raise ValueError(f"s must be in [1, n], got {s}")
        self.n = n
        self.s = s
        self._operational: frozenset[int] = frozenset(range(n))
        self._started = False
        # refreshment-phase accumulators (Def. 5.3)
        self._phase_op_throughout: set[int] = set()
        self._phase_unbroken: set[int] = set()
        self._phase_link_ok: set[frozenset[int]] = set()

    @property
    def operational(self) -> frozenset[int]:
        return self._operational

    def disconnected(self, broken: frozenset[int]) -> frozenset[int]:
        """s-disconnected = neither broken nor operational (Def. 6)."""
        return frozenset(range(self.n)) - self._operational - broken

    # -- per-round update ----------------------------------------------------

    def observe_round(
        self,
        info: RoundInfo,
        broken: frozenset[int],
        unreliable_links: frozenset[frozenset[int]],
    ) -> frozenset[int]:
        """Advance one round; returns the operational set *for this round*."""
        if info.phase is Phase.SETUP:
            # Adversary is inactive during set-up; everyone is operational.
            self._operational = frozenset(range(self.n))
            return self._operational

        if not self._started:
            # Def. 5.1: first communication round of the first time unit.
            self._started = True
            self._operational = frozenset(range(self.n)) - broken
            if info.phase is Phase.REFRESH and info.is_phase_start:
                self._begin_phase(broken)
                self._update_phase(self._operational, broken, unreliable_links)
            return self._operational

        previous = self._operational
        survivors: set[int] = set()
        for i in previous:
            if i in broken:
                continue
            reliable_neighbors = 0
            unreliable_neighbors = 0
            for j in previous:
                if j == i or j in broken:
                    # a link that is down because its far endpoint is broken
                    # is the *endpoint's* impairment, not ours: the paper
                    # charges the adversary per node it breaks into or per
                    # node whose own links it tampers with (§2.2)
                    continue
                if frozenset((i, j)) in unreliable_links:
                    unreliable_neighbors += 1
                else:
                    reliable_neighbors += 1
            if reliable_neighbors >= self.n - self.s or unreliable_neighbors < self.s:
                survivors.add(i)
        operational = frozenset(survivors)

        if info.phase is Phase.REFRESH:
            if info.is_phase_start:
                self._begin_phase(broken)
            self._update_phase(operational, broken, unreliable_links)
            if info.is_phase_end:
                operational = self._apply_recoveries(operational)

        self._operational = operational
        return operational

    # -- refreshment-phase bookkeeping (Def. 5.3) ------------------------------

    def _begin_phase(self, broken: frozenset[int]) -> None:
        everyone = set(range(self.n))
        self._phase_op_throughout = set(everyone)
        self._phase_unbroken = everyone - broken
        self._phase_link_ok = {
            frozenset((i, j)) for i in range(self.n) for j in range(i + 1, self.n)
        }

    def _update_phase(
        self,
        operational: frozenset[int],
        broken: frozenset[int],
        unreliable_links: frozenset[frozenset[int]],
    ) -> None:
        self._phase_op_throughout &= operational
        self._phase_unbroken -= broken
        self._phase_link_ok -= unreliable_links

    def _apply_recoveries(self, operational: frozenset[int]) -> frozenset[int]:
        promoted: set[int] = set(operational)
        helpers_pool = self._phase_op_throughout
        for candidate in range(self.n):
            if candidate in operational or candidate not in self._phase_unbroken:
                continue
            helper_count = sum(
                1
                for helper in helpers_pool
                if helper != candidate
                and frozenset((candidate, helper)) in self._phase_link_ok
            )
            if helper_count >= self.n - self.s:
                promoted.add(candidate)
        return frozenset(promoted)
