"""Centralized Schnorr signatures over a Schnorr group.

This is the default instantiation of the paper's abstract scheme
``CS = (CGen, CSign, CVer)``: existentially unforgeable under chosen
message attack in the random-oracle model under discrete log.  It is also
the *centralized shadow* of the threshold scheme in
:mod:`repro.pds.threshold_schnorr` — a threshold signature combined from
partial signatures verifies under this exact verifier.

Determinism contract: signing is *derandomized* (RFC-6979 style — the
nonce is a hash of the signing key and the message), so (a) the same
``(signing_key, message)`` always yields the same signature, (b) signing
never reads or advances any RNG — neither the module-level ``random``
state nor the simulator's seeded streams — which the replay determinism
of the parallel benchmark harness relies on, and (c) nonce reuse across
distinct messages is structurally impossible.

Performance layer hooks (all transcript-neutral, see :mod:`repro.perf`):
Fiat–Shamir challenges are memoized under their exact inputs, ``y^e``
goes through a fixed-base window for long-lived keys on large groups,
and :meth:`SchnorrScheme.batch_verify` checks many signatures with one
random-linear-combination equation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.crypto.group import SchnorrGroup, named_group
from repro.crypto.hashing import encode_for_hash, hash_to_int, tagged_hash
from repro.crypto.signature import KeyPair, SignatureScheme
from repro.perf.config import perf_config, register_cache_clearer

__all__ = [
    "SchnorrSignature",
    "SchnorrVerifyKey",
    "SchnorrSigningKey",
    "SchnorrScheme",
    "scheme_for_group",
]

_CHALLENGE_TAG = "repro/schnorr/challenge"
_BATCH_TAG = "repro/schnorr/batch"


@dataclass(frozen=True)
class SchnorrVerifyKey:
    """Public key ``y = g^x``."""

    y: int


@dataclass(frozen=True)
class SchnorrSigningKey:
    """Secret exponent ``x`` plus the matching public key (kept for
    convenience so signers do not need to recompute ``g^x``)."""

    x: int
    y: int


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature ``(R, s)`` with ``g^s = R * y^e``, ``e = H(R, y, m)``."""

    commitment: int  # R = g^k
    response: int  # s = k + e*x mod q


@lru_cache(maxsize=16384)
def _cached_challenge(q: int, commitment: int, y: int, message: bytes) -> int:
    return hash_to_int(_CHALLENGE_TAG, q, commitment, y, message)


register_cache_clearer(_cached_challenge.cache_clear)


class SchnorrScheme(SignatureScheme):
    """Schnorr signatures; see module docstring.

    Args:
        group: the Schnorr group to operate in (defaults to the fast
            ``toy64`` test group; pass ``named_group("toy512")`` or a
            generated group for realistic sizes).
    """

    name = "schnorr"

    def __init__(self, group: SchnorrGroup | None = None) -> None:
        self.group = group or named_group("toy64")

    def key_repr(self, verify_key: SchnorrVerifyKey) -> tuple:
        if not isinstance(verify_key, SchnorrVerifyKey):
            raise TypeError("not a Schnorr verify key")
        return ("schnorr", self.group.p, verify_key.y)

    def generate(self, rng: random.Random) -> KeyPair:
        x = self.group.random_scalar(rng)
        y = self.group.base_power(x)
        return KeyPair(SchnorrVerifyKey(y=y), SchnorrSigningKey(x=x, y=y))

    def challenge(self, commitment: int, y: int, message: bytes) -> int:
        """Fiat--Shamir challenge ``e = H(R, y, m) mod q``.

        Exposed publicly because the threshold scheme computes the same
        challenge when assembling partial signatures.  Memoized under the
        exact inputs when the perf layer is on (the threshold protocol
        recomputes the same challenge once per partial signature).
        """
        cfg = perf_config()
        if cfg.enabled and cfg.challenge_cache:
            return _cached_challenge(self.group.q, commitment, y, message)
        return hash_to_int(_CHALLENGE_TAG, self.group.q, commitment, y, message)

    def sign(self, signing_key: SchnorrSigningKey, message: bytes) -> SchnorrSignature:
        # Derandomized nonce (RFC-6979 style): hash of key and message.
        # Keeps the simulator deterministic and avoids nonce-reuse pitfalls.
        k = hash_to_int("repro/schnorr/nonce", self.group.q, signing_key.x, message)
        if k == 0:
            k = 1
        commitment = self.group.base_power(k)
        e = self.challenge(commitment, signing_key.y, message)
        s = (k + e * signing_key.x) % self.group.q
        return SchnorrSignature(commitment=commitment, response=s)

    def _well_formed(self, verify_key: object, signature: object) -> bool:
        """The structural part of verification (types, subgroup
        membership, response range) — shared by :meth:`verify` and
        :meth:`batch_verify` so both reject exactly the same garbage."""
        if not isinstance(signature, SchnorrSignature):
            return False
        if not isinstance(verify_key, SchnorrVerifyKey):
            return False
        if not self.group.is_member(signature.commitment):
            return False
        if not self.group.is_member(verify_key.y):
            return False
        if not (0 <= signature.response < self.group.q):
            return False
        return True

    def verify(self, verify_key: SchnorrVerifyKey, message: bytes, signature: object) -> bool:
        if not self._well_formed(verify_key, signature):
            return False
        e = self.challenge(signature.commitment, verify_key.y, message)
        lhs = self.group.base_power(signature.response)
        rhs = self.group.multiply(
            signature.commitment, self.group.fixed_power(verify_key.y, e)
        )
        return lhs == rhs

    def batch_verify(
        self, items: Sequence[tuple[SchnorrVerifyKey, bytes, object]]
    ) -> bool:
        """Check many ``(verify_key, message, signature)`` triples with
        one random-linear-combination equation.

        Draws coefficients ``c_i ∈ [1, q)`` by Fiat–Shamir from a hash of
        the *whole batch* (keys, commitments, responses and messages), so
        the check is deterministic — replays reproduce it bit-for-bit —
        while an adversary cannot choose signatures after the
        coefficients are fixed.  The verified equation is

            g^(Σ c_i·s_i)  ==  Π R_i^{c_i} · Π y^{Σ_{i: y_i=y} c_i·e_i}

        (exponents of shared keys are aggregated, so a flood of
        certificates under the one PDS key ``v_cert`` costs a single
        ``y``-exponentiation for the whole batch).  Returns True iff
        every signature in the batch verifies, up to the standard
        ``1/q`` soundness error of batch verification; a False verdict
        says *at least one* item is bad — callers fall back to
        individual verification to attribute blame (see
        :func:`repro.core.certify.ver_cert_many`).
        """
        if not items:
            return True
        group = self.group
        q = group.q
        for verify_key, _message, signature in items:
            if not self._well_formed(verify_key, signature):
                return False
        transcript = tagged_hash(
            _BATCH_TAG,
            *(
                encode_for_hash(
                    (verify_key.y, signature.commitment, signature.response)
                )
                + message
                for verify_key, message, signature in items
            ),
        )
        s_total = 0
        commitment_part = group.identity
        key_exponents: dict[int, int] = {}
        for index, (verify_key, message, signature) in enumerate(items):
            c = 1 + hash_to_int(_BATCH_TAG, q - 1, transcript, index)
            e = self.challenge(signature.commitment, verify_key.y, message)
            s_total = (s_total + c * signature.response) % q
            commitment_part = group.multiply(
                commitment_part, group.power(signature.commitment, c)
            )
            key_exponents[verify_key.y] = (key_exponents.get(verify_key.y, 0) + c * e) % q
        rhs = commitment_part
        for y, exponent in key_exponents.items():
            rhs = group.multiply(rhs, group.fixed_power(y, exponent))
        return group.base_power(s_total) == rhs


@lru_cache(maxsize=64)
def scheme_for_group(group: SchnorrGroup) -> SchnorrScheme:
    """One shared :class:`SchnorrScheme` per group.

    The scheme object is stateless, but hot paths (``verify_pds_signature``
    is called for every certificate check) used to construct a fresh one
    per call; this memo makes that free.
    """
    return SchnorrScheme(group)
