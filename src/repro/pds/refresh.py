"""The PDS refresh protocol ``Rfr``: proactive share renewal + recovery.

Run during every refreshment phase (the paper's §3.2 "Refreshment" and the
share-renewal technique of Herzberg et al. [24] that Theorem 13's generic
construction relies on).  Three intertwined sub-protocols, pipelined over
five transport steps:

**Commitment sync** — a node recovering from a break-in cannot trust its
RAM: its copy of the Feldman commitment (and even its share) may have been
corrupted.  Every node sends its current commitment to everyone; each node
adopts the majority commitment among those whose constant term matches the
unchanging public key (in the UL construction that key sits in ROM, which
is the paper's §1.3 trust bootstrap).

**Share recovery** — a node whose share fails verification against the
synced commitment broadcasts a recovery request.  Every intact helper
``k`` deals a *blinding polynomial* ``b`` of degree ``t`` with
``b(j+1) = 0`` (``j`` the requester), distributes its sub-shares, and then
sends the requester ``v_k = x_k + Σ b_d(k+1)``.  Any ``t + 1`` consistent,
commitment-verified values interpolate (at the requester's own index) to
the lost share ``x_j`` — while each individual helper's share stays hidden
behind the blinding (Herzberg et al.'s recovery).

**Renewal** — every node deals a Feldman-verified sharing of *zero*; after
an ack round fixes the qualified set, each node adds the qualified
sub-shares to its share and multiplies the corresponding commitments.
The secret is unchanged, every share is re-randomized, and the old share
is **erased** (§6: a node that skips the erasure would hand its next
intruder last unit's share).

Step schedule (Δ = transport delay, offsets from the phase start):
``0`` sync + zero-deal → ``Δ`` adopt/complain + zero-ack →
``2Δ`` blind-deal + zero-reveal → ``3Δ`` help → ``4Δ`` recover + install.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.feldman import FeldmanCommitment, FeldmanDealer, verify_shares_batch
from repro.crypto.hashing import encode_for_hash, tagged_hash
from repro.crypto.shamir import Share
from repro.pds.keys import PdsNodeState
from repro.pds.transport import Transport
from repro.perf.config import perf_config
from repro.perf.volume import responder_sample
from repro.sim.node import NodeContext

__all__ = ["RefreshService"]

_COMMIT_TAG = "repro/rfr/commit"


def _commit_hash(elements: tuple[int, ...]) -> bytes:
    return tagged_hash(_COMMIT_TAG, encode_for_hash(tuple(elements)))


@dataclass
class _ZeroDealing:
    commitment: FeldmanCommitment
    my_share_value: int | None


@dataclass
class _Phase:
    unit: int
    start_round: int
    sync_sent: bool = False
    synced: FeldmanCommitment | None = None
    sync_votes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    need_recovery: bool = False
    requesters: set[int] = field(default_factory=set)
    #: requesters whose recovery already failed once under sampled help —
    #: their requests get full-fan-out treatment (volume layer)
    escalated: set[int] = field(default_factory=set)
    zero_dealings: dict[int, _ZeroDealing] = field(default_factory=dict)
    zero_acks: dict[int, dict[int, bytes]] = field(default_factory=dict)
    my_zero_shares: list[int] | None = None
    # blinding state, per requester j: dealer -> (commitment, my sub-share)
    blinds: dict[int, dict[int, tuple[FeldmanCommitment, int]]] = field(default_factory=dict)
    helped: bool = False
    # received help values: (blind-set, combined-elements) -> list[(x, v)]
    helps: dict[tuple, list[tuple[int, int]]] = field(default_factory=dict)
    installed: bool = False
    outcome: str | None = None  # "ok" | "failed"


class RefreshService:
    """Drives one refresh phase at a time over a transport.

    Owner contract: call :meth:`on_round` every round (after
    ``transport.begin_round``); call :meth:`begin` at the first round of
    each refreshment phase.  Read :meth:`events` for completions.
    """

    def __init__(self, state: PdsNodeState, transport: Transport) -> None:
        self.state = state
        self.transport = transport
        self._phase: _Phase | None = None
        self._events: list[tuple[str, int]] = []
        self._completed_start: int | None = None
        #: blame record: ``(unit, dealer)`` for every zero-dealing received
        #: from ``dealer`` that this node refused to ack (bad share, wrong
        #: degree, or non-zero constant).  Identical with the perf layer on
        #: or off — the batch verifier falls back to per-dealer checks on
        #: failure, so attribution never changes.
        self.rejected_dealers: set[tuple[int, int]] = set()
        #: when True (default), a refresh self-starts at the first round of
        #: every refreshment phase; ULS turns this off and calls begin()
        #: itself once Part (I) has finished
        self.auto_start = True
        # unit whose sampled-help recovery failed; the next request
        # escalates to full fan-out (volume layer, deterministic fallback)
        self._escalate_from_unit: int | None = None

    @property
    def rounds_required(self) -> int:
        """Rounds a refresh phase must span for this transport."""
        return 4 * self.transport.delay + 1

    def begin(self, ctx: NodeContext, unit: int) -> None:
        """Start the refresh for time unit ``unit`` (phase-start round).

        Normally implicit: :meth:`on_round` self-starts whenever it runs
        during a refreshment phase, anchored at the phase's first round —
        so a node that was broken at the phase boundary and resumes one or
        two rounds in still joins the same phase (a *late joiner*: it
        skips the steps whose rounds passed, which the reveal machinery
        compensates for).

        Performs step 0 (sync + zero-deal) immediately, so ``begin`` may
        be called after this round's :meth:`on_round` already ran (the ULS
        Part (II) hand-off does exactly that)."""
        self._phase = _Phase(unit=unit, start_round=ctx.info.round)
        self._send_sync_and_zero_deal(ctx, self._phase)

    def events(self) -> list[tuple[str, int]]:
        """Completed refreshes this round: ``("ok"|"failed", unit)``."""
        return list(self._events)

    # -- round processing ----------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        self._events = []
        self._autostart(ctx)
        self._ingest(ctx)
        phase = self._phase
        if phase is None or phase.installed:
            return
        delay = self.transport.delay
        offset = ctx.info.round - phase.start_round
        if offset == 0:
            self._send_sync_and_zero_deal(ctx, phase)
        elif offset == delay:
            self._adopt_commitment_and_complain(ctx, phase)
            self._send_zero_acks(ctx, phase)
        elif offset == 2 * delay:
            self._send_blinds(ctx, phase)
            self._send_zero_reveals(ctx, phase)
        elif offset == 3 * delay:
            self._send_helps(ctx, phase)
        elif offset >= 4 * delay:
            self._finish(ctx, phase)

    def _autostart(self, ctx: NodeContext) -> None:
        from repro.sim.clock import Phase as ClockPhase

        if not self.auto_start or ctx.info.phase is not ClockPhase.REFRESH:
            return
        phase_start = ctx.info.round - ctx.info.index_in_phase
        if self._completed_start == phase_start:
            return
        if self._phase is None or self._phase.start_round != phase_start:
            self._phase = _Phase(unit=ctx.info.time_unit, start_round=phase_start)

    # -- inbound -----------------------------------------------------------------

    def _ingest(self, ctx: NodeContext) -> None:
        phase = self._phase
        if phase is None:
            return
        # Consecutive rf-zdeal messages are collected into one run and
        # verified as a batch (one RLC multi-exponentiation instead of one
        # share check per dealer).  The run is flushed before any other
        # message kind is handled, so every cross-handler ordering effect
        # (e.g. a reveal racing a delayed dealing from the same dealer) is
        # exactly what per-message processing would have produced.
        zdeal_run: list[tuple[int, tuple]] = []
        for accepted in self.transport.accepted_view():
            body = accepted.body
            if not isinstance(body, tuple) or len(body) < 2:
                continue
            kind = body[0]
            if kind == "rf-zdeal":
                zdeal_run.append((accepted.sender, body))
                continue
            if zdeal_run:
                self._on_zero_deals(zdeal_run, phase)
                zdeal_run = []
            if kind == "rf-sync":
                self._on_sync(accepted.sender, body, phase)
            elif kind == "rf-zack":
                self._on_zero_ack(accepted.sender, body, phase)
            elif kind == "rf-need":
                self._on_need(accepted.sender, body, phase)
            elif kind == "rf-blind":
                self._on_blind(ctx, accepted.sender, body, phase)
            elif kind == "rf-zreveal":
                self._on_zero_reveal(accepted.sender, body, phase)
            elif kind == "rf-help":
                self._on_help(accepted.sender, body, phase)
        if zdeal_run:
            self._on_zero_deals(zdeal_run, phase)

    def _on_sync(self, sender: int, body: tuple, phase: _Phase) -> None:
        try:
            _, unit, elements = body
        except ValueError:
            return
        if unit == phase.unit:
            phase.sync_votes.setdefault(sender, tuple(elements))

    def _on_zero_deals(self, run: list[tuple[int, tuple]], phase: _Phase) -> None:
        """Handle a run of zero-dealings; first message per dealer wins.

        Structural checks (unit, dedup, zero constant, degree bound, share
        type) happen per message in arrival order; the surviving share
        checks go through :func:`verify_shares_batch`, whose per-item
        fallback keeps verdicts — and therefore ack lists and blame —
        identical to checking each dealer individually.
        """
        group = self.state.public.group
        to_verify: list[tuple[int, FeldmanCommitment, int]] = []
        for dealer, body in run:
            try:
                _, unit, elements, share_value = body
            except ValueError:
                continue
            if unit != phase.unit or dealer in phase.zero_dealings:
                continue
            if any(dealer == queued for queued, _, _ in to_verify):
                continue  # an earlier dealing from this dealer is already queued
            commitment = FeldmanCommitment(elements=tuple(elements))
            if commitment.public_constant != group.identity:
                self.rejected_dealers.add((phase.unit, dealer))
                continue  # not a sharing of zero: reject outright
            if commitment.degree_bound != self.state.public.threshold:
                self.rejected_dealers.add((phase.unit, dealer))
                continue
            if not isinstance(share_value, int):
                self.rejected_dealers.add((phase.unit, dealer))
                phase.zero_dealings[dealer] = _ZeroDealing(
                    commitment=commitment, my_share_value=None
                )
                continue
            to_verify.append((dealer, commitment, share_value))
        verdicts = verify_shares_batch(
            group,
            [
                (commitment, Share(x=self.state.share_index, value=value))
                for _, commitment, value in to_verify
            ],
        )
        for (dealer, commitment, value), valid in zip(to_verify, verdicts):
            if not valid:
                self.rejected_dealers.add((phase.unit, dealer))
            phase.zero_dealings[dealer] = _ZeroDealing(
                commitment=commitment, my_share_value=value if valid else None
            )

    def _on_zero_ack(self, acker: int, body: tuple, phase: _Phase) -> None:
        try:
            _, unit, ack_list = body
        except ValueError:
            return
        if unit != phase.unit:
            return
        for item in ack_list:
            try:
                dealer, commit_hash = item
            except (TypeError, ValueError):
                continue
            phase.zero_acks.setdefault(dealer, {}).setdefault(acker, commit_hash)

    def _on_need(self, sender: int, body: tuple, phase: _Phase) -> None:
        if body[1] == phase.unit:
            phase.requesters.add(sender)
            if len(body) >= 3 and body[2] == "esc":
                phase.escalated.add(sender)

    def _on_blind(self, ctx: NodeContext, dealer: int, body: tuple, phase: _Phase) -> None:
        try:
            _, unit, requester, elements, share_value = body
        except ValueError:
            return
        if unit != phase.unit or not isinstance(share_value, int):
            return
        commitment = FeldmanCommitment(elements=tuple(elements))
        group = self.state.public.group
        # blinding polynomials have degree exactly t (combine() requires it)
        if commitment.degree_bound != self.state.public.threshold:
            return
        # a blinding polynomial must vanish at the requester's index
        if commitment.share_image(group, requester + 1) != group.identity:
            return
        if not commitment.verify_share(group, Share(x=self.state.share_index, value=share_value)):
            return
        phase.blinds.setdefault(requester, {}).setdefault(dealer, (commitment, share_value))

    def _on_zero_reveal(self, dealer: int, body: tuple, phase: _Phase) -> None:
        try:
            _, unit, revealed, elements = body
        except ValueError:
            return
        if unit != phase.unit:
            return
        commitment = FeldmanCommitment(elements=tuple(elements))
        group = self.state.public.group
        if commitment.public_constant != group.identity:
            return
        existing = phase.zero_dealings.get(dealer)
        if existing is not None and existing.my_share_value is not None:
            return
        for item in revealed:
            try:
                x, value = item
            except (TypeError, ValueError):
                continue
            if x == self.state.share_index and isinstance(value, int):
                if commitment.verify_share(group, Share(x=x, value=value)):
                    phase.zero_dealings[dealer] = _ZeroDealing(
                        commitment=commitment, my_share_value=value
                    )

    def _on_help(self, sender: int, body: tuple, phase: _Phase) -> None:
        try:
            _, unit, helper_index, value, blind_set, combined_elements = body
        except ValueError:
            return
        if unit != phase.unit or not phase.need_recovery or not isinstance(value, int):
            return
        group = self.state.public.group
        combined = FeldmanCommitment(elements=tuple(combined_elements))
        # the combined polynomial must agree with the key sharing at my index
        if phase.synced is not None:
            mine = phase.synced.share_image(group, self.state.share_index)
            if combined.share_image(group, self.state.share_index) != mine:
                return
        # and the helper's value must lie on the combined polynomial
        if not combined.verify_share(group, Share(x=helper_index, value=value)):
            return
        key = (tuple(blind_set), tuple(combined_elements))
        bucket = phase.helps.setdefault(key, [])
        if all(x != helper_index for x, _ in bucket):
            bucket.append((helper_index, value))

    # -- outbound steps -------------------------------------------------------------

    def _send_sync_and_zero_deal(self, ctx: NodeContext, phase: _Phase) -> None:
        if phase.sync_sent:
            return
        phase.sync_sent = True
        elements = tuple(self.state.key_commitment.elements)
        phase.sync_votes[ctx.node_id] = elements
        self.transport.send_to_all(ctx, ("rf-sync", phase.unit, elements))

        public = self.state.public
        dealer = FeldmanDealer(public.group, n=public.n, threshold=public.threshold)
        dealing = dealer.deal_zero(ctx.rng)
        phase.my_zero_shares = [share.value for share in dealing.shares]
        phase.zero_dealings[ctx.node_id] = _ZeroDealing(
            commitment=dealing.commitment,
            my_share_value=dealing.shares[self.state.share_index - 1].value,
        )
        for receiver in range(public.n):
            if receiver == ctx.node_id:
                continue
            self.transport.send(
                ctx,
                receiver,
                (
                    "rf-zdeal",
                    phase.unit,
                    tuple(dealing.commitment.elements),
                    dealing.shares[receiver].value,
                ),
            )

    def _adopt_commitment_and_complain(self, ctx: NodeContext, phase: _Phase) -> None:
        group = self.state.public.group
        anchor = self._anchor_key(ctx)
        counts: dict[tuple[int, ...], int] = {}
        for elements in phase.sync_votes.values():
            counts[elements] = counts.get(elements, 0) + 1
        best: tuple[int, ...] | None = None
        for elements, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            if count < self.state.public.threshold + 1:
                continue
            if len(elements) != self.state.public.threshold + 1:
                continue  # a key commitment always has degree exactly t
            candidate = FeldmanCommitment(elements=elements)
            if anchor is not None and candidate.public_constant != anchor:
                continue
            best = elements
            break
        if best is not None:
            phase.synced = FeldmanCommitment(elements=best)
            self.state.key_commitment = phase.synced
        else:
            phase.synced = self.state.key_commitment  # fall back to own copy
        if not self.state.share_is_valid():
            phase.need_recovery = True
            phase.requesters.add(ctx.node_id)
            if (
                perf_config().flag("msg_volume")
                and self._escalate_from_unit is not None
            ):
                # a previous sampled-help recovery came up short: demand
                # full fan-out this time (the layer-off behaviour)
                phase.escalated.add(ctx.node_id)
                self.transport.send_to_all(ctx, ("rf-need", phase.unit, "esc"))
            else:
                self.transport.send_to_all(ctx, ("rf-need", phase.unit))

    def _anchor_key(self, ctx: NodeContext) -> int | None:
        """The unchanging public key: from ROM if present (UL model),
        else from the state (AL model, where RAM is trusted enough)."""
        rom_value = ctx.rom.get("pds_public_key")
        if rom_value is not None:
            return rom_value
        return self.state.public.public_key

    def _send_zero_acks(self, ctx: NodeContext, phase: _Phase) -> None:
        ack_list = []
        for dealer, dealing in phase.zero_dealings.items():
            if dealing.my_share_value is not None:
                commit_hash = _commit_hash(dealing.commitment.elements)
                ack_list.append((dealer, commit_hash))
                phase.zero_acks.setdefault(dealer, {})[ctx.node_id] = commit_hash
        self.transport.send_to_all(ctx, ("rf-zack", phase.unit, tuple(ack_list)))

    def _send_blinds(self, ctx: NodeContext, phase: _Phase) -> None:
        if phase.need_recovery or not self.state.share_is_valid():
            return  # cannot help others while own share is suspect
        public = self.state.public
        field = public.group.scalar_field
        sampled = perf_config().flag("msg_volume")
        for requester in sorted(phase.requesters):
            if requester == ctx.node_id:
                continue
            # volume layer: only the 2t+1 seed-deterministic responders
            # deal blinds for this requester, and sub-shares only travel
            # between them (non-sampled nodes end up with empty blind maps
            # and so send no help — the sample self-selects from public
            # inputs).  2t+1 holders still yield t+1 honest consistent
            # helps under t corruptions; an escalated request (a requester
            # whose sampled recovery already failed once) gets the full
            # fan-out of the layer-off path.
            receivers: tuple[int, ...] | None = None
            if sampled and requester not in phase.escalated:
                sample = responder_sample(
                    phase.unit, requester, public.n, public.threshold
                )
                if ctx.node_id not in sample:
                    continue
                receivers = sample
            target = requester + 1
            # b(z) = sum_{k=1..t} a_k (z^k - target^k): degree t, b(target) = 0
            coefficients = [0] * (public.threshold + 1)
            constant = 0
            for k in range(1, public.threshold + 1):
                a_k = field.random_element(ctx.rng)
                coefficients[k] = a_k
                constant = (constant - a_k * pow(target, k, field.order)) % field.order
            coefficients[0] = constant
            from repro.crypto.field import Polynomial

            poly = Polynomial(field, coefficients)
            dealer = FeldmanDealer(public.group, n=public.n, threshold=public.threshold)
            commitment = dealer.commit(poly)
            my_subshare = poly.evaluate(self.state.share_index)
            phase.blinds.setdefault(requester, {}).setdefault(
                ctx.node_id, (commitment, my_subshare)
            )
            for receiver in receivers if receivers is not None else range(public.n):
                if receiver == ctx.node_id:
                    continue
                self.transport.send(
                    ctx,
                    receiver,
                    (
                        "rf-blind",
                        phase.unit,
                        requester,
                        tuple(commitment.elements),
                        poly.evaluate(receiver + 1),
                    ),
                )

    def _send_zero_reveals(self, ctx: NodeContext, phase: _Phase) -> None:
        if phase.my_zero_shares is None:
            return
        my_acks = phase.zero_acks.get(ctx.node_id, {})
        missing = [
            (j + 1, phase.my_zero_shares[j])
            for j in range(self.state.public.n)
            if j != ctx.node_id and j not in my_acks
        ]
        if not missing:
            return
        commitment = phase.zero_dealings[ctx.node_id].commitment
        self.transport.send_to_all(
            ctx, ("rf-zreveal", phase.unit, tuple(missing), tuple(commitment.elements))
        )

    def _send_helps(self, ctx: NodeContext, phase: _Phase) -> None:
        if phase.helped or phase.need_recovery or not self.state.share_is_valid():
            return
        phase.helped = True
        group = self.state.public.group
        q = group.q
        for requester in sorted(phase.requesters):
            if requester == ctx.node_id:
                continue
            blinds = phase.blinds.get(requester, {})
            if not blinds:
                continue
            blind_set = tuple(sorted(blinds))
            combined = phase.synced or self.state.key_commitment
            total = self.state.share.value
            for dealer in blind_set:
                commitment, subshare = blinds[dealer]
                combined = combined.combine(group, commitment)
                total = (total + subshare) % q
            self.transport.send(
                ctx,
                requester,
                (
                    "rf-help",
                    phase.unit,
                    self.state.share_index,
                    total,
                    blind_set,
                    tuple(combined.elements),
                ),
            )

    # -- completion ---------------------------------------------------------------

    def _finish(self, ctx: NodeContext, phase: _Phase) -> None:
        phase.installed = True
        group = self.state.public.group
        field = group.scalar_field
        needed = self.state.public.threshold + 1

        # 1. recover the old share if needed
        if phase.need_recovery:
            recovered = False
            for points in phase.helps.values():
                if len(points) < needed:
                    continue
                value = field.interpolate_at(self.state.share_index, sorted(points)[:needed])
                candidate = Share(x=self.state.share_index, value=value)
                base = phase.synced or self.state.key_commitment
                if base.verify_share(group, candidate):
                    self.state.share = candidate
                    self.state.key_commitment = base
                    recovered = True
                    break
            # deterministic fallback of sampled help: a recovery that came
            # up short marks the next unit's request for full fan-out
            self._escalate_from_unit = None if recovered else phase.unit

        # 2. fix the qualified zero-dealings
        threshold = self.state.public.n - self.state.public.threshold
        qual: list[int] = []
        for dealer, acks in phase.zero_acks.items():
            counts: dict[bytes, int] = {}
            for commit_hash in acks.values():
                counts[commit_hash] = counts.get(commit_hash, 0) + 1
            if any(count >= threshold for count in counts.values()):
                qual.append(dealer)
        qual.sort()

        # 3. apply the renewal if we hold every qualified sub-share
        usable = all(
            dealer in phase.zero_dealings
            and phase.zero_dealings[dealer].my_share_value is not None
            for dealer in qual
        )
        if qual and usable and self.state.share_is_valid():
            new_value = self.state.share.value
            new_commitment = phase.synced or self.state.key_commitment
            for dealer in qual:
                dealing = phase.zero_dealings[dealer]
                new_value = (new_value + dealing.my_share_value) % group.q
                new_commitment = new_commitment.combine(group, dealing.commitment)
            self.state.install_share(
                Share(x=self.state.share_index, value=new_value),
                new_commitment,
                unit=phase.unit,
            )
            phase.my_zero_shares = None  # erase dealt sub-shares (§6)
            phase.outcome = "ok"
        else:
            # keep whatever commitment consensus we reached; share may be bad
            phase.outcome = "failed"
            self.state.unit = phase.unit
        self._events.append((phase.outcome, phase.unit))
        self._completed_start = phase.start_round
        self._phase = None
