"""Tests for ROM semantics and envelopes."""

import pytest

from repro.sim.messages import Envelope
from repro.sim.rom import Rom, RomViolation


def test_rom_write_read():
    rom = Rom()
    rom.write("v_cert", 42)
    assert rom.read("v_cert") == 42
    assert "v_cert" in rom
    assert rom.get("other", "dflt") == "dflt"


def test_rom_freeze_blocks_writes():
    rom = Rom()
    rom.write("a", 1)
    rom.freeze()
    assert rom.frozen
    with pytest.raises(RomViolation):
        rom.write("b", 2)
    # reads still fine, existing data intact
    assert rom.read("a") == 1


def test_rom_freeze_idempotent():
    rom = Rom()
    rom.freeze()
    rom.freeze()
    assert rom.frozen


def test_rom_keys():
    rom = Rom()
    rom.write("x", 1)
    rom.write("y", 2)
    assert sorted(rom.keys()) == ["x", "y"]


def test_envelope_redirect_and_payload():
    env = Envelope(sender=0, receiver=1, channel="c", payload=("p",), round_sent=3)
    redirected = env.redirect(2)
    assert redirected.receiver == 2
    assert redirected.sender == 0
    modified = env.with_payload(("q",))
    assert modified.payload == ("q",)
    assert env.payload == ("p",)  # original untouched
    assert "0->1" in env.describe()
