"""E4 — Proposition 31: (t,t)-awareness of the authenticator.

Two attack flavors against Λ(π), bracketing what the paper promises:

- **stolen-key cut-off** (§1.1): the forgeries use keys stolen in a
  break-in; they expire at the next refresh, so impersonation is
  *prevented* (0 forged messages accepted) and the victim alerts;
- **fresh-key cut-off** (§2.3's "inevitable" case, no break-in at all):
  the adversary gets its own key certified in the silent victim's name;
  impersonation *succeeds* — and the victim still alerts in every such
  unit.  Awareness recall must be 1.0 in both; benign runs provide the
  false-alert control (must be 0).
"""

import pytest

from repro.adversary.impersonation import FreshKeyImpersonationAdversary, UlsImpersonator
from repro.adversary.strategies import CutOffAdversary
from repro.core.authenticator import compile_protocol
from repro.core.uls import build_uls_states, uls_schedule
from repro.core.views import impersonations
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, emit, format_table

N, T = 5, 2
UNITS = 4


class ChatterProtocol(NodeProgram):
    """π: every node broadcasts a stamped message each normal round."""

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.NORMAL:
            ctx.broadcast("chat", ("hello", self.node_id, ctx.info.round))


def run_attack(victim: int, seed: int):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = compile_protocol([ChatterProtocol() for _ in range(N)], states, SCHEME, keys)
    impersonator = UlsImpersonator(victim=victim)
    adversary = CutOffAdversary(victim=victim, break_unit=1, impersonator=impersonator)
    runner = ULRunner(programs, adversary, uls_schedule(), s=T, seed=seed)
    execution = runner.run(units=UNITS)
    cut_units = list(range(2, UNITS))  # fully cut-off units
    alerted = sum(1 for u in cut_units if execution.alerts_in_unit(victim, u) >= 1)
    forged = sum(len(impersonations(execution, victim, u)) for u in cut_units)
    return len(cut_units), alerted, forged, len(impersonator.attempts)


def run_fresh_key_attack(victim: int, seed: int):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = compile_protocol([ChatterProtocol() for _ in range(N)], states, SCHEME, keys)
    adversary = FreshKeyImpersonationAdversary(victim=victim, scheme=SCHEME, from_unit=1)
    runner = ULRunner(programs, adversary, uls_schedule(), s=T, seed=seed)
    execution = runner.run(units=UNITS)
    cut_units = list(range(1, UNITS))
    alerted = sum(1 for u in cut_units if execution.alerts_in_unit(victim, u) >= 1)
    forged = sum(len(impersonations(execution, victim, u)) for u in cut_units)
    return len(cut_units), alerted, forged, adversary.forgeries_injected


def run_benign(seed: int):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = compile_protocol([ChatterProtocol() for _ in range(N)], states, SCHEME, keys)
    runner = ULRunner(programs, PassiveAdversary(), uls_schedule(), s=T, seed=seed)
    execution = runner.run(units=UNITS)
    false_alerts = sum(
        execution.alerts_in_unit(i, u) for i in range(N) for u in range(UNITS)
    )
    return false_alerts


@pytest.fixture(scope="module")
def table():
    rows = []
    total_cut = total_alerted = total_forged = 0
    for victim in range(N):
        for seed in (0, 1):
            cut, alerted, forged, attempts = run_attack(victim, seed)
            total_cut += cut
            total_alerted += alerted
            total_forged += forged
            rows.append(("stolen-key", victim, seed, cut, alerted, forged, attempts))
            assert attempts > 0
    assert total_alerted == total_cut, "awareness recall must be 1.0"
    assert total_forged == 0, "stolen keys must expire at the refresh"

    fresh_cut = fresh_alerted = 0
    for victim in (0, 2, 4):
        cut, alerted, forged, attempts = run_fresh_key_attack(victim, seed=1)
        fresh_cut += cut
        fresh_alerted += alerted
        rows.append(("fresh-key", victim, 1, cut, alerted, forged, attempts))
        assert forged > 0, "the inevitable impersonation must succeed"
    assert fresh_alerted == fresh_cut, "awareness recall must be 1.0 even when " \
                                       "impersonation succeeds"

    false_alerts = sum(run_benign(seed) for seed in (0, 1))
    rows.append(("benign", "-", "0-1", 0, false_alerts, 0, 0))
    assert false_alerts == 0
    return rows


def test_e4_awareness(table, benchmark):
    emit("e4_awareness", format_table(
        "E4  Awareness (Prop. 31): recall must be 1.0 — impersonation is "
        "prevented against stolen keys and merely detected (inevitably) "
        "against certified fresh keys",
        ["attack", "victim", "seed", "cut-off units", "units alerted",
         "forged accepted", "forge attempts"],
        table,
    ))
    benchmark(lambda: run_attack(0, 42))
