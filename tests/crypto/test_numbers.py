"""Tests for repro.crypto.numbers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numbers import (
    crt_pair,
    egcd,
    is_probable_prime,
    mod_inverse,
    product,
    random_prime,
    random_safe_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 997, 7919, 104729, 2**61 - 1, 2**89 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 100, 561, 41041, 825265, 2**61 + 1, 7919 * 104729]
# Carmichael numbers: strong-pseudoprime traps for naive Fermat tests.
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_are_prime(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_known_composites_are_composite(c):
    assert not is_probable_prime(c)


@pytest.mark.parametrize("c", CARMICHAELS)
def test_carmichael_numbers_rejected(c):
    assert not is_probable_prime(c)


def test_negative_numbers_are_not_prime():
    assert not is_probable_prime(-7)


def test_random_prime_has_requested_bits():
    rng = random.Random(1)
    for bits in (8, 16, 32, 64, 128):
        p = random_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_random_prime_rejects_tiny_bits():
    with pytest.raises(ValueError):
        random_prime(1, random.Random(0))


def test_random_safe_prime_structure():
    rng = random.Random(2)
    p, q = random_safe_prime(32, rng)
    assert p == 2 * q + 1
    assert is_probable_prime(p)
    assert is_probable_prime(q)


def test_egcd_identity():
    g, x, y = egcd(240, 46)
    assert g == 2
    assert 240 * x + 46 * y == g


@given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
@settings(max_examples=200)
def test_egcd_bezout_property(a, b):
    g, x, y = egcd(a, b)
    assert a * x + b * y == g
    assert a % g == 0 and b % g == 0


def test_mod_inverse_round_trip():
    p = 104729
    for a in (1, 2, 3, 52364, 104728):
        inv = mod_inverse(a, p)
        assert (a * inv) % p == 1


def test_mod_inverse_raises_when_not_coprime():
    with pytest.raises(ZeroDivisionError):
        mod_inverse(6, 9)


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
@settings(max_examples=100)
def test_crt_pair_solves_both_congruences(r1, r2):
    m1, m2 = 101, 103
    x = crt_pair(r1 % m1, m1, r2 % m2, m2)
    assert x % m1 == r1 % m1
    assert x % m2 == r2 % m2
    assert 0 <= x < m1 * m2


def test_crt_pair_rejects_non_coprime_moduli():
    with pytest.raises(ValueError):
        crt_pair(1, 6, 2, 9)


def test_product():
    assert product([]) == 1
    assert product([3, 5, 7]) == 105
