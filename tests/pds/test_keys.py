"""Tests for PDS key material and initial dealing."""

import random

import pytest

from repro.crypto.group import named_group
from repro.crypto.shamir import Share, reconstruct_secret
from repro.pds.keys import PdsPublic, deal_initial_states

GROUP = named_group("toy64")


def test_public_requires_honest_majority():
    with pytest.raises(ValueError):
        PdsPublic(group=GROUP, public_key=GROUP.g, n=4, threshold=2)  # needs n >= 5


def test_deal_initial_states_consistency():
    public, states = deal_initial_states(GROUP, n=5, threshold=2, rng=random.Random(1))
    assert len(states) == 5
    # all nodes share the same public data
    for state in states:
        assert state.public is public
        assert state.key_commitment == states[0].key_commitment
        assert state.share_is_valid()
    # the commitment's constant is the public key
    assert states[0].key_commitment.public_constant == public.public_key
    # t+1 shares reconstruct a secret matching the public key
    secret = reconstruct_secret(GROUP.scalar_field, [s.share for s in states[:3]])
    assert GROUP.base_power(secret) == public.public_key


def test_share_index_is_node_id_plus_one():
    _, states = deal_initial_states(GROUP, n=5, threshold=2, rng=random.Random(2))
    for i, state in enumerate(states):
        assert state.share_index == i + 1
        assert state.share.x == i + 1


def test_share_validity_detects_corruption():
    _, states = deal_initial_states(GROUP, n=5, threshold=2, rng=random.Random(3))
    state = states[0]
    assert state.share_is_valid()
    state.share = Share(x=state.share.x, value=(state.share.value + 1) % GROUP.q)
    assert not state.share_is_valid()
    state.share = None
    assert not state.share_is_valid()


def test_share_validity_detects_wrong_index():
    _, states = deal_initial_states(GROUP, n=5, threshold=2, rng=random.Random(4))
    state = states[0]
    state.share = Share(x=99, value=state.share.value)
    assert not state.share_is_valid()


def test_install_share_logs_erasure():
    _, states = deal_initial_states(GROUP, n=5, threshold=2, rng=random.Random(5))
    state = states[0]
    old = state.share
    state.install_share(Share(x=1, value=123), state.key_commitment, unit=3)
    assert state.unit == 3
    assert state.erasure_log == [(3, "refresh")]
    assert state.share != old
