"""Tests for the ideal signature process (§3.1)."""

import pytest

from repro.pds.ideal import IdealSignatureProcess


def test_validation():
    with pytest.raises(ValueError):
        IdealSignatureProcess(n=3, t=3)


def test_threshold_signing():
    ideal = IdealSignatureProcess(n=5, t=2)
    assert not ideal.sign_request(0, "m", 1)
    assert not ideal.sign_request(1, "m", 1)
    assert ideal.sign_request(2, "m", 1)  # t+1 = 3rd request signs
    assert ideal.is_signed("m", 1)


def test_duplicate_requests_do_not_count_twice():
    ideal = IdealSignatureProcess(n=5, t=2)
    for _ in range(5):
        assert not ideal.sign_request(0, "m", 1)
    assert ideal.request_count("m", 1) == 1


def test_requests_bound_to_unit():
    ideal = IdealSignatureProcess(n=5, t=1)
    ideal.sign_request(0, "m", 1)
    ideal.sign_request(1, "m", 2)  # different unit: separate record
    assert not ideal.is_signed("m", 1)
    assert not ideal.is_signed("m", 2)
    ideal.sign_request(1, "m", 1)
    assert ideal.is_signed("m", 1)


def test_outputs_follow_spec():
    ideal = IdealSignatureProcess(n=3, t=1)
    ideal.sign_request(0, "m", 1)
    ideal.sign_request(1, "m", 1)
    assert ("asked-to-sign", "m", 1) in ideal.signer_outputs[0]
    assert ("signed", "m", 1) in ideal.signer_outputs[0]
    assert ("signed", "m", 1) in ideal.signer_outputs[1]
    assert ideal.signer_outputs[2] == []


def test_verifier_silent_on_failure():
    """Remark 2: failed verifications leave no trace in the output."""
    ideal = IdealSignatureProcess(n=3, t=1)
    assert not ideal.verify("never-signed", 1)
    assert ideal.verifier_output == []
    ideal.sign_request(0, "m", 1)
    ideal.sign_request(1, "m", 1)
    assert ideal.verify("m", 1)
    assert ideal.verifier_output == [("verified", "m", 1)]


def test_broken_signer_output_suppressed():
    """Step 4: while broken, a signer's output is adversary-controlled —
    modelled as suppressed (plus the compromised/recovered markers)."""
    ideal = IdealSignatureProcess(n=3, t=1)
    ideal.break_into(0)
    ideal.sign_request(0, "m", 1)
    assert ("compromised",) in ideal.signer_outputs[0]
    assert ("asked-to-sign", "m", 1) not in ideal.signer_outputs[0]
    ideal.recover(0)
    assert ("recovered",) in ideal.signer_outputs[0]
    ideal.sign_request(0, "m2", 2)
    assert ("asked-to-sign", "m2", 2) in ideal.signer_outputs[0]


def test_break_recover_idempotent():
    ideal = IdealSignatureProcess(n=3, t=1)
    ideal.break_into(0)
    ideal.break_into(0)
    ideal.recover(0)
    ideal.recover(0)
    assert ideal.signer_outputs[0].count(("compromised",)) == 1
    assert ideal.signer_outputs[0].count(("recovered",)) == 1


def test_unknown_signer_rejected():
    ideal = IdealSignatureProcess(n=3, t=1)
    with pytest.raises(ValueError):
        ideal.sign_request(7, "m", 1)
