"""Tests for limit audits (Defs. 3, 7) and the attack strategies."""

import random

from repro.adversary.limits import audit_st_limited, audit_t_limited
from repro.adversary.strategies import (
    BreakinPlan,
    ComposedAdversary,
    InjectionFloodAdversary,
    LinkAttackAdversary,
    LinkFault,
    MobileBreakInAdversary,
    ReplayAdversary,
)
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner, ULRunner

from tests.helpers import EchoProgram

SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)
N = 5


def run_ul(adversary, units=3, s=2, seed=11):
    runner = ULRunner([EchoProgram() for _ in range(N)], adversary, SCHED, s=s, seed=seed)
    return runner.run(units=units), runner


def run_al(adversary, units=3, seed=11):
    runner = ALRunner([EchoProgram() for _ in range(N)], adversary, SCHED, seed=seed)
    return runner.run(units=units), runner


def test_passive_is_zero_limited():
    execution, _ = run_ul(PassiveAdversary())
    report = audit_st_limited(execution, 0)
    assert report.within_limits
    assert report.worst_unit_size == 0


def test_mobile_breakin_plan_respected_and_audited():
    plan = BreakinPlan(victims={1: frozenset({0, 1}), 2: frozenset({2, 3})})
    adversary = MobileBreakInAdversary(plan)
    execution, _ = run_al(adversary)
    assert execution.broken_in_unit(1) == frozenset({0, 1})
    assert execution.broken_in_unit(2) == frozenset({2, 3})
    assert audit_t_limited(execution, 2).within_limits
    report = audit_t_limited(execution, 1)
    assert not report.within_limits
    assert set(report.violations) == {1, 2}


def test_mobile_breakin_avoids_refresh_by_default():
    plan = BreakinPlan(victims={1: frozenset({0})})
    adversary = MobileBreakInAdversary(plan)
    execution, _ = run_al(adversary)
    refresh_rounds = [
        rec for rec in execution.rounds_in_unit(1) if rec.info.phase.value == "refresh"
    ]
    for rec in refresh_rounds:
        assert 0 not in rec.broken
    normal_rounds = [
        rec for rec in execution.rounds_in_unit(1) if rec.info.phase.value == "normal"
    ]
    # broken throughout the normal phase except its last round (the victim
    # is released one round early so it can take part in the next refresh)
    assert all(0 in rec.broken for rec in normal_rounds[:-1])
    assert 0 not in normal_rounds[-1].broken


def test_mobile_breakin_during_refresh_option():
    plan = BreakinPlan(victims={1: frozenset({0})}, during_refresh=True)
    adversary = MobileBreakInAdversary(plan)
    execution, _ = run_al(adversary)
    for rec in execution.rounds_in_unit(1):
        assert 0 in rec.broken


def test_mobile_breakin_steals_state():
    plan = BreakinPlan(victims={1: frozenset({2})})
    adversary = MobileBreakInAdversary(
        plan, state_snapshot=lambda program: program.secret
    )
    run_al(adversary)
    assert adversary.stolen[(1, 2)] == "initial-secret"


def test_mobile_breakin_corrupts_state():
    plan = BreakinPlan(victims={1: frozenset({2})}, corrupt_memory=True)

    def corruptor(program, rng):
        program.secret = "overwritten"

    adversary = MobileBreakInAdversary(plan, corruptor=corruptor)
    _, runner = run_al(adversary)
    assert runner.nodes[2].program.secret == "overwritten"


def test_rotating_plan_generation():
    rng = random.Random(3)
    plan = BreakinPlan.rotating(n=7, t=3, units=5, rng=rng)
    assert set(plan.victims) == {1, 2, 3, 4}
    assert plan.max_victims_per_unit() == 3
    for victims in plan.victims.values():
        assert len(victims) == 3


def test_link_attack_drop_schedule():
    fault = LinkFault(link=frozenset({0, 1}), first_round=1, last_round=3)
    execution, runner = run_ul(LinkAttackAdversary([fault]))
    program = runner.nodes[0].program
    # nothing from node 1 delivered for sends of rounds 1..3
    gaps = [rnd for rnd, sender, _ in program.received if sender == 1]
    assert set(gaps).isdisjoint({2, 3, 4})
    assert 1 in {r for r, s, _ in program.received if s == 1} or 5 in gaps or 6 in gaps


def test_link_attack_transform():
    def tamper(envelope):
        return envelope.with_payload(("tampered",))

    fault = LinkFault(link=frozenset({0, 1}), first_round=1, last_round=99, transform=tamper)
    _, runner = run_ul(LinkAttackAdversary([fault]))
    # round-0 (set-up) traffic is delivered before the adversary activates;
    # everything sent from round 1 on is tampered
    received = [p for r, s, p in runner.nodes[0].program.received if s == 1 and r >= 2]
    assert all(p == ("tampered",) for p in received)
    assert received  # something did arrive


def test_injection_flood_counts_and_limits():
    adversary = InjectionFloodAdversary(
        payload_factory=lambda claimed, receiver, rng: ("bogus", claimed),
        channel="echo",
        flood_factor=2,
    )
    execution, _ = run_ul(adversary, units=3)
    # floods at the first refresh round of units 1 and 2
    assert adversary.injected_count == 2 * 2 * N * (N - 1)
    # injection makes every link unreliable in those rounds, so everyone is
    # disconnected there: the adversary is NOT (t,t)-limited for small t...
    assert not audit_st_limited(execution, 2).within_limits
    # ...but it broke zero nodes
    assert audit_t_limited(execution, 0).within_limits


def test_replay_adversary_redelivers():
    adversary = ReplayAdversary(delay=2)
    _, runner = run_ul(adversary, units=2)
    assert adversary.replayed_count > 0
    program = runner.nodes[0].program
    payloads = [(r, p) for r, s, p in program.received if s == 1]
    # each (sender, counter) payload appears twice: original + replay
    from collections import Counter

    counts = Counter(p for _, p in payloads)
    assert any(c >= 2 for c in counts.values())


def test_composed_adversary_runs_all():
    plan = BreakinPlan(victims={1: frozenset({4})})
    breaker = MobileBreakInAdversary(plan)
    fault = LinkFault(link=frozenset({0, 1}), first_round=1, last_round=99)
    dropper = LinkAttackAdversary([fault])
    execution, runner = run_ul(ComposedAdversary([breaker, dropper]))
    assert 4 in execution.broken_in_unit(1)
    received_from_1 = [
        p for r, s, p in runner.nodes[0].program.received if s == 1 and r >= 2
    ]
    assert not received_from_1


def test_composed_adversary_needs_strategies():
    import pytest

    with pytest.raises(ValueError):
        ComposedAdversary([])
