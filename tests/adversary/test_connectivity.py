"""Tests for s-operational tracking (Definitions 4-6)."""

import pytest

from repro.adversary.connectivity import ConnectivityTracker
from repro.sim.clock import Schedule

SCHED = Schedule(setup_rounds=1, refresh_rounds=2, normal_rounds=3)


def feed(tracker, rounds):
    """rounds: list of (round_number, broken, unreliable_links)."""
    result = []
    for round_number, broken, unreliable in rounds:
        info = SCHED.info(round_number)
        result.append(
            tracker.observe_round(info, frozenset(broken), frozenset(map(frozenset, unreliable)))
        )
    return result


def all_links_to(i, n):
    return [(i, j) for j in range(n) if j != i]


def test_validation():
    with pytest.raises(ValueError):
        ConnectivityTracker(5, 0)
    with pytest.raises(ValueError):
        ConnectivityTracker(5, 6)


def test_everyone_operational_without_adversary():
    tracker = ConnectivityTracker(5, 2)
    sets = feed(tracker, [(r, [], []) for r in range(SCHED.total_rounds(2))])
    for op in sets:
        assert op == frozenset(range(5))


def test_broken_node_not_operational():
    tracker = ConnectivityTracker(5, 2)
    sets = feed(tracker, [(0, [], []), (1, [3], []), (2, [3], [])])
    assert 3 in sets[0]  # setup
    assert 3 not in sets[1]
    assert 3 not in sets[2]


def test_disconnected_accessor():
    tracker = ConnectivityTracker(5, 2)
    dead = all_links_to(0, 5)
    feed(tracker, [(0, [], []), (1, [], dead), (2, [], dead)])
    assert tracker.disconnected(frozenset()) == frozenset({0})
    # if 0 were broken instead, it would not count as disconnected
    assert tracker.disconnected(frozenset({0})) == frozenset()


def test_first_round_operational_by_definition():
    """Def. 5.1: at the first communication round of the first time unit
    the operational nodes are exactly the non-broken ones — link faults
    only start mattering from the second round."""
    tracker = ConnectivityTracker(5, 2)
    dead = all_links_to(0, 5)
    sets = feed(tracker, [(0, [], []), (1, [3], dead)])
    assert sets[1] == frozenset({0, 1, 2, 4})


def test_cutoff_node_loses_operational_status():
    tracker = ConnectivityTracker(5, 2)
    dead = all_links_to(0, 5)
    sets = feed(tracker, [(0, [], []), (1, [], dead), (2, [], dead)])
    assert 0 not in sets[2]
    assert sets[2] == frozenset({1, 2, 3, 4})


def test_cutting_two_nodes_at_s2_disconnects_everyone():
    """With s = 2, fully cutting off two nodes gives every remaining node
    two unreliable links, so by Def. 6 *all* nodes become 2-disconnected —
    such an adversary is nowhere near (2,2)-limited."""
    n, s = 5, 2
    tracker = ConnectivityTracker(n, s)
    dead = all_links_to(0, n) + all_links_to(1, n)
    rounds = [(0, [], [])] + [(r, [], dead) for r in range(1, 4)]
    sets = feed(tracker, rounds)
    assert sets[2] == frozenset()


def test_survivors_do_not_cascade_after_one_node_disconnects():
    """The disjunctive survival rule: once node 0 has dropped out of the
    operational set, its dead links stop counting against the survivors,
    and a further dead link inside the survivor clique is tolerated
    (1 unreliable link < s) even though the "reliable >= n - s" count
    alone would no longer be met."""
    n, s = 5, 2
    tracker = ConnectivityTracker(n, s)
    dead0 = all_links_to(0, n)
    rounds = [(0, [], []), (1, [], dead0), (2, [], dead0)]
    # from round 3 on additionally kill the 1-2 link
    rounds += [(r, [], dead0 + [(1, 2)]) for r in range(3, 6)]
    sets = feed(tracker, rounds)
    assert sets[2] == frozenset({1, 2, 3, 4})
    for op in sets[3:]:
        assert op == frozenset({1, 2, 3, 4})


def test_recovery_at_end_of_refresh_phase():
    """A node broken in unit 0 regains operational status at the end of the
    unit-1 refreshment phase, provided it is unbroken with good links
    throughout the phase (Def. 5.3)."""
    tracker = ConnectivityTracker(5, 2)
    # unit 0 normal rounds 1..3: node 4 broken
    rounds = [(0, [], [])] + [(r, [4], []) for r in (1, 2, 3)]
    # unit 1 refresh rounds 4,5: node 4 recovered, all links fine
    rounds += [(4, [], []), (5, [], [])]
    sets = feed(tracker, rounds)
    assert 4 not in sets[3]
    assert 4 not in sets[4]  # still out at the start of the refresh phase
    assert 4 in sets[5]  # promoted at the phase's last round


def test_no_recovery_if_broken_during_refresh():
    tracker = ConnectivityTracker(5, 2)
    rounds = [(0, [], [])] + [(r, [4], []) for r in (1, 2, 3)]
    rounds += [(4, [4], []), (5, [], [])]  # still broken in first refresh round
    sets = feed(tracker, rounds)
    assert 4 not in sets[5]


def test_no_recovery_without_reliable_links_in_refresh():
    tracker = ConnectivityTracker(5, 2)
    rounds = [(0, [], [])] + [(r, [4], []) for r in (1, 2, 3)]
    dead = all_links_to(4, 5)
    rounds += [(4, [], dead), (5, [], dead)]
    sets = feed(tracker, rounds)
    assert 4 not in sets[5]


def test_recovery_requires_helpers_operational_throughout():
    """Nodes that were themselves non-operational during the phase cannot
    serve as recovery helpers (the paper's inductive subtlety, §2.2)."""
    n, s = 5, 2
    tracker = ConnectivityTracker(n, s)
    # nodes 3 and 4 broken during unit 0
    rounds = [(0, [], [])] + [(r, [3, 4], []) for r in (1, 2, 3)]
    # refresh of unit 1: 3 and 4 unbroken, perfect links between {3,4} but
    # all their links to {0,1,2} dead -> their only intact peers were also
    # non-operational, so neither recovers
    dead = [(3, j) for j in (0, 1, 2)] + [(4, j) for j in (0, 1, 2)]
    rounds += [(4, [], dead), (5, [], dead)]
    sets = feed(tracker, rounds)
    assert 3 not in sets[5]
    assert 4 not in sets[5]


def test_recovery_threshold_counts_n_minus_s_helpers():
    n, s = 5, 2
    tracker = ConnectivityTracker(n, s)
    rounds = [(0, [], [])] + [(r, [4], []) for r in (1, 2, 3)]
    # node 4's link to node 0 stays dead during the refresh: 3 helpers = n - s
    dead = [(4, 0)]
    rounds += [(4, [], dead), (5, [], dead)]
    sets = feed(tracker, rounds)
    assert 4 in sets[5]

    # with two dead links only 2 < n - s helpers remain -> no recovery
    tracker2 = ConnectivityTracker(n, s)
    rounds2 = [(0, [], [])] + [(r, [4], []) for r in (1, 2, 3)]
    dead2 = [(4, 0), (4, 1)]
    rounds2 += [(4, [], dead2), (5, [], dead2)]
    sets2 = feed(tracker2, rounds2)
    assert 4 not in sets2[5]
