"""Cross-scheme tests of the centralized signature interface.

Every scheme must satisfy the same contract (the paper's CS = (CGen,
CSign, CVer)); the parametrized tests below run the whole battery on each.
"""

import random

import pytest

from repro.crypto.group import named_group
from repro.crypto.hash_sig import MerkleSignatureScheme
from repro.crypto.lamport import LamportScheme
from repro.crypto.rsa import RsaFdhScheme
from repro.crypto.schnorr import SchnorrScheme
from repro.crypto.signature import SignatureError
from repro.crypto.toy import BrokenScheme, forge

SCHEMES = [
    pytest.param(SchnorrScheme(named_group("toy64")), id="schnorr"),
    pytest.param(RsaFdhScheme(modulus_bits=256), id="rsa-fdh"),
    pytest.param(MerkleSignatureScheme(capacity=4), id="merkle-lamport"),
    pytest.param(LamportScheme(), id="lamport-ots"),
]


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_sign_verify_round_trip(scheme, rng):
    pair = scheme.generate(rng)
    signature = scheme.sign(pair.signing_key, b"hello world")
    assert scheme.verify(pair.verify_key, b"hello world", signature)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verify_rejects_wrong_message(scheme, rng):
    pair = scheme.generate(rng)
    signature = scheme.sign(pair.signing_key, b"hello world")
    assert not scheme.verify(pair.verify_key, b"hello mars", signature)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verify_rejects_wrong_key(scheme, rng):
    pair1 = scheme.generate(rng)
    pair2 = scheme.generate(rng)
    signature = scheme.sign(pair1.signing_key, b"msg")
    assert not scheme.verify(pair2.verify_key, b"msg", signature)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verify_rejects_garbage_signature(scheme, rng):
    pair = scheme.generate(rng)
    assert not scheme.verify(pair.verify_key, b"msg", "not-a-signature")
    assert not scheme.verify(pair.verify_key, b"msg", None)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_verify_rejects_garbage_key(scheme, rng):
    pair = scheme.generate(rng)
    signature = scheme.sign(pair.signing_key, b"msg")
    assert not scheme.verify("not-a-key", b"msg", signature)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_empty_message(scheme, rng):
    pair = scheme.generate(rng)
    signature = scheme.sign(pair.signing_key, b"")
    assert scheme.verify(pair.verify_key, b"", signature)
    assert not scheme.verify(pair.verify_key, b"x", signature)


def test_schnorr_signature_not_transferable_between_groups(rng):
    small = SchnorrScheme(named_group("toy64"))
    big = SchnorrScheme(named_group("toy160"))
    pair = small.generate(rng)
    signature = small.sign(pair.signing_key, b"m")
    assert not big.verify(pair.verify_key, b"m", signature)


def test_schnorr_deterministic_nonce(rng):
    scheme = SchnorrScheme(named_group("toy64"))
    pair = scheme.generate(rng)
    s1 = scheme.sign(pair.signing_key, b"m")
    s2 = scheme.sign(pair.signing_key, b"m")
    assert s1 == s2  # derandomized signing


def test_merkle_key_exhaustion(rng):
    scheme = MerkleSignatureScheme(capacity=2)
    pair = scheme.generate(rng)
    scheme.sign(pair.signing_key, b"one")
    scheme.sign(pair.signing_key, b"two")
    with pytest.raises(SignatureError):
        scheme.sign(pair.signing_key, b"three")


def test_merkle_distinct_leaves_per_signature(rng):
    scheme = MerkleSignatureScheme(capacity=4)
    pair = scheme.generate(rng)
    s1 = scheme.sign(pair.signing_key, b"a")
    s2 = scheme.sign(pair.signing_key, b"b")
    assert s1.leaf_index != s2.leaf_index
    assert scheme.verify(pair.verify_key, b"a", s1)
    assert scheme.verify(pair.verify_key, b"b", s2)


def test_merkle_rejects_out_of_range_leaf(rng):
    scheme = MerkleSignatureScheme(capacity=2)
    pair = scheme.generate(rng)
    sig = scheme.sign(pair.signing_key, b"a")
    forged = type(sig)(
        leaf_index=5, ots_signature=sig.ots_signature,
        ots_verify_key=sig.ots_verify_key, path=sig.path,
    )
    assert not scheme.verify(pair.verify_key, b"a", forged)


def test_merkle_capacity_validation():
    with pytest.raises(ValueError):
        MerkleSignatureScheme(capacity=0)


def test_rsa_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        RsaFdhScheme(modulus_bits=32)


def test_broken_scheme_is_forgeable(rng):
    scheme = BrokenScheme()
    pair = scheme.generate(rng)
    forged = forge(pair.verify_key, b"anything")
    assert scheme.verify(pair.verify_key, b"anything", forged)
