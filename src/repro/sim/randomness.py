"""Deterministic per-node, per-round randomness.

The paper's model (§2.1) gives node ``N_i`` a random tape ``r_i`` split
into per-round pieces ``r_{i,w}``, with the crucial property that the
piece for round ``w`` is *chosen fresh at round w* — a break-in before
round ``w`` reveals nothing about it (this is why proactive refresh can
use "fresh randomness" after a compromise).

The simulator realizes this by deriving each piece from a master run seed
through a PRF: executions are exactly reproducible from the seed, yet a
simulated adversary that copies a node's memory at round ``w`` holds no
function of the pieces for rounds ``> w`` (programs never store the
derivation key; it lives in the runner, outside any node).
"""

from __future__ import annotations

import random

from repro.crypto.hashing import prf, tagged_hash

__all__ = ["RandomnessSource"]


class RandomnessSource:
    """Derives independent ``random.Random`` streams from one master seed."""

    def __init__(self, seed: int | str | bytes) -> None:
        if isinstance(seed, int):
            seed_bytes = seed.to_bytes((seed.bit_length() + 8) // 8 + 1, "big", signed=True)
        elif isinstance(seed, str):
            seed_bytes = seed.encode("utf-8")
        else:
            seed_bytes = seed
        self._key = tagged_hash("repro/randomness/master", seed_bytes)

    def stream(self, *labels: object) -> random.Random:
        """A fresh ``random.Random`` determined by the labels."""
        material = prf(self._key, list(labels))
        return random.Random(int.from_bytes(material, "big"))

    def node_round(self, node_id: int, round_number: int) -> random.Random:
        """The paper's ``r_{i,w}``: node ``i``'s randomness for round ``w``."""
        return self.stream("node-round", node_id, round_number)

    def adversary(self) -> random.Random:
        """The adversary's own random tape ``r_A``."""
        return self.stream("adversary")
