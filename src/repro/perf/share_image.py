"""Rotation-bucketed memoization of Feldman share images.

A Feldman commitment ``(g^{a_0}, ..., g^{a_t})`` is evaluated at many
points over its lifetime: every zero-dealing is checked at the receiver's
own index, every partial signature is checked at the emitter's index by
every node, and ``_try_combine`` needs the same images again each round a
session stays open.  The image ``g^{f(x)} = Π elements[k]^{x^k}`` is a
pure function of ``(group, elements, x)``, so outcomes are memoized under
that exact key.

Entries are grouped into one *bucket per commitment* (the rotation
bucket: a refreshed key has a new commitment vector and therefore a new
bucket).  :meth:`ShareImageCache.invalidate` drops a superseded
commitment's whole bucket in O(1) —
:meth:`repro.pds.keys.PdsNodeState.install_share` calls it whenever a
refresh replaces the key commitment, so a pre-refresh image (or a
pre-refresh fixed-base window, see below) can never be consulted for a
post-refresh key.  As with the verification cache, this is hygiene on
top of exactness: the bucket key pins the exact element vector, so a
stale bucket is unreachable by construction; invalidation keeps the
cache from carrying dead weight (and dead window tables) across units.

For groups large enough that ``PerfConfig.fixed_base_min_bits`` engages
(never the toy 64-bit test group), each bucket also lazily builds one
:class:`~repro.perf.fixed_base.FixedBaseWindow` per commitment element,
so commitment evaluation at a fresh ``x`` costs table lookups instead of
full ``pow`` calls.  The windows live *inside* the rotation bucket and
die with it.

Everything here is transcript-neutral: the computed value is exactly
``Π pow(elements[k], x^k mod q, p)`` with or without the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.perf.config import perf_config, register_cache_clearer
from repro.perf.fixed_base import FixedBaseWindow

__all__ = [
    "ShareImageCache",
    "share_image_cache",
    "share_image_value",
    "invalidate_share_images",
]


def _plain_image(group, elements: Sequence[int], x: int) -> int:
    """The reference evaluation ``Π elements[k]^{x^k}`` (no caching)."""
    acc = group.identity
    power_of_x = 1
    q = group.q
    for element in elements:
        acc = group.multiply(acc, group.power(element, power_of_x))
        power_of_x = (power_of_x * x) % q
    return acc


class _Bucket:
    """Images (and optional per-element windows) of one commitment."""

    __slots__ = ("images", "windows")

    def __init__(self) -> None:
        self.images: dict[int, int] = {}
        self.windows: list[FixedBaseWindow] | None = None


class ShareImageCache:
    """Bucketed LRU of share-image evaluations, one bucket per commitment.

    The outer key is ``(p, elements)`` — the group modulus plus the exact
    commitment vector — so distinct groups and distinct (even
    adversarially crafted) commitments can never share entries.
    ``max_buckets`` bounds live commitments (LRU eviction);
    ``max_entries_per_bucket`` bounds each bucket's evaluated points
    (protocols evaluate at most ``n`` indices per commitment, far below
    the bound).
    """

    def __init__(self, max_buckets: int = 512, max_entries_per_bucket: int = 4096) -> None:
        self.max_buckets = max_buckets
        self.max_entries_per_bucket = max_entries_per_bucket
        self._buckets: OrderedDict[tuple, _Bucket] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def image(self, group, elements: tuple[int, ...], x: int) -> int:
        key = (group.p, elements)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            while len(self._buckets) > self.max_buckets:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(key)
        cached = bucket.images.get(x)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._compute(group, elements, x, bucket)
        bucket.images[x] = value
        while len(bucket.images) > self.max_entries_per_bucket:
            bucket.images.pop(next(iter(bucket.images)))
        return value

    def _compute(self, group, elements: tuple[int, ...], x: int, bucket: _Bucket) -> int:
        cfg = perf_config()
        if not (
            cfg.enabled
            and cfg.fixed_base
            and group.p.bit_length() >= cfg.fixed_base_min_bits
        ):
            return _plain_image(group, elements, x)
        if bucket.windows is None:
            bucket.windows = [
                FixedBaseWindow(element, group.p, group.q) for element in elements
            ]
        acc = group.identity
        power_of_x = 1
        q = group.q
        for window in bucket.windows:
            acc = group.multiply(acc, window.pow(power_of_x))
            power_of_x = (power_of_x * x) % q
        return acc

    def has_bucket(self, group, elements: tuple[int, ...]) -> bool:
        """Whether a rotation bucket for this commitment is live (the
        invalidation regression tests probe this)."""
        return (group.p, tuple(elements)) in self._buckets

    def invalidate(self, group, elements: tuple[int, ...]) -> int:
        """Drop one commitment's whole bucket (key rotation).  Returns the
        number of image entries dropped."""
        bucket = self._buckets.pop((group.p, tuple(elements)), None)
        if bucket is None:
            return 0
        self.invalidations += 1
        return len(bucket.images)

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket.images) for bucket in self._buckets.values())

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self),
            "buckets": len(self._buckets),
        }


_SHARE_IMAGES = ShareImageCache()
register_cache_clearer(_SHARE_IMAGES.clear)


def share_image_cache() -> ShareImageCache:
    """The process-global share-image cache."""
    return _SHARE_IMAGES


def share_image_value(group, elements: tuple[int, ...], x: int) -> int:
    """``Π elements[k]^{x^k}`` through the cache when the perf layer is on."""
    cfg = perf_config()
    if not (cfg.enabled and cfg.share_image_cache):
        return _plain_image(group, elements, x)
    return _SHARE_IMAGES.image(group, elements, x)


def invalidate_share_images(group, elements: tuple[int, ...]) -> int:
    """Drop the rotation bucket of a superseded commitment (see
    :meth:`repro.pds.keys.PdsNodeState.install_share`)."""
    return _SHARE_IMAGES.invalidate(group, elements)
