"""The paper's core contribution (§4–§5): proactive authentication in the
UL model.

- :mod:`repro.core.disperse` — DISPERSE (Fig. 2).
- :mod:`repro.core.certify` — CERTIFY / VER-CERT (Fig. 3).
- :mod:`repro.core.auth_send` — AUTH-SEND (Fig. 4) as a transport.
- :mod:`repro.core.partial_agreement` — PARTIAL-AGREEMENT (Fig. 5).
- :mod:`repro.core.keystore` — per-unit local keys and certificates.
- :mod:`repro.core.uls` — the UL-model PDS scheme ULS (§4.2, Thm. 14).
- :mod:`repro.core.authenticator` — the proactive authenticator Λ (§5,
  Thm. 30 + Prop. 31).
- :mod:`repro.core.views` — Definition-10 views and impersonation
  detection.
- :mod:`repro.core.naive` — the §1.3 strawman and its attack (baseline).
"""

from repro.core.auth_send import AuthSendTransport
from repro.core.authenticator import AuthenticatedProgram, compile_protocol
from repro.core.certify import CertifiedMessage, certify, ver_cert, ver_cert_many
from repro.core.disperse import DisperseService
from repro.core.keystore import KeyStore, LocalKeys, certificate_assertion
from repro.core.naive import NaiveImpersonator, NaiveProgram
from repro.core.partial_agreement import NO_VALUE, PartialAgreementService
from repro.core.sessions import SessionLayer
from repro.core.uls import (
    UlsCore,
    UlsProgram,
    build_uls_states,
    uls_refresh_rounds,
    uls_schedule,
    verify_user_signature,
)
from repro.core.views import impersonated_nodes, impersonations

__all__ = [
    "AuthSendTransport",
    "AuthenticatedProgram",
    "compile_protocol",
    "CertifiedMessage",
    "certify",
    "ver_cert",
    "ver_cert_many",
    "DisperseService",
    "KeyStore",
    "LocalKeys",
    "certificate_assertion",
    "NaiveImpersonator",
    "NaiveProgram",
    "NO_VALUE",
    "PartialAgreementService",
    "SessionLayer",
    "UlsCore",
    "UlsProgram",
    "build_uls_states",
    "uls_refresh_rounds",
    "uls_schedule",
    "verify_user_signature",
    "impersonated_nodes",
    "impersonations",
]
