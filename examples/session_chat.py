#!/usr/bin/env python3
"""Lightweight per-unit session keys (the paper's §5 footnote variant).

The full authenticator pays ~2(n−1) envelopes and two signature
operations per message to guarantee delivery.  When a deployment only
needs *authentication* (drop = retry at a higher layer), the paper
sketches a cheaper design: derive a pairwise MAC key per time unit from
the certified per-unit keys, then authenticate messages directly.

This demo runs a chat workload over the session layer across a
refreshment phase — watch the session keys rotate with the unit — while
an adversary injects forged MACs that all bounce.

Run:  python examples/session_chat.py
"""

from repro.core.sessions import SESSION_CHANNEL, SessionLayer
from repro.core.uls import UlsCore, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import Adversary, faithful_delivery
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

N, T, UNITS, SEED = 5, 2, 2, 31
GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


class ChatNode(NodeProgram):
    def __init__(self, state, keys):
        super().__init__()
        self.core = UlsCore(state, SCHEME, keys, node_id=state.node_id)
        self.sessions = SessionLayer(self.core)
        self.received = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.core.state.public.public_key)
            return
        self.core.on_round(ctx, inbox)
        self.sessions.on_round(ctx, inbox)
        for src, body in self.sessions.accepted():
            self.received.append((ctx.info.time_unit, src, body))
        if ctx.info.phase is Phase.NORMAL and ctx.info.index_in_phase >= 2:
            peer = (self.node_id + 1) % self.n
            self.sessions.send(ctx, peer, ("hi", self.node_id, ctx.info.round))


class MacForger(Adversary):
    """Injects bogus MAC'd messages every normal round."""

    def __init__(self):
        self.injected = 0

    def deliver(self, api, info, traffic):
        plan = faithful_delivery(traffic, api.n)
        if info.phase is Phase.NORMAL:
            for receiver in range(api.n):
                claimed = (receiver + 1) % api.n
                plan[receiver].append(api.forge_envelope(
                    claimed, receiver, SESSION_CHANNEL,
                    ("mac", info.time_unit, info.round, ("forged!",), b"\x00" * 32)))
                self.injected += 1
        return plan


def main() -> None:
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=SEED)
    programs = [ChatNode(states[i], keys[i]) for i in range(N)]
    adversary = MacForger()
    runner = ULRunner(programs, adversary, uls_schedule(), s=T, seed=SEED)
    execution = runner.run(units=UNITS)

    for program in programs:
        per_unit = {}
        for unit, src, body in program.received:
            per_unit[unit] = per_unit.get(unit, 0) + 1
        rejected = program.sessions.rejected_count
        print(f"node {program.node_id}: chats received per unit {per_unit}, "
              f"forged/invalid MACs rejected: {rejected}")
        assert all(body != ("forged!",) for _, _, body in program.received)
        assert {0, 1} <= set(per_unit)

    k0 = programs[0].sessions._session_keys.get((0, 1))
    k1 = programs[0].sessions._session_keys.get((1, 1))
    print(f"\nadversary injected {adversary.injected} forged MACs; zero accepted.")
    print(f"session key 0<->1 rotated across the refresh: {k0 != k1 and k1 is not None}")
    print("OK: authenticated chat at ~1 envelope/message, forgeries rejected.")


if __name__ == "__main__":
    main()
