"""proactive-auth: maintaining authenticated communication under break-ins.

A full reproduction of Canetti, Halevi & Herzberg (PODC 1997 /
J. Cryptology 2000): a synchronous-network simulator with mobile
break-ins and adversarial links, from-scratch threshold cryptography, the
UL-model proactive distributed signature scheme ULS, and the proactive
authenticator Λ.

Quick start::

    from repro.crypto import SchnorrScheme, named_group
    from repro.core import UlsProgram, build_uls_states, uls_schedule
    from repro.sim import ULRunner
    from repro.adversary import PassiveAdversary

    group = named_group("toy64")
    scheme = SchnorrScheme(group)
    public, states, keys = build_uls_states(group, scheme, n=5, t=2)
    programs = [UlsProgram(s, scheme, k) for s, k in zip(states, keys)]
    runner = ULRunner(programs, PassiveAdversary(), uls_schedule(), s=2)
    execution = runner.run(units=3)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.
"""

__version__ = "1.0.0"
