"""Batch Schnorr verification and fixed-base windows.

Both are pure speedups: the batch check accepts exactly the batches whose
every member verifies individually (up to the standard 1/q soundness
error, and it *never* accepts a batch containing a structurally invalid
signature), and a fixed-base window computes exactly ``pow``.
"""

import random

import pytest

from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme, SchnorrSignature, scheme_for_group
from repro.perf import FixedBaseWindow, configure

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


def _batch(count, seed=21, message=b"batch item %d"):
    rng = random.Random(seed)
    items = []
    for i in range(count):
        pair = SCHEME.generate(rng)
        msg = message % i
        items.append((pair.verify_key, msg, SCHEME.sign(pair.signing_key, msg)))
    return items


# ------------------------------------------------------------- batch verify

def test_batch_accepts_all_valid(perf):
    assert SCHEME.batch_verify(_batch(8))


def test_batch_empty_is_valid(perf):
    assert SCHEME.batch_verify([])


def test_batch_rejects_single_bad_member(perf):
    """One bad signature anywhere in the batch fails the whole batch."""
    items = _batch(8)
    for position in (0, 3, 7):
        corrupted = list(items)
        key, msg, sig = corrupted[position]
        corrupted[position] = (
            key,
            msg,
            SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % GROUP.q),
        )
        assert not SCHEME.batch_verify(corrupted)


def test_batch_rejects_swapped_messages(perf):
    items = _batch(4)
    k0, m0, s0 = items[0]
    k1, m1, s1 = items[1]
    items[0], items[1] = (k0, m1, s0), (k1, m0, s1)
    assert not SCHEME.batch_verify(items)


def test_batch_rejects_malformed_member(perf):
    items = _batch(3)
    items.append((items[0][0], b"m", "not-a-signature"))
    assert not SCHEME.batch_verify(items)


def test_batch_shared_key_aggregation(perf):
    """Many signatures under one key (the v_cert pattern) batch fine."""
    rng = random.Random(33)
    pair = SCHEME.generate(rng)
    items = []
    for i in range(10):
        msg = b"cert %d" % i
        items.append((pair.verify_key, msg, SCHEME.sign(pair.signing_key, msg)))
    assert SCHEME.batch_verify(items)
    key, msg, sig = items[5]
    items[5] = (key, msg, SchnorrSignature(commitment=sig.commitment, response=(sig.response + 1) % GROUP.q))
    assert not SCHEME.batch_verify(items)


def test_batch_deterministic_coefficients(perf):
    """The Fiat–Shamir coefficients depend only on the batch contents, so
    the same batch always produces the same verdict (replay safety)."""
    items = _batch(5)
    verdicts = {SCHEME.batch_verify(items) for _ in range(3)}
    assert verdicts == {True}


def test_scheme_for_group_is_shared():
    assert scheme_for_group(GROUP) is scheme_for_group(named_group("toy64"))


# --------------------------------------------------------- fixed-base window

def test_window_matches_pow_exhaustive_small():
    window = FixedBaseWindow(base=3, modulus=1000003, order=500001, window=4)
    for e in list(range(64)) + [500000, 500001, 999999, 10**9]:
        assert window.pow(e) == pow(3, e % 500001, 1000003)


def test_window_matches_pow_random_group_sized():
    rng = random.Random(77)
    window = FixedBaseWindow(GROUP.g, GROUP.p, GROUP.q)
    for _ in range(200):
        e = rng.randrange(0, 2 * GROUP.q)
        assert window.pow(e) == pow(GROUP.g, e % GROUP.q, GROUP.p)


@pytest.mark.parametrize("width", [1, 2, 5, 8])
def test_window_widths_agree(width):
    window = FixedBaseWindow(GROUP.g, GROUP.p, GROUP.q, window=width)
    rng = random.Random(width)
    for _ in range(20):
        e = rng.randrange(0, GROUP.q)
        assert window.pow(e) == pow(GROUP.g, e, GROUP.p)


def test_group_uses_windows_when_forced(perf):
    """Force-enable windows for the toy group (normally gated to >=192-bit
    moduli) and check base_power/fixed_power still agree with pow."""
    configure(fixed_base_min_bits=1)
    rng = random.Random(88)
    y = GROUP.base_power(rng.randrange(1, GROUP.q))
    for _ in range(50):
        e = rng.randrange(0, GROUP.q)
        assert GROUP.base_power(e) == pow(GROUP.g, e, GROUP.p)
        assert GROUP.fixed_power(y, e) == pow(y, e, GROUP.p)
    assert GROUP._g_window is not None  # the window actually engaged
    assert y in GROUP._base_windows


def test_verify_unchanged_with_windows_forced(perf):
    rng = random.Random(99)
    pair = SCHEME.generate(rng)
    sig = SCHEME.sign(pair.signing_key, b"windowed")
    assert SCHEME.verify(pair.verify_key, b"windowed", sig)
    configure(fixed_base_min_bits=1)
    assert SCHEME.verify(pair.verify_key, b"windowed", sig)
    assert not SCHEME.verify(pair.verify_key, b"other", sig)
