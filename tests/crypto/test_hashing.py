"""Tests for repro.crypto.hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import (
    encode_for_hash,
    hash_chain,
    hash_to_int,
    prf,
    sha256,
    tagged_hash,
    xor_bytes,
)


def test_tagged_hash_distinguishes_tags():
    assert tagged_hash("a", b"x") != tagged_hash("b", b"x")


def test_tagged_hash_distinguishes_chunk_boundaries():
    # length prefixing must prevent (b"ab", b"c") == (b"a", b"bc")
    assert tagged_hash("t", b"ab", b"c") != tagged_hash("t", b"a", b"bc")


def test_tagged_hash_deterministic():
    assert tagged_hash("t", b"x", b"y") == tagged_hash("t", b"x", b"y")


simple_values = st.one_of(
    st.binary(max_size=64),
    st.text(max_size=64),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.booleans(),
    st.none(),
)
nested_values = st.recursive(simple_values, lambda inner: st.lists(inner, max_size=4), max_leaves=10)


@given(nested_values, nested_values)
@settings(max_examples=300)
def test_encoding_is_injective_on_samples(a, b):
    # lists and tuples deliberately encode the same; normalize before comparing
    def normalize(v):
        if isinstance(v, (list, tuple)):
            return ("seq", tuple(normalize(i) for i in v))
        # bool is an int in Python but a distinct type on the wire
        return (type(v).__name__, v)

    if normalize(a) != normalize(b):
        assert encode_for_hash(a) != encode_for_hash(b)
    else:
        assert encode_for_hash(a) == encode_for_hash(b)


def test_encode_rejects_unknown_types():
    with pytest.raises(TypeError):
        encode_for_hash(object())


def test_encode_distinguishes_bool_from_int():
    assert encode_for_hash(True) != encode_for_hash(1)
    assert encode_for_hash(False) != encode_for_hash(0)


@given(st.integers(min_value=2, max_value=2**256))
@settings(max_examples=100)
def test_hash_to_int_in_range(modulus):
    value = hash_to_int("test", modulus, b"payload")
    assert 0 <= value < modulus


def test_hash_to_int_small_modulus_roughly_uniform():
    counts = [0, 0, 0]
    for i in range(900):
        counts[hash_to_int("uniform", 3, i)] += 1
    for count in counts:
        assert 200 < count < 400


def test_hash_to_int_rejects_degenerate_modulus():
    with pytest.raises(ValueError):
        hash_to_int("t", 1, b"")


def test_prf_keyed():
    assert prf(b"k1", "m") != prf(b"k2", "m")
    assert prf(b"k1", "m") == prf(b"k1", "m")


def test_hash_chain_links():
    chain = hash_chain(b"seed", 5)
    assert len(chain) == 5
    for previous, current in zip(chain, chain[1:]):
        assert current == sha256(previous)


def test_hash_chain_rejects_empty():
    with pytest.raises(ValueError):
        hash_chain(b"seed", 0)


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"a", b"ab")
