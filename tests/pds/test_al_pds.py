"""End-to-end tests of the AL-model PDS: signing, refresh, recovery.

These exercise the full stack — Theorem 13's instantiation — under the
AL runner with mobile break-in adversaries.
"""

import random

import pytest

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.crypto.group import named_group
from repro.crypto.shamir import Share
from repro.pds.harness import PdsNodeProgram, required_refresh_rounds
from repro.pds.keys import deal_initial_states
from repro.pds.threshold_schnorr import verify_pds_signature
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.node import ALERT
from repro.sim.runner import ALRunner

GROUP = named_group("toy64")
SCHED = Schedule(setup_rounds=1, refresh_rounds=required_refresh_rounds(1), normal_rounds=8)
N, T = 5, 2


def build(seed=1):
    public, states = deal_initial_states(GROUP, n=N, threshold=T, rng=random.Random(seed))
    programs = [PdsNodeProgram(state) for state in states]
    return public, programs


def run(programs, adversary=None, units=2, sign_plan=None, seed=9):
    runner = ALRunner(programs, adversary or PassiveAdversary(), SCHED, seed=seed)
    for node_id, round_number, message in sign_plan or []:
        runner.add_external_input(node_id, round_number, ("sign", message))
    return runner.run(units=units)


def test_quorum_signs_and_verifies():
    public, programs = build()
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, "hello") for i in range(T + 1)]
    execution = run(programs, sign_plan=sign_plan, units=1)
    for i in range(T + 1):
        assert ("asked-to-sign", "hello", 0) in execution.outputs_of(i)
        assert ("signed", "hello", 0) in execution.outputs_of(i)
    signature = programs[0].signatures[("hello", 0)]
    assert verify_pds_signature(public, "hello", 0, signature)
    # the signature does not verify for other messages/units
    assert not verify_pds_signature(public, "hello", 1, signature)
    assert not verify_pds_signature(public, "other", 0, signature)


def test_fewer_than_t_plus_1_requests_never_sign():
    _, programs = build()
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, "under") for i in range(T)]  # only t requests
    execution = run(programs, sign_plan=sign_plan, units=1)
    for i in range(N):
        assert ("signed", "under", 0) not in execution.outputs_of(i)


def test_all_nodes_signing_works():
    public, programs = build()
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, "full") for i in range(N)]
    execution = run(programs, sign_plan=sign_plan, units=1)
    for i in range(N):
        assert ("signed", "full", 0) in execution.outputs_of(i)


def test_signing_works_after_refresh():
    public, programs = build()
    r1 = SCHED.first_normal_round(1)
    sign_plan = [(i, r1, "post-refresh") for i in range(N)]
    execution = run(programs, sign_plan=sign_plan, units=2)
    for i in range(N):
        assert ("signed", "post-refresh", 1) in execution.outputs_of(i)
    signature = programs[0].signatures[("post-refresh", 1)]
    assert verify_pds_signature(public, "post-refresh", 1, signature)


def test_refresh_changes_shares_but_not_public_key():
    public, programs = build()
    before = [p.state.share.value for p in programs]
    pk_before = [p.state.public.public_key for p in programs]
    execution = run(programs, units=2)
    after = [p.state.share.value for p in programs]
    assert all(p.refresh_outcomes == [("ok", 1)] for p in programs)
    assert before != after  # all shares re-randomized
    assert [p.state.public.public_key for p in programs] == pk_before
    for p in programs:
        assert p.state.share_is_valid()
    # commitments stay consistent across nodes
    commitments = {tuple(p.state.key_commitment.elements) for p in programs}
    assert len(commitments) == 1


def test_refresh_erases_old_shares():
    _, programs = build()
    run(programs, units=3)
    for p in programs:
        units = [u for u, kind in p.state.erasure_log if kind == "refresh"]
        assert units == [1, 2]


def test_multiple_messages_same_unit():
    public, programs = build()
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, f"msg-{k}") for i in range(N) for k in range(3)]
    execution = run(programs, sign_plan=sign_plan, units=1)
    for k in range(3):
        assert ("signed", f"msg-{k}", 0) in execution.outputs_of(0)
        assert verify_pds_signature(public, f"msg-{k}", 0, programs[0].signatures[(f"msg-{k}", 0)])


def test_signing_tolerates_t_broken_nodes():
    """With t nodes broken (silent), the remaining n-t >= t+1 sign fine."""
    public, programs = build()
    plan = BreakinPlan(victims={0: frozenset({3, 4})}, during_refresh=True)
    adversary = MobileBreakInAdversary(plan)
    r = SCHED.first_normal_round(0)
    sign_plan = [(i, r, "resilient") for i in range(N)]
    execution = run(programs, adversary=adversary, sign_plan=sign_plan, units=1)
    for i in range(3):
        assert ("signed", "resilient", 0) in execution.outputs_of(i)
    signature = programs[0].signatures[("resilient", 0)]
    assert verify_pds_signature(public, "resilient", 0, signature)


def test_share_recovery_after_memory_corruption():
    """A node whose share was corrupted during a break-in recovers it in
    the next refreshment phase (Herzberg recovery) and can sign again."""
    public, programs = build()

    def corrupt(program, rng):
        state = program.state
        state.share = Share(x=state.share.x, value=rng.randrange(GROUP.q))
        # also corrupt its commitment copy: sync must fix this too
        state.key_commitment = programs[(program.node_id + 1) % N].state.key_commitment

    plan = BreakinPlan(victims={0: frozenset({2})}, corrupt_memory=True)
    adversary = MobileBreakInAdversary(plan, corruptor=corrupt)
    r1 = SCHED.first_normal_round(1)
    sign_plan = [(i, r1, "after-recovery") for i in range(N)]
    execution = run(programs, adversary=adversary, sign_plan=sign_plan, units=2)
    assert programs[2].state.share_is_valid()
    assert programs[2].refresh_outcomes == [("ok", 1)]
    assert ("signed", "after-recovery", 1) in execution.outputs_of(2)
    # no alert: recovery succeeded silently
    assert ALERT not in execution.outputs_of(2)


def test_share_recovery_after_share_deletion():
    public, programs = build()

    def corrupt(program, rng):
        program.state.share = None

    plan = BreakinPlan(victims={0: frozenset({1})}, corrupt_memory=True)
    adversary = MobileBreakInAdversary(plan, corruptor=corrupt)
    execution = run(programs, adversary=adversary, units=2)
    assert programs[1].state.share_is_valid()
    assert programs[1].refresh_outcomes == [("ok", 1)]


def test_stolen_share_useless_after_refresh():
    """The proactive property itself: a share stolen in unit 0 is
    statistically independent of the unit-1 sharing — the stolen share
    does not lie on the new polynomial."""
    public, programs = build()
    plan = BreakinPlan(victims={0: frozenset({0, 1})})
    adversary = MobileBreakInAdversary(
        plan, state_snapshot=lambda program: program.state.share
    )
    run(programs, adversary=adversary, units=2)
    stolen = adversary.stolen[(0, 0)]
    new_commitment = programs[2].state.key_commitment
    assert not new_commitment.verify_share(GROUP, stolen)
