"""Safety of the threshold signer under protocol-internal byzantine nodes.

DESIGN.md scopes the PDS's *liveness* to crash/omission faults (full
GJKR-style complaint handling is outside the paper's own scope), but its
*safety* — no forged or malformed signature ever verifies — must hold
against arbitrary in-protocol misbehaviour.  These tests drive broken
nodes that send corrupted dealings, garbage partials and equivocating
commitments, and assert the only two possible outcomes: a valid signature
on the requested message, or no signature at all.
"""

import random

import pytest

from repro.pds.harness import PdsNodeProgram, required_refresh_rounds
from repro.pds.keys import deal_initial_states
from repro.pds.threshold_schnorr import pds_message_bytes, verify_pds_signature
from repro.sim.adversary_api import Adversary
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner

from repro.crypto.group import named_group

GROUP = named_group("toy64")
N, T = 5, 2
SCHED = Schedule(setup_rounds=1, refresh_rounds=required_refresh_rounds(1), normal_rounds=10)
SIGN_ROUND = SCHED.first_normal_round(0)


class ByzantineSigner(Adversary):
    """Breaks one node and replays distorted copies of the signing
    traffic it observes: corrupted shares in dealings, random partials,
    equivocated commitments to half the nodes."""

    def __init__(self, victim: int, mode: str) -> None:
        self.victim = victim
        self.mode = mode

    def on_round(self, api, info, traffic) -> None:
        if info.round == SIGN_ROUND - 1:
            api.break_into(self.victim)
        if not api.is_broken(self.victim):
            return
        rng = api.rng
        for envelope in traffic:
            if envelope.channel != "pds" or not isinstance(envelope.payload, tuple):
                continue
            payload = envelope.payload
            if payload[0] == "ts-deal" and self.mode == "bad-shares":
                # re-send the observed dealing with corrupted share values
                corrupted = (payload[0], payload[1], payload[2], payload[3],
                             rng.randrange(GROUP.q))
                for receiver in range(api.n):
                    if receiver != self.victim:
                        api.send_as(self.victim, receiver, "pds", corrupted)
            elif payload[0] == "ts-partial" and self.mode == "bad-partials":
                forged = (payload[0], payload[1], self.victim + 1, payload[3],
                          rng.randrange(GROUP.q))
                for receiver in range(api.n):
                    if receiver != self.victim:
                        api.send_as(self.victim, receiver, "pds", forged)
            elif payload[0] == "ts-deal" and self.mode == "equivocate":
                # send two different (valid-looking) commitment vectors to
                # the two halves of the network
                fake_elements = tuple(
                    GROUP.base_power(rng.randrange(GROUP.q))
                    for _ in range(len(payload[3]))
                )
                fake = (payload[0], payload[1], payload[2], fake_elements,
                        rng.randrange(GROUP.q))
                for receiver in range(api.n):
                    if receiver != self.victim:
                        chosen = fake if receiver % 2 == 0 else payload
                        api.send_as(self.victim, receiver, "pds", chosen)


@pytest.mark.parametrize("mode", ["bad-shares", "bad-partials", "equivocate"])
def test_byzantine_participant_cannot_break_safety(mode):
    public, states = deal_initial_states(GROUP, N, T, random.Random(1))
    programs = [PdsNodeProgram(state) for state in states]
    adversary = ByzantineSigner(victim=4, mode=mode)
    runner = ALRunner(programs, adversary, SCHED, seed=2)
    for i in range(N):
        runner.add_external_input(i, SIGN_ROUND, ("sign", "target"))
    execution = runner.run(units=1)

    # outcome 1 or 2: a correct signature, or nothing — never garbage
    for program in programs[:4]:  # honest nodes
        signature = program.signatures.get(("target", 0))
        if signature is not None:
            assert verify_pds_signature(public, "target", 0, signature)
    # and the adversary gained nothing it could present elsewhere:
    # no signature on any *other* message exists
    for program in programs[:4]:
        assert set(program.signatures) <= {("target", 0)}


@pytest.mark.parametrize("mode", ["bad-shares", "bad-partials"])
def test_liveness_survives_noise_from_one_byzantine_node(mode):
    """With n - 1 = 4 >= t + 1 honest contributors, the corrupted traffic
    from one byzantine node must not prevent the signature (robustness:
    bad shares and partials are identified by Feldman verification and
    dropped)."""
    public, states = deal_initial_states(GROUP, N, T, random.Random(3))
    programs = [PdsNodeProgram(state) for state in states]
    adversary = ByzantineSigner(victim=4, mode=mode)
    runner = ALRunner(programs, adversary, SCHED, seed=4)
    for i in range(N):
        runner.add_external_input(i, SIGN_ROUND, ("sign", "robust"))
    runner.run(units=1)
    signed = sum(1 for p in programs[:4] if ("robust", 0) in p.signatures)
    assert signed >= T + 1
    signature = next(p.signatures[("robust", 0)] for p in programs[:4]
                     if ("robust", 0) in p.signatures)
    assert verify_pds_signature(public, "robust", 0, signature)
