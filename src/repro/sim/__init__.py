"""Synchronous-network simulation substrate (paper §2).

Implements the paper's computational model directly: rounds, time units
with overlapping refreshment phases, per-round fresh randomness, ROM,
break-ins with full state exposure, rushing adversaries, and both the
authenticated-links (AL) and unauthenticated-links (UL) delivery models.
"""

from repro.sim.clock import Phase, RoundInfo, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import ALERT, Node, NodeContext, NodeProgram
from repro.sim.randomness import RandomnessSource
from repro.sim.rom import Rom, RomViolation
from repro.sim.runner import ALRunner, Runner, ULRunner
from repro.sim.transcript import COMPROMISED, RECOVERED, Execution, RoundRecord

__all__ = [
    "Phase",
    "RoundInfo",
    "Schedule",
    "Envelope",
    "ALERT",
    "Node",
    "NodeContext",
    "NodeProgram",
    "RandomnessSource",
    "Rom",
    "RomViolation",
    "ALRunner",
    "Runner",
    "ULRunner",
    "Execution",
    "RoundRecord",
    "COMPROMISED",
    "RECOVERED",
]
