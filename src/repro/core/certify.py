"""Algorithms CERTIFY and VER-CERT (paper Fig. 3).

CERTIFY binds a message to its full context — content ``m``, source ``i``,
destination ``j``, time unit ``u`` and communication round ``w`` — under
the sender's per-unit local key, and attaches the local verification key
plus its PDS certificate.  VER-CERT checks, in order:

1. **format/time**: right source, destination, unit and round (replays
   and reflected messages die here);
2. **certificate**: the attached verification key is certified for
   ``(i, u)`` under the global key ``v_cert`` held in ROM;
3. **signature**: the message signature verifies under the attached key.

A message passing all three is *properly certified* (Definition 17(a)).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.crypto.hashing import encode_for_hash
from repro.crypto.schnorr import SchnorrScheme, SchnorrVerifyKey, scheme_for_group
from repro.crypto.signature import SignatureError, SignatureScheme
from repro.core.keystore import LocalKeys, certificate_assertion
from repro.pds.keys import PdsPublic
from repro.pds.threshold_schnorr import pds_message_bytes, verify_pds_signature_bytes
from repro.perf.cache import (
    CanonicalKeyCache,
    cached_verify,
    canonical_encoding,
    lookup_verify,
    store_verify,
)
from repro.perf.config import perf_config, register_cache_clearer
from repro.perf.volume import BROADCAST

__all__ = [
    "CertifiedMessage",
    "certify",
    "prime_parsed",
    "ver_cert",
    "ver_cert_many",
    "verify_certified_body",
]


class CertifiedMessage(tuple):
    """The tuple ``⟨m, i, j, u, w, σ, v, cert⟩`` of Fig. 3 (a thin subclass
    for readability; stays a plain tuple on the wire)."""

    __slots__ = ()

    @property
    def message(self) -> Any:
        return self[0]

    @property
    def source(self) -> int:
        return self[1]

    @property
    def destination(self) -> int:
        return self[2]

    @property
    def unit(self) -> int:
        return self[3]

    @property
    def round(self) -> int:
        return self[4]

    @property
    def signature(self) -> Any:
        return self[5]

    @property
    def verify_key(self) -> Any:
        return self[6]

    @property
    def certificate(self) -> Any:
        return self[7]


# encode_for_hash of a 6-tuple = list header + the six element encodings
# concatenated; the first element is always the literal "auth-msg" tag.
# Assembling the pieces here lets the (shared, deeply nested) message body
# reuse its identity-memoized encoding instead of being re-walked once per
# destination — the bytes are identical to encoding the whole tuple.
_SIGNED_HEADER = b"L" + (6).to_bytes(8, "big") + encode_for_hash("auth-msg")


def _signed_bytes(message: Any, source: int, destination: int, unit: int, round_w: int) -> bytes:
    return b"".join(
        (
            _SIGNED_HEADER,
            canonical_encoding(message),
            encode_for_hash(source),
            encode_for_hash(destination),
            encode_for_hash(unit),
            encode_for_hash(round_w),
        )
    )


# DISPERSE floods hand the *same* certified tuple object to every relay
# and receiver, and PARTIAL-AGREEMENT re-disperses raw tuples wholesale —
# so the parse, the signed-body encoding and the certificate-assertion
# encoding of one message are recomputed many times per round.  All three
# are memoized by tuple identity (exact: same object, same result).  The
# parse memo is what makes the downstream memos effective: it hands every
# caller of the same raw tuple the same CertifiedMessage object.
_PARSE_MEMO = CanonicalKeyCache(maxsize=8192)
register_cache_clearer(_PARSE_MEMO.clear)

_SIGNED_BYTES_MEMO = CanonicalKeyCache(maxsize=8192)
register_cache_clearer(_SIGNED_BYTES_MEMO.clear)

_CERT_BYTES_MEMO = CanonicalKeyCache(maxsize=8192)
register_cache_clearer(_CERT_BYTES_MEMO.clear)


def _compute_signed_bytes(msg: "CertifiedMessage") -> bytes:
    return _signed_bytes(msg.message, msg.source, msg.destination, msg.unit, msg.round)


def _signed_bytes_for(msg: "CertifiedMessage") -> bytes:
    """Signed-body bytes of a parsed certified message (memoized).

    Raises ``TypeError`` for unencodable message payloads, exactly like
    :func:`_signed_bytes`; failures are not cached.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        return _compute_signed_bytes(msg)
    return _SIGNED_BYTES_MEMO.get(msg, _compute_signed_bytes)


def certify(
    scheme: SignatureScheme,
    keys: LocalKeys,
    message: Any,
    source: int,
    destination: int,
    round_w: int,
) -> CertifiedMessage | None:
    """Fig. 3 CERTIFY.  Returns None when the keys are ``φ`` (a node whose
    refresh failed cannot authenticate anything — it should already have
    alerted)."""
    if not keys.usable:
        return None
    try:
        body = _signed_bytes(message, source, destination, keys.unit, round_w)
        signature = scheme.sign(keys.keypair.signing_key, body)
    except SignatureError:
        return None  # e.g. one-time keys exhausted
    msg = CertifiedMessage(
        (
            message,
            source,
            destination,
            keys.unit,
            round_w,
            signature,
            keys.keypair.verify_key,
            keys.certificate,
        )
    )
    cfg = perf_config()
    if cfg.enabled and cfg.canonical_cache:
        # the sender already paid for the signed-body encoding; seed the
        # memo so no verifier of this object ever recomputes it
        _SIGNED_BYTES_MEMO.put(msg, body)
    return msg


def prime_parsed(wire: tuple, msg: CertifiedMessage) -> None:
    """Seed the parse memo: ``wire`` is the plain tuple about to be
    flooded, ``msg`` its already-parsed certified form.  Sound because a
    ``CertifiedMessage`` *is* its tuple — parsing ``wire`` from scratch
    would reproduce ``msg`` element for element."""
    cfg = perf_config()
    if cfg.enabled and cfg.canonical_cache:
        _PARSE_MEMO.put(wire, msg)


#: (source, unit, key_repr) -> assertion bytes.  Only ~n*units distinct
#: assertions ever exist per execution, but every signed message carries
#: one — a content-keyed table collapses the re-encoding.  Bounded by
#: wholesale clearing (entries are tiny; the bound is a leak guard).
_ASSERTION_BYTES: dict[Any, bytes] = {}
register_cache_clearer(_ASSERTION_BYTES.clear)
_MAX_ASSERTION_BYTES = 4096


def _compute_cert_bytes(scheme: SignatureScheme, msg: CertifiedMessage) -> bytes:
    key_repr = scheme.key_repr(msg.verify_key)
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        assertion = certificate_assertion(msg.source, msg.unit, key_repr)
        return pds_message_bytes(assertion, msg.unit)
    try:
        table_key = (msg.source, msg.unit, key_repr)
        cached = _ASSERTION_BYTES.get(table_key)
    except TypeError:  # unhashable key_repr: compute without caching
        assertion = certificate_assertion(msg.source, msg.unit, key_repr)
        return pds_message_bytes(assertion, msg.unit)
    if cached is None:
        assertion = certificate_assertion(msg.source, msg.unit, key_repr)
        cached = pds_message_bytes(assertion, msg.unit)
        if len(_ASSERTION_BYTES) >= _MAX_ASSERTION_BYTES:
            _ASSERTION_BYTES.clear()
        _ASSERTION_BYTES[table_key] = cached
    return cached


def _cert_bytes_for(scheme: SignatureScheme, msg: CertifiedMessage) -> bytes:
    """Canonical bytes of the certificate assertion the PDS must have
    signed for ``msg`` — a pure function of the message's own fields
    (source, unit, attached key), memoized by message identity.

    Raises ``TypeError`` for foreign key objects, like
    ``scheme.key_repr``; failures are not cached.
    """
    cfg = perf_config()
    if not (cfg.enabled and cfg.canonical_cache):
        return _compute_cert_bytes(scheme, msg)
    entry = _CERT_BYTES_MEMO.get(
        msg, lambda m: (scheme, _compute_cert_bytes(scheme, m))
    )
    if entry[0] is scheme:
        return entry[1]
    return _compute_cert_bytes(scheme, msg)


def _check_certificate(
    scheme: SignatureScheme, public: PdsPublic, msg: CertifiedMessage
) -> bool:
    """Step 2 of VER-CERT: the attached key is certified for (i, u)."""
    try:
        cert_bytes = _cert_bytes_for(scheme, msg)
    except TypeError:
        return False
    return verify_pds_signature_bytes(public, cert_bytes, msg.certificate)


def ver_cert(
    scheme: SignatureScheme,
    public: PdsPublic,
    receiver: int,
    alleged_source: int,
    expected_unit: int,
    expected_round: int,
    raw: Any,
) -> CertifiedMessage | None:
    """Fig. 3 VER-CERT.  Returns the accepted message, or None on reject."""
    msg = _parse(raw)
    if msg is None:
        return None
    # step 1: format and time.  A message signed with the BROADCAST
    # destination is addressed to everyone: the signature still binds
    # source, unit and round (which is what step 1's replay/reflection
    # protection rests on), so accepting the sentinel for any receiver is
    # sound — the per-receiver destination only ever narrowed who may
    # accept, and the sender explicitly chose not to narrow.
    if msg.source != alleged_source:
        return None
    if msg.destination != receiver and msg.destination != BROADCAST:
        return None
    if msg.unit != expected_unit or msg.round != expected_round:
        return None
    # step 2: certificate
    if not _check_certificate(scheme, public, msg):
        return None
    # step 3: message signature
    try:
        body = _signed_bytes_for(msg)
    except TypeError:
        return None
    if not cached_verify(scheme, msg.verify_key, body, msg.signature):
        return None
    return msg


def verify_certified_body(
    scheme: SignatureScheme,
    public: PdsPublic,
    expected_unit: int,
    expected_round: int,
    raw: Any,
) -> CertifiedMessage | None:
    """Like :func:`ver_cert` but without pinning source/destination.

    Used by PARTIAL-AGREEMENT step 4 (Fig. 5), where nodes cross-check
    *forwarded* certified messages that were originally addressed to other
    nodes: authenticity of (author, content, time) is what matters, the
    destination is whoever the author originally sent its input to.
    """
    msg = _parse(raw)
    if msg is None:
        return None
    if msg.unit != expected_unit or msg.round != expected_round:
        return None
    if not _check_certificate(scheme, public, msg):
        return None
    try:
        body = _signed_bytes_for(msg)
    except TypeError:
        return None
    if not cached_verify(scheme, msg.verify_key, body, msg.signature):
        return None
    return msg


def ver_cert_many(
    scheme: SignatureScheme,
    public: PdsPublic,
    receiver: int,
    expected_unit: int,
    expected_round: int,
    items: Sequence[tuple[int, Any]],
) -> list[CertifiedMessage | None]:
    """VER-CERT over one round's worth of receipts, batched.

    ``items`` are ``(alleged_source, raw)`` pairs as produced by
    DISPERSE; the result list is index-aligned (``None`` = rejected), so
    acceptance order — and with it the transcript — is exactly that of
    running :func:`ver_cert` sequentially.

    The speedup comes from resolving all signature checks of the round
    together: format/time checks run first (free), then every remaining
    certificate and message-signature check is answered from the
    verification cache or folded into one random-linear-combination
    batch per group (certificates all verify under the single PDS key
    ``v_cert``, so a flood of them costs one ``v_cert`` exponentiation).
    A failing batch falls back to individual verification, so rejected
    messages are attributed identically to the sequential path.
    """
    results: list[CertifiedMessage | None] = [None] * len(items)
    candidates: list[tuple[int, CertifiedMessage, int, int]] = []
    checks: list[tuple[SignatureScheme, Any, bytes, Any]] = []
    pds_scheme = scheme_for_group(public.group)
    pds_key = SchnorrVerifyKey(y=public.public_key)
    for index, (alleged_source, raw) in enumerate(items):
        msg = _parse(raw)
        if msg is None:
            continue
        # step 1: format and time (BROADCAST accepted for any receiver,
        # exactly as in ver_cert)
        if msg.source != alleged_source:
            continue
        if msg.destination != receiver and msg.destination != BROADCAST:
            continue
        if msg.unit != expected_unit or msg.round != expected_round:
            continue
        try:
            cert_bytes = _cert_bytes_for(scheme, msg)
            body = _signed_bytes_for(msg)
        except TypeError:
            continue
        cert_check = len(checks)
        checks.append((pds_scheme, pds_key, cert_bytes, msg.certificate))
        body_check = len(checks)
        checks.append((scheme, msg.verify_key, body, msg.signature))
        candidates.append((index, msg, cert_check, body_check))
    outcomes = _resolve_checks(checks)
    for index, msg, cert_check, body_check in candidates:
        # steps 2 + 3: certificate, then message signature
        if outcomes[cert_check] and outcomes[body_check]:
            results[index] = msg
    return results


def _resolve_checks(
    checks: Sequence[tuple[SignatureScheme, Any, bytes, Any]]
) -> list[bool]:
    """Answer a round's signature checks: cache first, then one batch per
    Schnorr group, individual (cached) verification for everything else
    and for the members of a failing batch."""
    outcomes: list[bool | None] = [None] * len(checks)
    cache_keys: list[Any] = [None] * len(checks)
    batchable: dict[Any, list[int]] = {}
    singles: list[int] = []
    cfg = perf_config()
    for index, (check_scheme, verify_key, message, signature) in enumerate(checks):
        bucket_key, cached = lookup_verify(check_scheme, verify_key, message, signature)
        if cached is not None:
            outcomes[index] = cached
            continue
        cache_keys[index] = bucket_key
        if (
            cfg.enabled
            and cfg.batch_verify
            and isinstance(check_scheme, SchnorrScheme)
        ):
            batchable.setdefault(check_scheme.group, []).append(index)
        else:
            singles.append(index)
    for group, indices in batchable.items():
        if len(indices) < 2:
            singles.extend(indices)
            continue
        batch_scheme = checks[indices[0]][0]
        batch = [(checks[i][1], checks[i][2], checks[i][3]) for i in indices]
        if batch_scheme.batch_verify(batch):
            for i in indices:
                outcomes[i] = True
                store_verify(cache_keys[i], checks[i][2], checks[i][3], True)
        else:
            # at least one member is bad: attribute blame individually
            singles.extend(indices)
    for i in singles:
        check_scheme, verify_key, message, signature = checks[i]
        outcomes[i] = cached_verify(check_scheme, verify_key, message, signature)
    return [bool(outcome) for outcome in outcomes]


def _parse(raw: Any) -> CertifiedMessage | None:
    if isinstance(raw, CertifiedMessage):
        return raw
    if isinstance(raw, tuple) and len(raw) == 8:
        if isinstance(raw[1], int) and isinstance(raw[2], int) \
                and isinstance(raw[3], int) and isinstance(raw[4], int):
            cfg = perf_config()
            if cfg.enabled and cfg.canonical_cache:
                # one flooded tuple object → one CertifiedMessage object,
                # so the per-message memos above hit on every re-receipt
                return _PARSE_MEMO.get(raw, CertifiedMessage)
            return CertifiedMessage(raw)
    return None
