"""E5 — the §1.3 strawman vs. ULS under the identical cut-off attack.

The paper's motivating comparison.  Expected shape:

- **naive** (sign the new key with the old key): the adversary hijacks the
  victim's key chain with one stolen key; impersonation succeeds in every
  later unit; the victim never alerts.
- **ULS/Λ**: zero successful impersonations after the break-in unit; the
  victim alerts in every cut-off unit.
"""

import pytest

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import CutOffAdversary
from repro.core.authenticator import compile_protocol
from repro.core.naive import NaiveImpersonator, NaiveProgram
from repro.core.uls import build_uls_states, uls_schedule
from repro.core.views import impersonations
from repro.sim.clock import Phase, Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

from common import GROUP, SCHEME, emit, format_table

N, T = 5, 2
UNITS = 4
VICTIM = 4
NAIVE_SCHED = Schedule(setup_rounds=2, refresh_rounds=3, normal_rounds=8)


class ChatterProtocol(NodeProgram):
    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.NORMAL:
            ctx.broadcast("chat", ("hello", self.node_id, ctx.info.round))


def run_naive(seed: int):
    programs = [NaiveProgram(SCHEME) for _ in range(N)]
    impersonator = NaiveImpersonator(SCHEME, victim=VICTIM, rng_seed=seed)
    adversary = CutOffAdversary(victim=VICTIM, break_unit=1, impersonator=impersonator)
    runner = ULRunner(programs, adversary, NAIVE_SCHED, s=T, seed=seed)
    execution = runner.run(units=UNITS)
    units_forged = sum(
        1 for u in range(2, UNITS) if impersonations(execution, VICTIM, u)
    )
    alerts = sum(execution.alerts_in_unit(VICTIM, u) for u in range(UNITS))
    return units_forged, alerts


def run_uls(seed: int):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = compile_protocol([ChatterProtocol() for _ in range(N)], states, SCHEME, keys)
    impersonator = UlsImpersonator(victim=VICTIM)
    adversary = CutOffAdversary(victim=VICTIM, break_unit=1, impersonator=impersonator)
    runner = ULRunner(programs, adversary, uls_schedule(), s=T, seed=seed)
    execution = runner.run(units=UNITS)
    units_forged = sum(
        1 for u in range(2, UNITS) if impersonations(execution, VICTIM, u)
    )
    alerts = sum(1 for u in range(2, UNITS) if execution.alerts_in_unit(VICTIM, u))
    return units_forged, alerts


@pytest.fixture(scope="module")
def table():
    rows = []
    attack_units = UNITS - 2
    for seed in range(3):
        forged, alerts = run_naive(seed)
        rows.append(("naive (§1.3 strawman)", seed, attack_units, forged, alerts))
        assert forged == attack_units, "the strawman must fall, silently"
        assert alerts == 0
    for seed in range(3):
        forged, alerts = run_uls(seed)
        rows.append(("ULS / authenticator", seed, attack_units, forged, alerts))
        assert forged == 0, "ULS must not be impersonated after refresh"
        assert alerts == attack_units, "ULS victim alerts every cut-off unit"
    return rows


def test_e5_baseline_comparison(table, benchmark):
    emit("e5_baseline", format_table(
        "E5  Cut-off attack: §1.3 strawman vs ULS (units with successful "
        "impersonation / victim alerts, out of 2 attack units)",
        ["scheme", "seed", "attack units", "units impersonated", "victim alert units"],
        table,
    ))
    benchmark(lambda: run_naive(99))
