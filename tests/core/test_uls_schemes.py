"""Theorem 14 is generic in the centralized scheme CS: run the identical
ULS protocol over RSA-FDH and over hash-based Merkle–Lamport signatures.

These runs exercise exactly the same code paths as the Schnorr-based
suite; what they add is evidence that nothing silently depends on the
default scheme (key encodings, certificate assertions and signature
objects all flow through the scheme abstraction), and — for the stateful
hash-based scheme — that per-unit key rotation keeps one-time-key usage
within capacity.
"""

import pytest

from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.hash_sig import MerkleSignatureScheme
from repro.crypto.rsa import RsaFdhScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
N, T = 5, 2
SCHED = uls_schedule()


def run_with_scheme(scheme, units=2, seed=5):
    public, states, keys = build_uls_states(GROUP, scheme, N, T, seed=seed)
    programs = [UlsProgram(states[i], scheme, keys[i]) for i in range(N)]
    runner = ULRunner(programs, PassiveAdversary(), SCHED, s=T, seed=seed)
    r1 = SCHED.first_normal_round(1)
    for i in range(N):
        runner.add_external_input(i, r1, ("sign", "cross-scheme"))
    execution = runner.run(units=units)
    return public, programs, execution


@pytest.mark.slow
def test_uls_over_rsa_fdh():
    scheme = RsaFdhScheme(modulus_bits=256)
    public, programs, execution = run_with_scheme(scheme)
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok")]
        assert ("signed", "cross-scheme", 1) in execution.outputs_of(program.state.node_id)
    signature = programs[0].signatures[("cross-scheme", 1)]
    assert verify_user_signature(public, "cross-scheme", 1, signature)


@pytest.mark.slow
def test_uls_over_hash_based_signatures():
    """The from-one-way-functions-only instantiation: stateful one-time
    keys, rotated per unit before exhaustion."""
    scheme = MerkleSignatureScheme(capacity=128)
    public, programs, execution = run_with_scheme(scheme)
    for program in programs:
        assert program.core.alert_units == []
        assert program.keystore.history == [(1, "ok")]
        # one-time keys stayed within capacity thanks to the rotation
        signing_key = program.keystore.current.keypair.signing_key
        assert signing_key.next_leaf <= 128
        assert ("signed", "cross-scheme", 1) in execution.outputs_of(program.state.node_id)
    signature = programs[0].signatures[("cross-scheme", 1)]
    assert verify_user_signature(public, "cross-scheme", 1, signature)
