"""Property-based test: DISPERSE delivery == 2-path reachability.

For arbitrary sets of dead links, a DISPERSE'd message arrives exactly
when the static network (minus dead links, minus broken nodes) contains a
path of length <= 2 from sender to receiver — the paper's stated
guarantee, quantified over random topologies instead of hand-picked ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import LinkAttackAdversary, LinkFault
from repro.core.disperse import DisperseService
from repro.sim.clock import Schedule
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram
from repro.sim.runner import ULRunner

SCHED = Schedule(setup_rounds=1, refresh_rounds=1, normal_rounds=6)
SENDER, RECEIVER = 0, 1


class Host(NodeProgram):
    def __init__(self):
        super().__init__()
        self.disperse = DisperseService()
        self.got = False

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        self.disperse.on_round(ctx, inbox)
        if any(body == ("probe",) for _, body in self.disperse.receipts("")):
            self.got = True
        if ctx.info.round == 2 and self.node_id == SENDER:
            self.disperse.send(ctx, RECEIVER, ("probe",), tag="")


@st.composite
def topologies(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    all_links = [
        frozenset((a, b)) for a in range(n) for b in range(a + 1, n)
    ]
    dead = draw(st.sets(st.sampled_from(all_links), max_size=len(all_links)))
    return n, frozenset(dead)


def two_path_exists(n: int, dead: frozenset) -> bool:
    if frozenset((SENDER, RECEIVER)) not in dead:
        return True
    for relay in range(n):
        if relay in (SENDER, RECEIVER):
            continue
        if frozenset((SENDER, relay)) not in dead and frozenset((relay, RECEIVER)) not in dead:
            return True
    return False


@given(topologies())
@settings(max_examples=60, deadline=None)
def test_delivery_iff_two_path(case):
    n, dead = case
    faults = [LinkFault(link=link, first_round=0, last_round=99) for link in dead]
    programs = [Host() for _ in range(n)]
    runner = ULRunner(programs, LinkAttackAdversary(faults), SCHED,
                      s=max(1, (n - 1) // 2), seed=1)
    runner.run(units=1)
    assert programs[RECEIVER].got == two_path_exists(n, dead)
