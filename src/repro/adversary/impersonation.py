"""Impersonation attacks against ULS/Λ.

Two attack flavors, matching the paper's two-sided story:

:class:`UlsImpersonator` — the §1.1 cut-off attack *with stolen keys*:
plugs into :class:`~repro.adversary.strategies.CutOffAdversary` and
fabricates properly CERTIFY'd application messages using everything a
break-in yields (the victim's local keys, certificate and PDS share).
Those forgeries verify only while the stolen certificate's unit is
current; from the next refreshment phase on they bounce off VER-CERT and
the victim alerts.  Outcome: **impersonation prevented + awareness**.

:class:`FreshKeyImpersonationAdversary` — the stronger, break-in-free
attack the paper calls *inevitable* (§2.3: "the emulation property
allows a limited number of nodes to be disconnected ... and consequently
be impersonated"): cut the victim off, announce an adversary-generated
key in its name during the clear-text step of URfr Part (I), let the
honest majority certify it (they cannot tell — the victim is silent),
capture the certificate off the wire, and impersonate with a fully valid
key+certificate.  Against this the protocol guarantees exactly what
Prop. 31 promises and no more: the forgeries ARE accepted by honest
nodes, and the victim — unable to certify its own key — **alerts in every
such unit**.  Detection, not prevention: awareness is the product.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.certify import certify
from repro.core.disperse import DISPERSE_CHANNEL
from repro.core.keystore import LocalKeys
from repro.sim.adversary_api import Adversary, AdversaryApi
from repro.sim.clock import Phase, RoundInfo
from repro.sim.messages import Envelope

__all__ = ["UlsImpersonator", "FreshKeyImpersonationAdversary"]


class UlsImpersonator:
    """Forge certified app messages with a stolen ULS keystore."""

    def __init__(self, victim: int) -> None:
        self.victim = victim
        self.stolen_keys = None  # LocalKeys captured at break-in
        self.scheme = None
        self.attempts: list[tuple[int, Any]] = []

    def _capture(self, stolen_program: Any) -> None:
        core = getattr(stolen_program, "core", stolen_program)
        keystore = core.keystore
        self.scheme = keystore.scheme
        if self.stolen_keys is None:
            self.stolen_keys = keystore.current

    def __call__(self, stolen_program: Any, api: AdversaryApi, info: RoundInfo) -> list[Envelope]:
        self._capture(stolen_program)
        if info.phase is not Phase.NORMAL or not self.stolen_keys.usable:
            return []
        core = getattr(stolen_program, "core", stolen_program)
        public = core.state.public
        forged: list[Envelope] = []
        message = ("app", ("imp", info.time_unit))
        for receiver in range(api.n):
            if receiver == self.victim:
                continue
            # VER-CERT pins w to two rounds before acceptance; an injected
            # "forwarding" is accepted one round after delivery planning
            msg = certify(
                self.scheme,
                self.stolen_keys,
                message=message,
                source=self.victim,
                destination=receiver,
                round_w=info.round - 1,
            )
            if msg is None:
                continue
            payload = ("fwding", "auth", self.victim, receiver, tuple(msg))
            forged.append(
                api.forge_envelope(self.victim, receiver, DISPERSE_CHANNEL, payload)
            )
        self.attempts.append((info.round, message))
        return forged


class FreshKeyImpersonationAdversary(Adversary):
    """Break-in-free certified impersonation of a cut-off node.

    From ``from_unit`` on: the victim's links are fully cut; at every
    refreshment phase's announcement round the adversary injects its own
    fresh verification key in the victim's name (delivered to everyone);
    the honest nodes agree on it and certify it; the certificate —
    dispersed toward the unreachable victim — is harvested off the wire;
    and during normal rounds the adversary sends properly certified
    application messages as the victim.

    Stays (t,t)-limited with t >= 1: zero break-ins, one disconnected
    node.  ``scheme`` must be the network's centralized scheme.
    """

    def __init__(self, victim: int, scheme, from_unit: int = 1,
                 app_channel_body=None) -> None:
        self.victim = victim
        self.scheme = scheme
        self.from_unit = from_unit
        self._keypair = None
        self._unit_keys: dict[int, LocalKeys] = {}  # unit -> certified keys
        self.certificates_captured = 0
        self.forgeries_injected = 0
        self._app_body = app_channel_body or (
            lambda info: ("app", ("chat", ("impostor", info.time_unit, info.round)))
        )

    def _active(self, info: RoundInfo) -> bool:
        return info.time_unit >= self.from_unit

    def _my_repr(self, rng: random.Random):
        if self._keypair is None:
            self._keypair = self.scheme.generate(rng)
        return self.scheme.key_repr(self._keypair.verify_key)

    def _capture_certificates(self, info: RoundInfo, traffic) -> None:
        """Harvest cert-deliver payloads addressed to the victim."""
        from repro.core.certify import certificate_assertion
        from repro.pds.threshold_schnorr import pds_message_bytes

        if self._keypair is None:
            return
        expected = pds_message_bytes(
            certificate_assertion(self.victim, info.time_unit,
                                  self.scheme.key_repr(self._keypair.verify_key)),
            info.time_unit,
        )
        for envelope in traffic:
            if envelope.channel != DISPERSE_CHANNEL:
                continue
            payload = envelope.payload
            if not (isinstance(payload, tuple) and len(payload) == 5
                    and payload[1] == "cert" and payload[3] == self.victim):
                continue
            body = payload[4]
            if (isinstance(body, tuple) and len(body) == 3
                    and body[0] == "cert-deliver" and body[1] == expected):
                self._unit_keys[info.time_unit] = LocalKeys(
                    unit=info.time_unit, keypair=self._keypair, certificate=body[2]
                )
                self.certificates_captured += 1

    def deliver(self, api: AdversaryApi, info: RoundInfo, traffic):
        from repro.sim.adversary_api import faithful_delivery

        if not self._active(info):
            return faithful_delivery(traffic, api.n)

        self._capture_certificates(info, traffic)

        plan: dict[int, list[Envelope]] = {i: [] for i in range(api.n)}
        for envelope in traffic:
            if self.victim in (envelope.sender, envelope.receiver):
                continue  # the victim is cut off
            plan[envelope.receiver].append(envelope)

        if info.phase is Phase.REFRESH and info.is_phase_start:
            # announce OUR key in the victim's name, consistently to all
            fake = ("newkey", info.time_unit, self._my_repr(api.rng))
            for receiver in range(api.n):
                if receiver != self.victim:
                    plan[receiver].insert(0, api.forge_envelope(
                        self.victim, receiver, "newkey", fake))

        keys = self._unit_keys.get(info.time_unit)
        if keys is not None and info.phase is Phase.NORMAL:
            body = self._app_body(info)
            for receiver in range(api.n):
                if receiver == self.victim:
                    continue
                msg = certify(self.scheme, keys, body, self.victim, receiver,
                              info.round - 1)
                if msg is None:
                    continue
                plan[receiver].append(api.forge_envelope(
                    self.victim, receiver, DISPERSE_CHANNEL,
                    ("fwding", "auth", self.victim, receiver, tuple(msg))))
                self.forgeries_injected += 1
        return plan
