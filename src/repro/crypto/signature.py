"""The centralized-signature interface ``CS = (CGen, CSign, CVer)``.

The paper's Theorem 14 takes *any* EUF-CMA centralized signature scheme as
a building block.  Every concrete scheme in this package (Schnorr,
RSA-FDH, Merkle/Lamport, and the deliberately broken toy scheme used for
negative tests) implements :class:`SignatureScheme`, so the UL-model
constructions are parametric in the scheme exactly as in the paper.

Keys and signatures are scheme-specific frozen dataclasses; messages are
arbitrary ``bytes``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any

__all__ = ["SignatureScheme", "KeyPair", "SignatureError"]


class SignatureError(Exception):
    """Raised when signing is impossible (e.g. one-time keys exhausted)."""


class KeyPair:
    """A (verification key, signing key) pair as produced by ``CGen``."""

    __slots__ = ("verify_key", "signing_key")

    def __init__(self, verify_key: Any, signing_key: Any) -> None:
        self.verify_key = verify_key
        self.signing_key = signing_key

    def __repr__(self) -> str:
        return f"KeyPair(verify_key={self.verify_key!r})"


class SignatureScheme(ABC):
    """Abstract centralized signature scheme.

    Implementations must be stateless apart from what is stored inside the
    signing key (the hash-based scheme keeps its one-time-key counter
    there), so that a key pair can be serialized into a node's memory and
    survives the simulator's break-in/state-copy machinery.
    """

    #: short human-readable identifier, embedded in hash domains
    name: str = "abstract"

    @abstractmethod
    def generate(self, rng: random.Random) -> KeyPair:
        """``CGen``: sample a fresh key pair."""

    @abstractmethod
    def sign(self, signing_key: Any, message: bytes) -> Any:
        """``CSign``: produce a signature on ``message``."""

    @abstractmethod
    def verify(self, verify_key: Any, message: bytes, signature: Any) -> bool:
        """``CVer``: check a signature; must never raise on malformed input."""

    def key_repr(self, verify_key: Any) -> tuple:
        """Canonical, hash-encodable representation of a verification key.

        Certificates (paper Fig. 3) bind a *verification key* into a
        signed assertion, so every scheme must expose a deterministic
        primitive-only encoding of its keys.  Raises ``TypeError`` for
        foreign key types.
        """
        raise NotImplementedError(f"{self.name} does not define key_repr")
