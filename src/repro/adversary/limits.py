"""Adversary-power accounting: Definitions 3 and 7.

These auditors run over a finished :class:`~repro.sim.transcript.Execution`
and decide whether the adversary stayed within its declared limits:

- :func:`audit_t_limited` — AL model (Def. 3): at most ``t`` nodes broken
  into per time unit;
- :func:`audit_st_limited` — UL model (Def. 7): at most ``t`` nodes broken
  *or s-disconnected* per time unit.

Security statements in the paper are conditioned on these limits, so the
experiment harnesses assert them for the attacking strategies (and use
violations as the expected outcome for deliberately over-powered ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.transcript import Execution

__all__ = ["LimitReport", "audit_t_limited", "audit_st_limited"]


@dataclass(frozen=True)
class LimitReport:
    """Outcome of a limit audit."""

    limit: int
    per_unit_impaired: dict[int, frozenset[int]]
    violations: dict[int, frozenset[int]]  # unit -> impaired set, where |set| > limit

    @property
    def within_limits(self) -> bool:
        return not self.violations

    @property
    def worst_unit_size(self) -> int:
        if not self.per_unit_impaired:
            return 0
        return max(len(nodes) for nodes in self.per_unit_impaired.values())


def _audit(
    execution: Execution, limit: int, count_disconnected: bool, instantaneous: bool
) -> LimitReport:
    per_unit: dict[int, frozenset[int]] = {}
    violations: dict[int, frozenset[int]] = {}
    for unit in range(execution.units()):
        union: set[int] = set()
        worst: frozenset[int] = frozenset()
        for record in execution.rounds_in_unit(unit):
            now = set(record.broken)
            if count_disconnected:
                now |= set(range(execution.n)) - record.operational - record.broken
            union |= now
            if len(now) > len(worst):
                worst = frozenset(now)
        frozen = worst if instantaneous else frozenset(union)
        per_unit[unit] = frozen
        if len(frozen) > limit:
            violations[unit] = frozen
    return LimitReport(limit=limit, per_unit_impaired=per_unit, violations=violations)


def audit_t_limited(execution: Execution, t: int) -> LimitReport:
    """Definition 3: the adversary broke into at most ``t`` nodes per unit
    (union over the unit's rounds — break-ins are explicit events)."""
    return _audit(execution, t, count_disconnected=False, instantaneous=False)


def audit_st_limited(execution: Execution, t: int, instantaneous: bool = True) -> LimitReport:
    """Definition 7 with the runner's ``s``: at most ``t`` nodes broken or
    s-disconnected per unit.

    Definition 7's per-unit count is ambiguous once recovery lag enters:
    a node broken in unit ``u`` remains s-*disconnected* through the
    refreshment phase at the start of ``u+1`` (Def. 5.3 re-admits it only
    at the phase's end), so under a union-over-the-unit reading the
    canonical rotate-t-victims-per-unit adversary would already be
    2t-limited.  The paper's narrative clearly intends such rotation to be
    legal, which corresponds to the *instantaneous* reading (default):
    at most ``t`` nodes impaired at any single round of the unit.  Pass
    ``instantaneous=False`` for the stricter union reading.
    """
    return _audit(execution, t, count_disconnected=True, instantaneous=instantaneous)
