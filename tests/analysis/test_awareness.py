"""Tests for the §5.1 global-awareness signal."""

from repro.adversary.impersonation import UlsImpersonator
from repro.adversary.strategies import CutOffAdversary, InjectionFloodAdversary
from repro.analysis.awareness import global_awareness
from repro.core.uls import NEWKEY_CHANNEL, UlsProgram, build_uls_states, uls_schedule
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)
N, T = 5, 2
SCHED = uls_schedule()


def run(adversary, units=2, seed=8):
    public, states, keys = build_uls_states(GROUP, SCHEME, N, T, seed=seed)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(N)]
    runner = ULRunner(programs, adversary, SCHED, s=T, seed=seed)
    return runner.run(units=units)


def test_benign_run_clean_report():
    execution = run(PassiveAdversary())
    report = global_awareness(execution, T)
    assert not report.adversary_exceeded_model
    assert report.alerting_nodes == {}


def test_in_model_attack_does_not_trip_global_signal():
    """A (t,t)-limited cut-off attack alerts only the victim: local
    awareness fires, the global signal does not."""
    adversary = CutOffAdversary(victim=3, break_unit=1,
                                impersonator=UlsImpersonator(victim=3))
    execution = run(adversary, units=3)
    report = global_awareness(execution, T)
    assert not report.adversary_exceeded_model
    assert any(3 in nodes for nodes in report.alerting_nodes.values())


def test_injection_flood_trips_global_signal():
    """The §5.1 almost-(t,t)-limited injector denies everyone their
    certificates: > t simultaneous alerts expose it."""
    adversary = InjectionFloodAdversary(
        payload_factory=lambda c, r, rng: (
            "newkey", 1, SCHEME.key_repr(SCHEME.generate(rng).verify_key)
        ),
        channel=NEWKEY_CHANNEL,
        flood_factor=1,
    )
    execution = run(adversary, units=2)
    report = global_awareness(execution, T)
    assert report.adversary_exceeded_model
    assert 1 in report.model_exceeded_units
    assert len(report.alerting_nodes[1]) == N
