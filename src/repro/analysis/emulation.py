"""Emulation invariants: finite checks behind Definition 12.

We cannot test computational indistinguishability of output ensembles;
what we *can* test are the finite, per-execution events that the proofs
of Lemmas 26–28 use to distinguish real from ideal executions.  An
execution whose global output violates one of these could not have been
produced by any ideal-model forger, so each invariant violation would be
a working distinguisher — experiments assert zero violations:

- **I1 (threshold / unforgeability)**: a message reported ``signed`` (or
  carrying a verifying signature) must have at least ``t + 1`` sign
  requests behind it.  Requests issued through broken nodes leave no
  output (the adversary speaks for them), so the check credits the
  adversary with every node broken during the unit.
- **I2 (liveness)**: if at least ``n - t`` nodes that stayed operational
  through a unit were asked to sign ``(m, u)`` early enough, all of them
  must report ``signed`` (the Lemma 26 event, inverted).
- **I3 (alert soundness)**: a node that stayed operational through a
  whole unit never alerts in it (t-emulation makes alerts impossible for
  operational nodes — §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.node import ALERT
from repro.sim.transcript import Execution

__all__ = ["EmulationReport", "check_emulation_invariants"]


@dataclass
class EmulationReport:
    violations: list[tuple[str, Any]] = field(default_factory=list)
    signed_messages: set[tuple[Any, int]] = field(default_factory=set)
    request_counts: dict[tuple[Any, int], int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _operational_throughout_unit(execution: Execution, unit: int) -> frozenset[int]:
    nodes = frozenset(range(execution.n))
    for record in execution.rounds_in_unit(unit):
        nodes &= record.operational
    return nodes


def check_emulation_invariants(execution: Execution, t: int) -> EmulationReport:
    """Run invariants I1–I3 over an execution's global output."""
    report = EmulationReport()
    asked: dict[tuple[Any, int], set[int]] = {}
    signed: dict[tuple[Any, int], set[int]] = {}

    for node in range(execution.n):
        for entry in execution.outputs_of(node):
            if not isinstance(entry, tuple) or len(entry) != 3:
                continue
            head, message, unit = entry
            if head == "asked-to-sign":
                asked.setdefault((_key(message), unit), set()).add(node)
            elif head == "signed":
                signed.setdefault((_key(message), unit), set()).add(node)

    report.request_counts = {key: len(nodes) for key, nodes in asked.items()}
    report.signed_messages = set(signed)

    # I1: signed => enough requests (crediting broken nodes to the forger)
    for key, signers in signed.items():
        _message, unit = key
        requesters = asked.get(key, set())
        credited = len(requesters) + len(execution.broken_in_unit(unit))
        if credited < t + 1:
            report.violations.append(("I1-threshold", (key, sorted(signers), credited)))

    # I2: n - t operational requesters => everyone of them signed
    for key, requesters in asked.items():
        _message, unit = key
        stable = _operational_throughout_unit(execution, unit)
        stable_requesters = requesters & stable
        if len(stable_requesters) >= execution.n - t:
            missing = stable_requesters - signed.get(key, set())
            if missing:
                report.violations.append(("I2-liveness", (key, sorted(missing))))

    # I3: operational-throughout nodes never alert
    for unit in range(execution.units()):
        stable = _operational_throughout_unit(execution, unit)
        for node in stable:
            if any(entry == ALERT for entry in execution.outputs_of_in_unit(node, unit)):
                report.violations.append(("I3-false-alert", (unit, node)))

    return report


def _key(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
