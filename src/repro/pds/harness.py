"""AL-model PDS node program: the paper's §3.2 "operation" loop.

Hosts the threshold signer and the refresh service over the direct (AL)
transport and implements the §3.2 execution conventions:

- a ``("sign", m)`` external input makes the node output
  ``("asked-to-sign", m, u)`` and run ``Sign`` on ⟨m, u⟩;
- when the node obtains a valid signature it outputs ``("signed", m, u)``;
- at each refreshment phase it runs ``Rfr``, erasing old shares;
- signature verification is the public algorithm
  :func:`~repro.pds.threshold_schnorr.verify_pds_signature`, runnable by
  the (unbreakable) verifier without node interaction.

The same services run inside the UL-model ULS scheme
(:mod:`repro.core.uls`) with the AUTH-SEND transport instead — that swap
*is* the paper's §4 transformation.
"""

from __future__ import annotations

from typing import Any

from repro.pds.keys import PdsNodeState
from repro.pds.refresh import RefreshService
from repro.pds.threshold_schnorr import ThresholdSigner, pds_message_bytes
from repro.pds.transport import DirectTransport, Transport
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram

__all__ = ["PdsNodeProgram", "required_refresh_rounds"]


def required_refresh_rounds(transport_delay: int = 1) -> int:
    """Refresh rounds a schedule must provide for the Rfr protocol."""
    return 4 * transport_delay + 1


class PdsNodeProgram(NodeProgram):
    """One AL-model signer node (see module docstring).

    Args:
        state: this node's PDS state from
            :func:`~repro.pds.keys.deal_initial_states` (the set-up
            phase's ``Gen``).
        transport: defaults to the direct AL transport.
    """

    def __init__(self, state: PdsNodeState, transport: Transport | None = None) -> None:
        super().__init__()
        self.state = state
        self.transport = transport or DirectTransport(channel="pds")
        self.signer = ThresholdSigner(state, self.transport)
        self.refresher = RefreshService(state, self.transport)
        #: message_bytes -> (m, u) for output formatting
        self._pending: dict[bytes, tuple[Any, int]] = {}
        #: (m, u) -> signature, for inspection by experiments
        self.signatures: dict[tuple[Any, int], Any] = {}
        self.refresh_outcomes: list[tuple[str, int]] = []

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if ctx.info.is_phase_end and "pds_public_key" not in ctx.rom:
                ctx.write_rom("pds_public_key", self.state.public.public_key)
            return

        self.transport.begin_round(ctx, inbox)

        if ctx.info.phase is Phase.REFRESH and ctx.info.is_phase_start:
            self.refresher.begin(ctx, ctx.info.time_unit)
        self.refresher.on_round(ctx)
        for outcome, unit in self.refresher.events():
            self.refresh_outcomes.append((outcome, unit))
            if outcome == "failed":
                ctx.alert()

        self.signer.on_round(ctx)

        for value in ctx.external_inputs:
            if isinstance(value, tuple) and len(value) == 2 and value[0] == "sign":
                message = value[1]
                unit = ctx.info.time_unit
                ctx.output(("asked-to-sign", message, unit))
                message_bytes = pds_message_bytes(message, unit)
                self._pending[message_bytes] = (message, unit)
                self.signer.request(ctx, message_bytes)

        for message_bytes, signature in self.signer.completed():
            if message_bytes in self._pending:
                message, unit = self._pending.pop(message_bytes)
                self.signatures[(message, unit)] = signature
                ctx.output(("signed", message, unit))
