"""E10 — Theorem 13's substrate: the AL-model PDS under mobile adversaries.

The UL construction assumes a t-secure AL-model PDS; this experiment
validates our instantiation (threshold Schnorr + Herzberg refresh) against
the ideal-process invariants across the break-in spectrum:

- signing succeeds with any ``t`` nodes silenced;
- fewer than ``t + 1`` requests never produce a signature;
- shares refresh and recover across units under state corruption;
- the emulation invariants (I1-I3) hold throughout.
"""

import random

import pytest

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.analysis.emulation import check_emulation_invariants
from repro.crypto.shamir import Share
from repro.pds.harness import PdsNodeProgram, required_refresh_rounds
from repro.pds.keys import deal_initial_states
from repro.pds.threshold_schnorr import verify_pds_signature
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.clock import Schedule
from repro.sim.runner import ALRunner

from common import GROUP, emit, format_table

N, T = 5, 2
SCHED = Schedule(setup_rounds=1, refresh_rounds=required_refresh_rounds(1), normal_rounds=8)


def run_case(broken: int, requesters: int, corrupt: bool, seed: int):
    public, states = deal_initial_states(GROUP, N, T, random.Random(seed))
    programs = [PdsNodeProgram(state) for state in states]
    if broken:
        victims = frozenset(range(N - broken, N))

        def corruptor(program, rng):
            state = program.state
            state.share = Share(x=state.share_index, value=rng.randrange(GROUP.q))

        plan = BreakinPlan(victims={0: victims, 1: victims}, corrupt_memory=corrupt,
                           during_refresh=False)
        adversary = MobileBreakInAdversary(plan, corruptor=corruptor if corrupt else None)
    else:
        adversary = PassiveAdversary()
    runner = ALRunner(programs, adversary, SCHED, seed=seed)
    r = SCHED.first_normal_round(0)
    for i in range(requesters):
        runner.add_external_input(i, r, ("sign", "payload"))
    r2 = SCHED.first_normal_round(2)
    for i in range(N):
        runner.add_external_input(i, r2, ("sign", "late"))
    execution = runner.run(units=3)
    signed_early = sum(
        1 for i in range(requesters)
        if ("signed", "payload", 0) in execution.outputs_of(i)
    )
    signed_late = sum(
        1 for i in range(N) if ("signed", "late", 2) in execution.outputs_of(i)
    )
    invariants = check_emulation_invariants(execution, T)
    sig = programs[0].signatures.get(("payload", 0))
    verified = sig is not None and verify_pds_signature(public, "payload", 0, sig)
    shares_ok = sum(1 for p in programs if p.state.share_is_valid())
    return signed_early, signed_late, verified, len(invariants.violations), shares_ok


@pytest.fixture(scope="module")
def table():
    rows = []
    cases = [
        ("benign, full quorum", 0, N, False),
        ("benign, exactly t+1 requests", 0, T + 1, False),
        ("benign, only t requests", 0, T, False),
        ("t nodes silenced", T, N, False),
        ("t nodes broken+corrupted", T, N, True),
    ]
    for label, broken, requesters, corrupt in cases:
        early, late, verified, violations, shares_ok = run_case(
            broken, requesters, corrupt, seed=3
        )
        rows.append((label, requesters, early, late, "yes" if verified else "no",
                     violations, shares_ok))
        assert violations == 0
        assert shares_ok == N  # corruption healed by the refresh protocol
        if requesters >= T + 1:
            expected = min(requesters, N - broken)
            assert early >= expected - broken
            assert verified
        else:
            assert early == 0
        assert late == N  # everyone recovered and signs in unit 2
    return rows


def test_e10_al_pds(table, benchmark):
    emit("e10_al_pds", format_table(
        "E10  AL-model PDS (threshold Schnorr, Thm. 13 substrate): "
        "signing + refresh + recovery under mobile break-ins",
        ["scenario", "sign requests", "signed (unit 0)", "signed (unit 2)",
         "signature verifies", "invariant violations", "valid shares at end"],
        table,
    ))
    benchmark(lambda: run_case(0, N, False, seed=11))
