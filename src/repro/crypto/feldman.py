"""Feldman verifiable secret sharing.

Shamir sharing plus a public commitment vector ``(g^{a_0}, ..., g^{a_t})``
to the dealing polynomial's coefficients.  Any party can check its share
against the commitment, and — crucially for the threshold Schnorr PDS —
any party can compute the *public image* ``g^{f(x)}`` of any other party's
share, which is what makes partial signatures publicly verifiable and the
scheme robust against corrupted signers.

Commitment vectors compose homomorphically: the commitment of a sum of
polynomials is the element-wise product.  Proactive refresh exploits this
to update the public share images after adding a zero-sharing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.field import Polynomial
from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import encode_for_hash, hash_to_int, tagged_hash
from repro.crypto.shamir import Share, ShamirDealer
from repro.perf.config import perf_config
from repro.perf.share_image import share_image_value

__all__ = [
    "FeldmanCommitment",
    "FeldmanDealing",
    "FeldmanDealer",
    "verify_shares_batch",
]

_BATCH_TAG = "repro/feldman/batch"


@dataclass(frozen=True)
class FeldmanCommitment:
    """Public commitment ``(g^{a_0}, ..., g^{a_t})`` to a polynomial."""

    elements: tuple[int, ...]

    @property
    def public_constant(self) -> int:
        """``g^{a_0}`` — the public image of the shared secret."""
        return self.elements[0]

    @property
    def degree_bound(self) -> int:
        return len(self.elements) - 1

    def share_image(self, group: SchnorrGroup, x: int) -> int:
        """Compute ``g^{f(x)} = Π elements[k]^{x^k}`` from public data.

        Memoized (and fixed-base accelerated on large groups) per
        commitment through :mod:`repro.perf.share_image`; the value is
        bit-identical with the perf layer on or off.
        """
        return share_image_value(group, self.elements, x)

    def verify_share(self, group: SchnorrGroup, share: Share) -> bool:
        """Check ``g^{share.value} == g^{f(share.x)}``."""
        return group.base_power(share.value) == self.share_image(group, share.x)

    def combine(self, group: SchnorrGroup, other: "FeldmanCommitment") -> "FeldmanCommitment":
        """Commitment to the sum of the two committed polynomials.

        The degree bounds must match: every protocol combine (renewal,
        blinding) adds polynomials of the same degree ``t``, and padding a
        shorter adversarial vector with the identity would silently accept
        a lower-degree dealing whose combined sharing no longer matches
        its acked hash.  Raises ``ValueError`` on a mismatch.
        """
        if len(self.elements) != len(other.elements):
            raise ValueError(
                f"degree bound mismatch: {self.degree_bound} vs {other.degree_bound}"
            )
        return FeldmanCommitment(
            elements=tuple(
                group.multiply(a, b) for a, b in zip(self.elements, other.elements)
            )
        )


@dataclass(frozen=True)
class FeldmanDealing:
    """Everything a dealer produces: per-party shares + the commitment."""

    shares: list[Share]
    commitment: FeldmanCommitment


class FeldmanDealer:
    """Deals Feldman-verifiable sharings in a Schnorr group."""

    def __init__(self, group: SchnorrGroup, n: int, threshold: int) -> None:
        self.group = group
        self.shamir = ShamirDealer(group.scalar_field, n, threshold)
        self.n = n
        self.threshold = threshold

    def commit(self, polynomial: Polynomial) -> FeldmanCommitment:
        """Commit to an existing polynomial."""
        return FeldmanCommitment(
            elements=tuple(self.group.base_power(c) for c in polynomial.coefficients)
        )

    def deal(self, secret: int, rng: random.Random) -> FeldmanDealing:
        """Deal a verifiable sharing of ``secret``."""
        polynomial, shares = self.shamir.share(secret, rng)
        return FeldmanDealing(shares=shares, commitment=self.commit(polynomial))

    def deal_zero(self, rng: random.Random) -> FeldmanDealing:
        """Deal a verifiable sharing of zero (for proactive refresh).

        Verifiers must additionally check ``commitment.public_constant == 1``
        to be sure the dealt secret really is zero; see
        :meth:`verify_zero_dealing`.
        """
        return self.deal(0, rng)

    def verify_zero_dealing(self, dealing_commitment: FeldmanCommitment) -> bool:
        """Check that a commitment opens to a degree-``t`` sharing of zero.

        Rejects both a non-identity constant term (the dealt secret would
        not be zero, so adding it would *change* the key) and a mismatched
        degree bound (a lower- or higher-degree dealing would change the
        reconstruction threshold of the refreshed sharing).
        """
        return (
            dealing_commitment.degree_bound == self.threshold
            and dealing_commitment.public_constant == self.group.identity
        )


def verify_shares_batch(
    group: SchnorrGroup,
    items: Sequence[tuple[FeldmanCommitment, Share]],
) -> list[bool]:
    """Per-item verdicts of ``commitment.verify_share(group, share)`` for a
    whole batch, checked with one random-linear-combination equation.

    Mirrors :meth:`repro.crypto.schnorr.SchnorrScheme.batch_verify`:
    coefficients ``c_i ∈ [1, q)`` come from a Fiat–Shamir hash of the whole
    batch (every commitment vector, evaluation point and claimed value), so
    the check is deterministic and an adversary cannot pick shares after
    the coefficients are fixed.  The verified equation is

        g^(Σ c_i·v_i)  ==  Π_i Π_k elements_{i,k}^{c_i·x_i^k}

    with exponents aggregated per distinct base (all zero-dealings share
    the identity constant term, and co-dealt commitments frequently repeat
    elements).  If the aggregate holds, every share is valid up to the
    standard ``1/q`` soundness error; if it fails, the function falls back
    to per-item verification *in batch order*, so blame attribution — which
    dealer gets complained against, which partial emitter gets rejected —
    is identical to the unbatched path.

    With the ``feldman_batch`` flag off (or a batch of size ≤ 1) this is
    exactly the per-item loop.
    """
    if not items:
        return []
    cfg = perf_config()
    if len(items) == 1 or not (cfg.enabled and cfg.feldman_batch):
        return [commitment.verify_share(group, share) for commitment, share in items]
    q = group.q
    transcript = tagged_hash(
        _BATCH_TAG,
        *(
            encode_for_hash((commitment.elements, share.x, share.value))
            for commitment, share in items
        ),
    )
    value_total = 0
    base_exponents: dict[int, int] = {}
    for index, (commitment, share) in enumerate(items):
        c = 1 + hash_to_int(_BATCH_TAG, q - 1, transcript, index)
        value_total = (value_total + c * share.value) % q
        power_of_x = 1
        for element in commitment.elements:
            base_exponents[element] = (
                base_exponents.get(element, 0) + c * power_of_x
            ) % q
            power_of_x = (power_of_x * share.x) % q
    rhs = group.multi_power(list(base_exponents.items()))
    if group.base_power(value_total) == rhs:
        return [True] * len(items)
    return [commitment.verify_share(group, share) for commitment, share in items]
