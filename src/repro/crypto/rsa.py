"""RSA with full-domain-hash signatures.

A third instantiation of the centralized scheme ``CS`` — the paper cites
factoring-based schemes ([22] and others) as the classical option.  The
implementation is from scratch: key generation via Miller--Rabin primes,
private-exponent computation via the extended Euclid, and a full-domain
hash into ``Z_N*`` so signatures are EUF-CMA in the random-oracle model.

Key sizes are configurable; tests use small moduli (structurally identical
to production sizes, just factorable — fine for a simulator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import hash_to_int
from repro.crypto.numbers import mod_inverse, random_prime
from repro.crypto.signature import KeyPair, SignatureScheme

__all__ = ["RsaVerifyKey", "RsaSigningKey", "RsaSignature", "RsaFdhScheme"]

_FDH_TAG = "repro/rsa/fdh"
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaVerifyKey:
    modulus: int
    exponent: int


@dataclass(frozen=True)
class RsaSigningKey:
    modulus: int
    private_exponent: int
    # CRT components for fast signing
    prime_p: int
    prime_q: int
    d_mod_p1: int
    d_mod_q1: int
    q_inverse: int


@dataclass(frozen=True)
class RsaSignature:
    value: int


class RsaFdhScheme(SignatureScheme):
    """RSA-FDH signatures; see module docstring.

    Args:
        modulus_bits: size of ``N = p*q``.  Tests use 512; anything from
            256 (fast, insecure) to 3072 (slow, realistic) works.
    """

    name = "rsa-fdh"

    def __init__(self, modulus_bits: int = 512) -> None:
        if modulus_bits < 64:
            raise ValueError("modulus too small even for a toy")
        self.modulus_bits = modulus_bits

    def key_repr(self, verify_key: RsaVerifyKey) -> tuple:
        if not isinstance(verify_key, RsaVerifyKey):
            raise TypeError("not an RSA verify key")
        return ("rsa-fdh", verify_key.modulus, verify_key.exponent)

    def generate(self, rng: random.Random) -> KeyPair:
        half = self.modulus_bits // 2
        while True:
            p = random_prime(half, rng)
            q = random_prime(self.modulus_bits - half, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if phi % _PUBLIC_EXPONENT == 0:
                continue
            break
        n = p * q
        d = mod_inverse(_PUBLIC_EXPONENT, phi)
        verify = RsaVerifyKey(modulus=n, exponent=_PUBLIC_EXPONENT)
        signing = RsaSigningKey(
            modulus=n,
            private_exponent=d,
            prime_p=p,
            prime_q=q,
            d_mod_p1=d % (p - 1),
            d_mod_q1=d % (q - 1),
            q_inverse=mod_inverse(q, p),
        )
        return KeyPair(verify, signing)

    def _fdh(self, modulus: int, message: bytes) -> int:
        digest = hash_to_int(_FDH_TAG, modulus, message)
        return digest if digest > 1 else 2  # avoid the trivial fixed points 0, 1

    def sign(self, signing_key: RsaSigningKey, message: bytes) -> RsaSignature:
        h = self._fdh(signing_key.modulus, message)
        # CRT exponentiation: ~4x faster than a direct pow for equal security.
        sp = pow(h % signing_key.prime_p, signing_key.d_mod_p1, signing_key.prime_p)
        sq = pow(h % signing_key.prime_q, signing_key.d_mod_q1, signing_key.prime_q)
        t = ((sp - sq) * signing_key.q_inverse) % signing_key.prime_p
        value = (sq + t * signing_key.prime_q) % signing_key.modulus
        return RsaSignature(value=value)

    def verify(self, verify_key: RsaVerifyKey, message: bytes, signature: object) -> bool:
        if not isinstance(signature, RsaSignature):
            return False
        if not isinstance(verify_key, RsaVerifyKey):
            return False
        if not (0 < signature.value < verify_key.modulus):
            return False
        expected = self._fdh(verify_key.modulus, message)
        return pow(signature.value, verify_key.exponent, verify_key.modulus) == expected
