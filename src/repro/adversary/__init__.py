"""Adversary framework: capabilities, power accounting and strategies.

- :mod:`repro.adversary.base` — the capability API (break-ins, rushing,
  delivery control) shared by the AL and UL models.
- :mod:`repro.adversary.connectivity` — reliable links and s-operational
  node tracking (Definitions 4–6).
- :mod:`repro.adversary.limits` — t-limited / (s,t)-limited audits
  (Definitions 3 and 7).
- :mod:`repro.adversary.strategies` — concrete attack strategies used by
  the experiments (mobile break-ins, link droppers/modifiers, the §1.1
  cut-off impersonation attack, the §5.1 injection flood, replay).
"""

from repro.adversary.base import Adversary, AdversaryApi, PassiveAdversary, faithful_delivery
from repro.adversary.connectivity import ConnectivityTracker
from repro.adversary.limits import LimitReport, audit_st_limited, audit_t_limited

__all__ = [
    "Adversary",
    "AdversaryApi",
    "PassiveAdversary",
    "faithful_delivery",
    "ConnectivityTracker",
    "LimitReport",
    "audit_st_limited",
    "audit_t_limited",
]
