"""Dolev–Strong authenticated byzantine broadcast [16].

The paper notes (§1.4) that its AL model has no broadcast channel, but one
"can be emulated in the AL model using standard agreement protocols
[31], [26], [27], [16], [17]".  This module implements the canonical such
protocol — Dolev–Strong signature-chain broadcast — as a self-contained
AL-model node program, tolerating any number ``t < n`` of corrupted nodes
in ``t + 1`` rounds:

- round 0: the designated sender signs its value and sends
  ``(value, [sig_sender])`` to everyone;
- round ``k``: a node that received a value carried by a chain of ``k``
  valid signatures from ``k`` *distinct* nodes starting with the sender —
  and that has extracted fewer than two values so far — adds the value to
  its extracted set, appends its own signature, and forwards to everyone;
- after round ``t + 1``: a node outputs the unique extracted value, or
  the default ``⊥`` if it extracted zero or several values.

Signature keys are distributed during the adversary-free set-up phase.
Note the mobile-adversary caveat: these are *long-lived* keys, so a node
that was ever broken stays forgeable in later broadcasts — which is
precisely the problem the paper's proactive machinery exists to solve.
This module is the classical substrate, used inside one AL-model time
unit where the caveat is moot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import encode_for_hash, tagged_hash
from repro.crypto.signature import SignatureScheme
from repro.sim.clock import Phase
from repro.sim.messages import Envelope
from repro.sim.node import NodeContext, NodeProgram

__all__ = ["DolevStrongProgram", "BOTTOM"]

BOTTOM = ("<bottom>",)
_CHANNEL = "dolev-strong"
_SIGN_TAG = "repro/dolev-strong/link"


def _chain_message(session: Any, value: Any) -> bytes:
    """What every signature in a chain covers: the session id and value."""
    return tagged_hash(_SIGN_TAG, encode_for_hash(session), encode_for_hash(value))


@dataclass
class _Broadcast:
    sender: int
    start_round: int
    extracted: list[Any] = field(default_factory=list)


class DolevStrongProgram(NodeProgram):
    """One node of the Dolev–Strong protocol.

    Args:
        scheme: the signature scheme for chain links.
        t: corruption bound; the protocol runs ``t + 1`` forwarding rounds.
        broadcasts: schedule ``{session_id: (sender, value, start_round)}``
            known to all nodes (as in the classical model, *who* broadcasts
            *when* is common knowledge; only the value needs agreement).
            Non-sender nodes use only ``sender`` and ``start_round``.

    Keys are generated in the first set-up round and exchanged over the
    (setup-reliable) links; each node's output is
    ``("ds-decide", session_id, value)`` at decision time.
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        t: int,
        broadcasts: dict[Any, tuple[int, Any, int]],
    ) -> None:
        super().__init__()
        self.scheme = scheme
        self.t = t
        self.broadcasts = broadcasts
        self.keypair = None
        self.verify_keys: dict[int, Any] = {}
        self.sessions: dict[Any, _Broadcast] = {}
        self.decisions: dict[Any, Any] = {}
        self._outgoing: list[tuple[Any, Any, list[tuple[int, Any]]]] = []

    # -- helpers -------------------------------------------------------------

    def _valid_chain(
        self, session_id: Any, value: Any, chain: list[tuple[int, Any]], round_index: int
    ) -> bool:
        """A round-``k`` message must carry ``k`` valid signatures from
        distinct nodes, the first one the designated sender's."""
        sender, _, _ = self.broadcasts[session_id]
        if len(chain) != round_index:
            return False
        signers = [signer for signer, _ in chain]
        if len(set(signers)) != len(signers):
            return False
        if not signers or signers[0] != sender:
            return False
        if self.node_id in signers:
            return False  # nothing new to add; also guards loops
        message = _chain_message(session_id, value)
        for signer, signature in chain:
            key = self.verify_keys.get(signer)
            if key is None or not self.scheme.verify(key, message, signature):
                return False
        return True

    def _extend_and_forward(
        self, ctx: NodeContext, session_id: Any, value: Any, chain: list[tuple[int, Any]]
    ) -> None:
        message = _chain_message(session_id, value)
        my_signature = self.scheme.sign(self.keypair.signing_key, message)
        extended = chain + [(self.node_id, my_signature)]
        ctx.broadcast(_CHANNEL, ("ds-fwd", session_id, value, extended))

    # -- protocol ---------------------------------------------------------------

    def step(self, ctx: NodeContext, inbox: list[Envelope]) -> None:
        if ctx.info.phase is Phase.SETUP:
            if self.keypair is None:
                self.keypair = self.scheme.generate(ctx.rng)
                self.verify_keys[self.node_id] = self.keypair.verify_key
                ctx.broadcast(_CHANNEL, ("ds-key", self.keypair.verify_key))
            for envelope in inbox:
                if envelope.channel == _CHANNEL and envelope.payload[0] == "ds-key":
                    self.verify_keys[envelope.sender] = envelope.payload[1]
            return

        # learn any keys still in flight from the last set-up round
        for envelope in inbox:
            if envelope.channel == _CHANNEL and envelope.payload[0] == "ds-key":
                self.verify_keys.setdefault(envelope.sender, envelope.payload[1])

        # start broadcasts scheduled for this round
        for session_id, (sender, value, start_round) in self.broadcasts.items():
            if start_round == ctx.info.round and session_id not in self.sessions:
                self.sessions[session_id] = _Broadcast(sender=sender, start_round=start_round)
                if sender == self.node_id:
                    self.sessions[session_id].extracted.append(value)
                    self._extend_and_forward(ctx, session_id, value, [])

        # process forwarded chains
        for envelope in inbox:
            if envelope.channel != _CHANNEL or envelope.payload[0] != "ds-fwd":
                continue
            _, session_id, value, chain = envelope.payload
            if session_id not in self.broadcasts:
                continue
            sender, _, start_round = self.broadcasts[session_id]
            session = self.sessions.setdefault(
                session_id, _Broadcast(sender=sender, start_round=start_round)
            )
            round_index = ctx.info.round - start_round
            if not (1 <= round_index <= self.t + 1):
                continue
            if len(session.extracted) >= 2:
                continue
            if any(_same(value, seen) for seen in session.extracted):
                continue
            if not self._valid_chain(session_id, value, chain, round_index):
                continue
            session.extracted.append(value)
            if round_index <= self.t:  # final-round extractions are not forwarded
                self._extend_and_forward(ctx, session_id, value, chain)

        # decide sessions whose window closed
        for session_id, session in self.sessions.items():
            if session_id in self.decisions:
                continue
            if ctx.info.round >= session.start_round + self.t + 1:
                if len(session.extracted) == 1:
                    decision = session.extracted[0]
                else:
                    decision = BOTTOM
                self.decisions[session_id] = decision
                ctx.output(("ds-decide", session_id, decision))


def _same(a: Any, b: Any) -> bool:
    return encode_for_hash_safe(a) == encode_for_hash_safe(b)


def encode_for_hash_safe(value: Any) -> bytes:
    try:
        return encode_for_hash(value)
    except TypeError:
        return repr(value).encode()
