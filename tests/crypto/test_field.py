"""Tests for repro.crypto.field."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Polynomial, PrimeField

FIELD = PrimeField(104729)
field_elements = st.integers(min_value=0, max_value=FIELD.order - 1)


def test_rejects_composite_order():
    with pytest.raises(ValueError):
        PrimeField(100)


@given(field_elements, field_elements, field_elements)
@settings(max_examples=200)
def test_field_axioms(a, b, c):
    f = FIELD
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, f.neg(a)) == 0
    assert f.sub(a, b) == f.add(a, f.neg(b))


@given(st.integers(min_value=1, max_value=FIELD.order - 1))
@settings(max_examples=100)
def test_inverse(a):
    assert FIELD.mul(a, FIELD.inv(a)) == 1


def test_inverse_of_zero_fails():
    with pytest.raises(ZeroDivisionError):
        FIELD.inv(0)


def test_random_element_in_range():
    rng = random.Random(0)
    for _ in range(100):
        assert 0 <= FIELD.random_element(rng) < FIELD.order
        assert 0 < FIELD.random_nonzero(rng) < FIELD.order


def test_random_polynomial_respects_constant():
    rng = random.Random(1)
    poly = FIELD.random_polynomial(3, rng, constant=42)
    assert poly.constant_term == 42
    assert poly.evaluate(0) == 42
    assert poly.degree_bound == 3


def test_random_polynomial_rejects_negative_degree():
    with pytest.raises(ValueError):
        FIELD.random_polynomial(-1, random.Random(0))


def test_polynomial_requires_coefficients():
    with pytest.raises(ValueError):
        Polynomial(FIELD, [])


def test_polynomial_evaluation_horner():
    # f(x) = 3 + 2x + x^2
    poly = Polynomial(FIELD, [3, 2, 1])
    assert poly.evaluate(0) == 3
    assert poly.evaluate(1) == 6
    assert poly.evaluate(10) == 123


def test_polynomial_addition():
    a = Polynomial(FIELD, [1, 2])
    b = Polynomial(FIELD, [3, 4, 5])
    total = a.add(b)
    assert total.coefficients == [4, 6, 5]


def test_polynomial_addition_rejects_mismatched_fields():
    other = PrimeField(101)
    with pytest.raises(ValueError):
        Polynomial(FIELD, [1]).add(Polynomial(other, [1]))


@given(st.lists(field_elements, min_size=1, max_size=6, unique=True))
@settings(max_examples=100)
def test_lagrange_recovers_constant(xs):
    xs = [x for x in xs if x != 0]
    if not xs:
        return
    rng = random.Random(7)
    poly = FIELD.random_polynomial(len(xs) - 1, rng, constant=12345)
    points = [(x, poly.evaluate(x)) for x in xs]
    assert FIELD.interpolate_at_zero(points) == 12345


def test_lagrange_rejects_duplicate_points():
    with pytest.raises(ValueError):
        FIELD.lagrange_coefficients_at_zero([1, 1])


def test_lagrange_coefficients_sum_to_one():
    # Interpolating the constant polynomial 1 must give 1.
    lam = FIELD.lagrange_coefficients_at_zero([1, 2, 3, 4])
    assert sum(lam) % FIELD.order == 1
