"""Measurement helpers shared by the experiments and benchmarks.

Everything here is a pure function over a finished
:class:`~repro.sim.transcript.Execution` (plus, occasionally, the node
programs for protocol-internal counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.clock import Phase
from repro.sim.node import ALERT
from repro.sim.transcript import Execution

__all__ = [
    "MessageStats",
    "message_stats",
    "alert_counts",
    "certification_availability",
    "delivery_rate",
    "recovery_units",
]


@dataclass(frozen=True)
class MessageStats:
    """Envelope counts, split the ways the experiments need."""

    total: int
    by_phase: dict[str, int]
    by_channel: dict[str, int]
    per_refresh_phase: float
    per_normal_round: float


def message_stats(execution: Execution) -> MessageStats:
    by_phase: dict[str, int] = {}
    by_channel: dict[str, int] = {}
    refresh_rounds = 0
    normal_rounds = 0
    for record in execution.records:
        phase = record.info.phase.value
        by_phase[phase] = by_phase.get(phase, 0) + record.sent_count
        if record.info.phase is Phase.REFRESH:
            refresh_rounds += 1
        elif record.info.phase is Phase.NORMAL:
            normal_rounds += 1
        # works on compact records too: both kinds expose sent_by_channel
        for channel, count in record.sent_by_channel.items():
            by_channel[channel] = by_channel.get(channel, 0) + count
    total = sum(by_phase.values())
    refresh_phases = max(1, execution.units() - 1)
    return MessageStats(
        total=total,
        by_phase=by_phase,
        by_channel=by_channel,
        per_refresh_phase=by_phase.get("refresh", 0) / refresh_phases,
        per_normal_round=by_phase.get("normal", 0) / max(1, normal_rounds),
    )


def alert_counts(execution: Execution) -> dict[int, dict[int, int]]:
    """``{unit: {node: #alerts}}`` with zero entries omitted."""
    result: dict[int, dict[int, int]] = {}
    for unit in range(execution.units()):
        for node in range(execution.n):
            count = execution.alerts_in_unit(node, unit)
            if count:
                result.setdefault(unit, {})[node] = count
    return result


def certification_availability(key_histories: dict[int, dict[int, str]], units: int) -> float:
    """Fraction of (node, unit >= 1) pairs whose refresh obtained keys."""
    total = 0
    ok = 0
    for history in key_histories.values():
        for unit in range(1, units):
            total += 1
            if history.get(unit) == "ok":
                ok += 1
    return ok / total if total else 1.0


def delivery_rate(sent: int, received: int) -> float:
    """Receipt fraction for point-to-point experiments."""
    return received / sent if sent else 1.0


def recovery_units(execution: Execution, node: int) -> list[int]:
    """Units at whose refresh-phase end ``node`` re-entered the
    operational set (useful for recovery-latency experiments)."""
    units = []
    previous = True
    for record in execution.records:
        now = node in record.operational
        if now and not previous and record.info.phase is Phase.REFRESH:
            units.append(record.info.time_unit)
        previous = now
    return units
