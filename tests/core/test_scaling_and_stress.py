"""Larger-configuration and stress tests (marked slow)."""

import pytest

from repro.adversary.strategies import BreakinPlan, MobileBreakInAdversary
from repro.core.uls import UlsProgram, build_uls_states, uls_schedule, verify_user_signature
from repro.crypto.group import named_group
from repro.crypto.schnorr import SchnorrScheme
from repro.sim.adversary_api import PassiveAdversary
from repro.sim.runner import ULRunner

GROUP = named_group("toy64")
SCHEME = SchnorrScheme(GROUP)


@pytest.mark.slow
def test_seven_nodes_t3_full_cycle():
    """n = 7, t = 3 — the next resilience tier up; mobile break-ins of 3
    nodes per unit, refresh, recovery, signing."""
    n, t = 7, 3
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=1)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(n)]
    schedule = uls_schedule()
    plan = BreakinPlan(victims={0: frozenset({0, 1, 2}), 1: frozenset({4, 5, 6})})
    runner = ULRunner(programs, MobileBreakInAdversary(plan), schedule, s=t, seed=1)
    r1 = schedule.first_normal_round(1)
    for i in range(n):
        runner.add_external_input(i, r1, ("sign", "big"))
    execution = runner.run(units=2)
    signature = next(p.signatures[("big", 1)] for p in programs
                     if ("big", 1) in p.signatures)
    assert verify_user_signature(public, "big", 1, signature)
    for program in programs:
        assert program.state.share_is_valid()
        assert program.core.alert_units == []


@pytest.mark.slow
def test_many_concurrent_signing_sessions():
    """Eight messages signed concurrently in one unit — sessions must not
    interfere (distinct nonces, distinct signatures, all verify)."""
    n, t = 5, 2
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=2)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(n)]
    schedule = uls_schedule()
    runner = ULRunner(programs, PassiveAdversary(), schedule, s=t, seed=2)
    r0 = schedule.first_normal_round(0)
    messages = [f"doc-{k}" for k in range(8)]
    for message in messages:
        for i in range(n):
            runner.add_external_input(i, r0, ("sign", message))
    runner.run(units=1)
    signatures = {}
    for message in messages:
        signature = programs[0].signatures[(message, 0)]
        assert verify_user_signature(public, message, 0, signature)
        signatures[message] = (signature.commitment, signature.response)
    # all-distinct nonces: no (R, s) reuse across messages
    assert len(set(signatures.values())) == len(messages)
    # cross-verification fails
    assert not verify_user_signature(public, "doc-0", 0,
                                     programs[0].signatures[("doc-1", 0)])


@pytest.mark.slow
def test_long_run_six_units():
    """Six time units with alternating break-ins: shares stay valid, key
    history is an unbroken chain of successes."""
    n, t = 5, 2
    public, states, keys = build_uls_states(GROUP, SCHEME, n, t, seed=3)
    programs = [UlsProgram(states[i], SCHEME, keys[i]) for i in range(n)]
    victims = {u: frozenset({u % n, (u + 2) % n}) for u in range(0, 6, 2)}
    runner = ULRunner(programs, MobileBreakInAdversary(BreakinPlan(victims=victims)),
                      uls_schedule(), s=t, seed=3)
    execution = runner.run(units=6)
    for program in programs:
        assert program.keystore.history == [(u, "ok") for u in range(1, 6)]
        assert program.state.share_is_valid()
        assert program.core.alert_units == []
    # erasure log shows one refresh per unit
    refreshes = [u for u, kind in programs[0].state.erasure_log if kind == "refresh"]
    assert refreshes == [1, 2, 3, 4, 5]
