"""Time structure: communication rounds, time units and refreshment phases.

The paper (§2.1, Fig. 1) divides the lifetime of the system into *time
units* separated by short *refreshment phases*; a refreshment phase
formally belongs to both adjacent units.  The simulator flattens this into
a single global round counter and a :class:`Schedule` that labels every
round with ``(time_unit, phase, index_in_phase)``:

- rounds ``[0, setup_rounds)`` are the adversary-free **set-up phase**
  (time unit 0);
- unit 0 continues with ``normal_rounds`` normal rounds;
- every unit ``u >= 1`` starts with ``refresh_rounds`` refreshment rounds
  followed by ``normal_rounds`` normal rounds.

Protocols decide key lifetimes themselves (e.g. ULS Part (I) runs during
the refresh phase of unit ``u`` but authenticates with unit ``u-1`` keys,
the paper's "overlap").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Phase", "RoundInfo", "Schedule"]


class Phase(enum.Enum):
    """What kind of round this is."""

    SETUP = "setup"
    REFRESH = "refresh"
    NORMAL = "normal"


@dataclass(frozen=True)
class RoundInfo:
    """Full description of one communication round."""

    round: int
    time_unit: int
    phase: Phase
    index_in_phase: int
    phase_length: int

    @property
    def is_phase_start(self) -> bool:
        return self.index_in_phase == 0

    @property
    def is_phase_end(self) -> bool:
        return self.index_in_phase == self.phase_length - 1


@dataclass(frozen=True)
class Schedule:
    """Immutable description of the round layout (see module docstring)."""

    setup_rounds: int
    refresh_rounds: int
    normal_rounds: int

    def __post_init__(self) -> None:
        if self.setup_rounds < 1:
            raise ValueError("need at least one set-up round")
        if self.refresh_rounds < 1:
            raise ValueError("need at least one refreshment round")
        if self.normal_rounds < 1:
            raise ValueError("need at least one normal round per unit")

    @property
    def unit_rounds(self) -> int:
        """Rounds per time unit for units >= 1."""
        return self.refresh_rounds + self.normal_rounds

    def total_rounds(self, units: int) -> int:
        """Number of rounds needed to simulate time units ``0 .. units-1``."""
        if units < 1:
            raise ValueError("need at least time unit 0")
        return self.setup_rounds + self.normal_rounds + (units - 1) * self.unit_rounds

    def info(self, round_number: int) -> RoundInfo:
        """Label a global round number."""
        if round_number < 0:
            raise ValueError("round numbers start at 0")
        if round_number < self.setup_rounds:
            return RoundInfo(round_number, 0, Phase.SETUP, round_number, self.setup_rounds)
        offset = round_number - self.setup_rounds
        if offset < self.normal_rounds:
            return RoundInfo(round_number, 0, Phase.NORMAL, offset, self.normal_rounds)
        offset -= self.normal_rounds
        unit = 1 + offset // self.unit_rounds
        within = offset % self.unit_rounds
        if within < self.refresh_rounds:
            return RoundInfo(round_number, unit, Phase.REFRESH, within, self.refresh_rounds)
        return RoundInfo(
            round_number, unit, Phase.NORMAL, within - self.refresh_rounds, self.normal_rounds
        )

    def refresh_start(self, unit: int) -> int:
        """First round of unit ``unit``'s refreshment phase (unit >= 1)."""
        if unit < 1:
            raise ValueError("unit 0 has no refreshment phase")
        return self.setup_rounds + self.normal_rounds + (unit - 1) * self.unit_rounds

    def first_normal_round(self, unit: int) -> int:
        """First normal (post-refresh) round of a unit."""
        if unit == 0:
            return self.setup_rounds
        return self.refresh_start(unit) + self.refresh_rounds

    def rounds_of_unit(self, unit: int) -> range:
        """All rounds belonging to a unit (refresh phase included)."""
        if unit == 0:
            return range(0, self.setup_rounds + self.normal_rounds)
        start = self.refresh_start(unit)
        return range(start, start + self.unit_rounds)
